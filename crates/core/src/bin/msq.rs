//! `msq` — the millstream query runner.
//!
//! Executes a continuous query over a recorded trace and prints the output
//! stream, with optional plan/profile diagnostics:
//!
//! ```text
//! msq <query.msq> <trace.csv> [--no-ets] [--dot] [--profile] [--batch K]
//!
//!   query.msq   CREATE STREAM definitions + one SELECT query
//!   trace.csv   lines of: timestamp_micros,stream_name,v1,v2,…
//!   --no-ets    disable on-demand ETS (observe the idle-waiting)
//!   --dot       print the plan as Graphviz DOT and exit
//!   --profile   print the per-operator profile after the run
//!   --trace     print the last scheduler activities after the run
//!   --batch K   fuse up to K consecutive Encore steps per scheduling
//!               decision (default 1 = per-tuple execution)
//! ```
//!
//! Example query file:
//!
//! ```text
//! CREATE STREAM web (host INT, ms INT);
//! CREATE STREAM db  (host INT, ms INT);
//! SELECT host, ms FROM web WHERE ms > 100
//! UNION
//! SELECT host, ms FROM db;
//! ```

use std::cell::Cell;
use std::process::ExitCode;
use std::rc::Rc;

use millstream_exec::{Activity, CostModel, EtsPolicy, Executor, VirtualClock};
use millstream_ops::SinkCollector;
use millstream_query::plan_program;
use millstream_sim::parse_trace;
use millstream_types::{Error, Result, Timestamp, Tuple};

struct Options {
    query_path: String,
    trace_path: String,
    ets: bool,
    dot: bool,
    profile: bool,
    trace: bool,
    batch: usize,
}

const USAGE: &str =
    "usage: msq <query.msq> <trace.csv> [--no-ets] [--dot] [--profile] [--trace] [--batch K]";

fn parse_args(args: &[String]) -> std::result::Result<Options, String> {
    let mut positional = Vec::new();
    let mut ets = true;
    let mut dot = false;
    let mut profile = false;
    let mut trace = false;
    let mut batch = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--no-ets" => ets = false,
            "--dot" => dot = true,
            "--profile" => profile = true,
            "--trace" => trace = true,
            "--batch" => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--batch requires a value\n{USAGE}"))?;
                batch = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&k| k >= 1)
                    .ok_or_else(|| {
                        format!("--batch expects a positive integer, got `{value}`\n{USAGE}")
                    })?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            p => positional.push(p.to_string()),
        }
    }
    if positional.len() != 2 {
        return Err(format!(
            "expected <query.msq> <trace.csv>, got {} positional argument(s)\n{USAGE}",
            positional.len()
        ));
    }
    let mut it = positional.into_iter();
    Ok(Options {
        query_path: it.next().expect("len checked"),
        trace_path: it.next().expect("len checked"),
        ets,
        dot,
        profile,
        trace,
        batch,
    })
}

/// Prints each delivered row immediately and keeps latency statistics.
#[derive(Clone, Default)]
struct PrintingCollector {
    count: Rc<Cell<u64>>,
    latency_sum_us: Rc<Cell<u64>>,
}

impl SinkCollector for PrintingCollector {
    fn deliver(&mut self, tuple: Tuple, now: Timestamp) {
        println!("{tuple}");
        self.count.set(self.count.get() + 1);
        self.latency_sum_us
            .set(self.latency_sum_us.get() + now.duration_since(tuple.entry).as_micros());
    }
}

fn run(opts: &Options) -> Result<()> {
    let query_text = std::fs::read_to_string(&opts.query_path)
        .map_err(|e| Error::config(format!("{}: {e}", opts.query_path)))?;

    let collector = PrintingCollector::default();
    let planned = plan_program(&query_text, collector.clone())?;

    if opts.dot {
        print!("{}", planned.graph.to_dot());
        return Ok(());
    }

    let trace_text = std::fs::read_to_string(&opts.trace_path)
        .map_err(|e| Error::config(format!("{}: {e}", opts.trace_path)))?;
    let stream_refs: Vec<(&str, &millstream_types::Schema)> = planned
        .sources
        .iter()
        .map(|s| (s.stream.as_str(), &s.schema))
        .collect();
    let trace = parse_trace(&trace_text, &stream_refs)?;

    let policy = if opts.ets {
        EtsPolicy::on_demand()
    } else {
        EtsPolicy::None
    };
    let mut executor = Executor::new(
        planned.graph,
        VirtualClock::shared(),
        CostModel::default(),
        policy,
    )
    .with_encore_batch(opts.batch);
    if opts.trace {
        executor.enable_trace(64);
    }

    eprintln!(
        "# {} record(s), {} stream(s), output schema {}",
        trace.len(),
        planned.sources.len(),
        planned.output_schema
    );

    // Replay the trace, printing rows as the sink delivers them. Records
    // sharing an arrival timestamp land together before the engine runs —
    // they arrived simultaneously — so the scheduler sees real queues (and
    // `--batch` has runs to fuse) instead of one tuple at a time.
    let source_by_index: Vec<_> = planned.sources.iter().map(|s| s.id).collect();
    let mut pending_at: Option<Timestamp> = None;
    for rec in &trace {
        if pending_at.is_some_and(|at| at != rec.at) {
            loop {
                if matches!(executor.step()?, Activity::Quiescent) {
                    break;
                }
            }
        }
        pending_at = Some(rec.at);
        let source = source_by_index[rec.stream];
        executor.clock().advance_to(rec.at);
        let ts = executor.clock().now();
        executor.ingest(source, Tuple::data(ts, rec.values.clone()))?;
    }
    loop {
        if matches!(executor.step()?, Activity::Quiescent) {
            break;
        }
    }

    let delivered = collector.count.get();
    let mean_ms = if delivered == 0 {
        f64::NAN
    } else {
        collector.latency_sum_us.get() as f64 / delivered as f64 / 1_000.0
    };
    eprintln!(
        "# delivered {delivered} row(s); mean latency {mean_ms:.3} ms; on-demand ETS {}",
        executor.stats().ets_generated
    );

    if opts.trace {
        eprintln!("\n# last scheduler activities");
        for line in executor.render_trace().lines() {
            eprintln!("# {line}");
        }
    }

    if opts.profile {
        eprintln!("\n# per-operator profile");
        eprintln!(
            "# {:<14} {:>8} {:>10} {:>10} {:>12}",
            "operator", "steps", "consumed", "produced", "busy (us)"
        );
        for p in executor.profile() {
            eprintln!(
                "# {:<14} {:>8} {:>10} {:>10} {:>12}",
                p.name, p.steps, p.consumed, p.produced, p.busy_micros
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("msq: {e}");
            ExitCode::FAILURE
        }
    }
}
