//! `msq` — the millstream query runner.
//!
//! Executes a continuous query over a recorded trace and prints the output
//! stream, with optional plan/profile diagnostics:
//!
//! ```text
//! msq <query.msq> <trace.csv> [--no-ets] [--dot] [--profile] [--batch K]
//!                              [--workers N] [--shards N]
//!                              [--join-spill-budget B]
//! msq serve <query.msq> [--addr A] [--workers N] [--idle-ms MS] [--strict]
//!                        [--io-threads N] [--ingest-shards N]
//! msq send <addr> <stream> <trace.csv> [--window N]
//! msq tail <addr> [--patience-ms MS]
//! msq fuzz [--seeds N] [--base B]
//! msq bench [--quick]
//!
//!   query.msq   CREATE STREAM definitions + one SELECT query
//!   trace.csv   lines of: timestamp_micros,stream_name,v1,v2,…
//!   --no-ets    disable on-demand ETS (observe the idle-waiting)
//!   --dot       print the plan as Graphviz DOT and exit
//!   --profile   print the per-operator profile after the run
//!   --trace     print the last scheduler activities after the run
//!   --batch K   fuse up to K consecutive Encore steps per scheduling
//!               decision (default 1 = per-tuple execution)
//!   --workers N run each connected component of the plan on its own
//!               worker thread, up to N threads (default: serial; a
//!               single-query plan is usually one component, so this
//!               mainly matters for multi-component plans)
//!   --shards N  key-partition the (single-component) plan across N
//!               worker threads behind an exchange edge, with per-worker
//!               frontier summaries driving an order-restoring merge;
//!               partition keys come from the planner's shard-key
//!               analysis (join equi-keys, GROUP BY columns). Queries
//!               the analysis deems unshardable fall back to serial.
//!               With --dot, prints the sharded plan (exchange nodes,
//!               shard replica clusters, ts-merge).
//!   --join-spill-budget B  tiered join state: each join input compacts
//!               aged rows into columnar runs and spills runs beyond B
//!               resident bytes (suffixes k/m/g; `unbounded` = compact
//!               but never spill; `off` = default row-only state). Also
//!               settable as the MILLSTREAM_JOIN_SPILL env var. Output
//!               is byte-identical at any budget — only peak resident
//!               state changes.
//!
//! serve       host the query over TCP (see `millstream_net`): producers
//!             `msq send` into the named streams, subscribers `msq tail`
//!             the sink. The server runs until stdin closes (or a `quit`
//!             line), then drains gracefully — open sources are closed so
//!             the final ETS reaches every subscriber.
//!   --addr A        bind address (default 127.0.0.1:7171; port 0 = OS pick)
//!   --workers N     parallel-executor worker threads (default 2)
//!   --idle-ms MS    synthesize a source heartbeat after MS of network
//!                   silence on a producer connection (default: off)
//!   --strict        run with MILLSTREAM_CHECK=strict wire sentinels
//!   --sub-queue N   bounded per-subscriber output queue (default 1024)
//!   --overflow P    what to do with a subscriber stalled past its queue:
//!                   `shed` (default: drop its oldest data, declared via
//!                   cumulative drop-notice feedback frames) or
//!                   `disconnect` (cut it off — after a drop notice, the
//!                   final punctuation mark and a structured error)
//!   --no-feedback   disable feedback punctuation entirely (no producer
//!                   pacing frames, no engine pressure registers)
//!   --io-threads N  nonblocking poller threads multiplexing producer
//!                   sockets (default 4; each poller owns a slice of the
//!                   connections, no thread-per-connection)
//!   --ingest-shards N  per-shard ingest queues between the pollers and
//!                   the engine pump; a source port always maps to the
//!                   same shard, so per-port frame order is preserved
//!                   while the pump drains whole batches into one engine
//!                   critical section (default 8)
//!
//! send        replay a trace as a producer: lines `ts_micros,stream,v…`,
//!             all for <stream>, data timestamps strictly increasing
//!             (the wire resume contract; equal timestamps dedup
//!             server-side). Retries with exponential backoff and resumes
//!             from the last acked timestamp after a link failure.
//!   --window N      max unacked frames in flight (default 32)
//!
//! tail        subscribe and print output rows until end of stream
//!   --patience-ms MS  give up if nothing arrives in MS (default 30000)
//!
//! fuzz        differential stream fuzzing: generate seeded random query
//!             graphs and disordered workloads, run each across every
//!             EtsPolicy × scheduling policy × serial/parallel ×
//!             feedback-off/advisory-on cell with MILLSTREAM_CHECK=strict
//!             semantics, and compare all outputs against a naive
//!             single-queue oracle (advisory feedback must be
//!             output-invariant)
//!   --seeds N   number of seeds to run (default 64)
//!   --base B    first seed (default 0)
//!
//! bench       run every perf harness (micro_batching, micro_components,
//!             micro_alloc, multijoin, ablation_coalescing, net_ingest)
//!             via `cargo bench`, each rewriting its `BENCH_*.json` at
//!             the workspace root through the shared
//!             `write_bench_summary` path
//!   --quick     bounded runs for CI (each harness shrinks waves/rounds/
//!               durations but keeps its shape checks and budget gates)
//! ```
//!
//! Example query file:
//!
//! ```text
//! CREATE STREAM web (host INT, ms INT);
//! CREATE STREAM db  (host INT, ms INT);
//! SELECT host, ms FROM web WHERE ms > 100
//! UNION
//! SELECT host, ms FROM db;
//! ```

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use millstream_exec::{
    Activity, CostModel, EtsPolicy, Executor, ParallelConfig, ParallelExecutor, VirtualClock,
};
use millstream_ops::SinkCollector;
use millstream_query::plan_program;
use millstream_sim::parse_trace;
use millstream_types::{Error, Result, Timestamp, Tuple};

struct Options {
    query_path: String,
    trace_path: String,
    ets: bool,
    dot: bool,
    profile: bool,
    trace: bool,
    batch: usize,
    workers: usize,
    shards: usize,
}

const USAGE: &str = "usage: msq <query.msq> <trace.csv> [--no-ets] [--dot] [--profile] [--trace] [--batch K] [--workers N] [--shards N] [--join-spill-budget B]\n       msq serve <query.msq> [--addr A] [--workers N] [--idle-ms MS] [--strict] [--sub-queue N] [--overflow shed|disconnect] [--no-feedback] [--io-threads N] [--ingest-shards N]\n       msq send <addr> <stream> <trace.csv> [--window N]\n       msq tail <addr> [--patience-ms MS]\n       msq fuzz [--seeds N] [--base B]\n       msq bench [--quick]";

fn parse_args(args: &[String]) -> std::result::Result<Options, String> {
    let mut positional = Vec::new();
    let mut ets = true;
    let mut dot = false;
    let mut profile = false;
    let mut trace = false;
    let mut batch = 1usize;
    let mut workers = 1usize;
    let mut shards = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--no-ets" => ets = false,
            "--dot" => dot = true,
            "--profile" => profile = true,
            "--trace" => trace = true,
            "--batch" => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--batch requires a value\n{USAGE}"))?;
                batch = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&k| k >= 1)
                    .ok_or_else(|| {
                        format!("--batch expects a positive integer, got `{value}`\n{USAGE}")
                    })?;
            }
            "--workers" => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--workers requires a value\n{USAGE}"))?;
                workers = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| {
                        format!("--workers expects a positive integer, got `{value}`\n{USAGE}")
                    })?;
            }
            "--shards" => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--shards requires a value\n{USAGE}"))?;
                shards = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| (1..=millstream_exec::MAX_SHARDS).contains(&n))
                    .ok_or_else(|| {
                        format!(
                            "--shards expects an integer in 1..={}, got `{value}`\n{USAGE}",
                            millstream_exec::MAX_SHARDS
                        )
                    })?;
            }
            "--join-spill-budget" => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--join-spill-budget requires a value\n{USAGE}"))?;
                if !value.eq_ignore_ascii_case("off")
                    && millstream_ops::TierConfig::parse(value).is_none()
                {
                    return Err(format!(
                        "--join-spill-budget expects bytes (k/m/g suffix ok), `unbounded` or `off`, got `{value}`\n{USAGE}"
                    ));
                }
                // The planner reads MILLSTREAM_JOIN_SPILL when it
                // constructs join operators; the flag is the env var's
                // CLI spelling.
                std::env::set_var("MILLSTREAM_JOIN_SPILL", value);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            p => positional.push(p.to_string()),
        }
    }
    if positional.len() != 2 {
        return Err(format!(
            "expected <query.msq> <trace.csv>, got {} positional argument(s)\n{USAGE}",
            positional.len()
        ));
    }
    let mut it = positional.into_iter();
    Ok(Options {
        query_path: it.next().expect("len checked"),
        trace_path: it.next().expect("len checked"),
        ets,
        dot,
        profile,
        trace,
        batch,
        workers,
        shards,
    })
}

/// Prints each delivered row immediately and keeps latency statistics.
#[derive(Clone, Default)]
struct PrintingCollector {
    count: Arc<AtomicU64>,
    latency_sum_us: Arc<AtomicU64>,
}

impl SinkCollector for PrintingCollector {
    fn deliver(&mut self, tuple: Tuple, now: Timestamp) {
        println!("{tuple}");
        self.count.fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(
            now.duration_since(tuple.entry).as_micros(),
            Ordering::Relaxed,
        );
    }
}

fn run(opts: &Options) -> Result<()> {
    let query_text = std::fs::read_to_string(&opts.query_path)
        .map_err(|e| Error::config(format!("{}: {e}", opts.query_path)))?;

    let collector = PrintingCollector::default();
    let planned = plan_program(&query_text, collector.clone())?;

    if opts.dot {
        if opts.shards > 1 {
            if let Some(keys) = sharding_of(&query_text)? {
                print!("{}", planned.graph.to_dot_sharded(opts.shards, &keys));
                return Ok(());
            }
            eprintln!("# query is unshardable; printing the serial plan");
        }
        print!("{}", planned.graph.to_dot());
        return Ok(());
    }

    let trace_text = std::fs::read_to_string(&opts.trace_path)
        .map_err(|e| Error::config(format!("{}: {e}", opts.trace_path)))?;
    let stream_refs: Vec<(&str, &millstream_types::Schema)> = planned
        .sources
        .iter()
        .map(|s| (s.stream.as_str(), &s.schema))
        .collect();
    let trace = parse_trace(&trace_text, &stream_refs)?;

    let policy = if opts.ets {
        EtsPolicy::on_demand()
    } else {
        EtsPolicy::None
    };

    if opts.shards > 1 {
        match sharding_of(&query_text)? {
            Some(keys) if planned.graph.num_components() == 1 => {
                return run_sharded(opts, &query_text, planned, trace, keys, policy, &collector);
            }
            _ => eprintln!("# query is unshardable; running serial"),
        }
    }

    if opts.workers > 1 {
        return run_parallel(opts, planned, trace, policy, &collector);
    }

    let mut executor = Executor::new(
        planned.graph,
        VirtualClock::shared(),
        CostModel::default(),
        policy,
    )
    .with_encore_batch(opts.batch);
    if opts.trace {
        executor.enable_trace(64);
    }

    eprintln!(
        "# {} record(s), {} stream(s), output schema {}",
        trace.len(),
        planned.sources.len(),
        planned.output_schema
    );

    // Replay the trace, printing rows as the sink delivers them. Records
    // sharing an arrival timestamp land together before the engine runs —
    // they arrived simultaneously — so the scheduler sees real queues (and
    // `--batch` has runs to fuse) instead of one tuple at a time.
    let source_by_index: Vec<_> = planned.sources.iter().map(|s| s.id).collect();
    let mut pending_at: Option<Timestamp> = None;
    for rec in &trace {
        if pending_at.is_some_and(|at| at != rec.at) {
            loop {
                if matches!(executor.step()?, Activity::Quiescent) {
                    break;
                }
            }
        }
        pending_at = Some(rec.at);
        let source = source_by_index[rec.stream];
        executor.clock().advance_to(rec.at);
        let ts = executor.clock().now();
        executor.ingest(source, Tuple::data(ts, rec.values.clone()))?;
    }
    loop {
        if matches!(executor.step()?, Activity::Quiescent) {
            break;
        }
    }

    let delivered = collector.count.load(Ordering::Relaxed);
    let mean_ms = if delivered == 0 {
        f64::NAN
    } else {
        collector.latency_sum_us.load(Ordering::Relaxed) as f64 / delivered as f64 / 1_000.0
    };
    eprintln!(
        "# delivered {delivered} row(s); mean latency {mean_ms:.3} ms; on-demand ETS {}",
        executor.stats().ets_generated
    );

    if opts.trace {
        eprintln!("\n# last scheduler activities");
        for line in executor.render_trace().lines() {
            eprintln!("# {line}");
        }
    }

    if opts.profile {
        eprintln!("\n# per-operator profile");
        eprintln!(
            "# {:<14} {:>8} {:>10} {:>10} {:>12}",
            "operator", "steps", "consumed", "produced", "busy (us)"
        );
        for p in executor.profile() {
            eprintln!(
                "# {:<14} {:>8} {:>10} {:>10} {:>12}",
                p.name, p.steps, p.consumed, p.produced, p.busy_micros
            );
        }
    }
    Ok(())
}

/// Runs the planner's shard-key analysis on a program text.
fn sharding_of(query_text: &str) -> Result<Option<Vec<millstream_exec::ShardKey>>> {
    let stmts = millstream_query::parse_program(query_text)?;
    let mut catalog = millstream_query::Catalog::new();
    let queries = catalog.apply(stmts)?;
    let [query] = queries.as_slice() else {
        return Ok(None);
    };
    millstream_query::shard_keys(&catalog, query)
}

/// The `--shards N` path: the single-component plan replicated across N
/// key-partitioned shard workers behind an exchange edge, merged back into
/// timestamp order by per-worker frontier summaries. The same epoch
/// discipline as the other backends: records sharing an arrival timestamp
/// land together, then a quiescence barrier runs every shard.
fn run_sharded(
    opts: &Options,
    query_text: &str,
    planned: millstream_query::PlannedQuery,
    trace: Vec<millstream_sim::TraceRecord>,
    keys: Vec<millstream_exec::ShardKey>,
    policy: EtsPolicy,
    collector: &PrintingCollector,
) -> Result<()> {
    let stmts = millstream_query::parse_program(query_text)?;
    let mut catalog = millstream_query::Catalog::new();
    let mut queries = catalog.apply(stmts)?;
    let query = queries.pop().ok_or_else(|| Error::plan("no query"))?;

    let source_by_index: Vec<_> = planned.sources.iter().map(|s| s.id).collect();
    let config = millstream_exec::ShardedConfig {
        opts: millstream_exec::ExecOptions {
            encore_batch: opts.batch.max(1),
        },
        ..millstream_exec::ShardedConfig::new(CostModel::default(), policy, opts.shards)
    }
    .with_keys(keys);
    let mut sx = millstream_exec::ShardedExecutor::new(
        |_, out| millstream_query::plan_query(&catalog, &query, out).map(|p| p.graph),
        planned.output_schema.clone(),
        Box::new(collector.clone()),
        config,
    )?;

    eprintln!(
        "# {} record(s), {} stream(s), output schema {}; {} shard(s) behind the exchange",
        trace.len(),
        planned.sources.len(),
        planned.output_schema,
        sx.num_shards(),
    );

    let mut pending_at: Option<Timestamp> = None;
    for rec in &trace {
        if pending_at.is_some_and(|at| at != rec.at) {
            sx.run_until_quiescent(u64::MAX)?;
        }
        pending_at = Some(rec.at);
        sx.advance_to(rec.at)?;
        sx.ingest(
            source_by_index[rec.stream],
            Tuple::data(rec.at, rec.values.clone()),
        )?;
    }
    sx.run_until_quiescent(u64::MAX)?;

    let snap = sx.snapshot()?;
    let delivered = collector.count.load(Ordering::Relaxed);
    let mean_ms = if delivered == 0 {
        f64::NAN
    } else {
        collector.latency_sum_us.load(Ordering::Relaxed) as f64 / delivered as f64 / 1_000.0
    };
    eprintln!(
        "# delivered {delivered} row(s); mean latency {mean_ms:.3} ms; {} frontier advance(s), \
         {} merge floor heartbeat(s), {} frontier violation(s)",
        snap.frontier_advances.iter().sum::<u64>(),
        snap.merge_heartbeats,
        snap.frontier_violations,
    );

    if opts.trace {
        eprintln!("# --trace is per-shard state; not merged under --shards");
    }

    if opts.profile {
        eprintln!("\n# per-operator profile (summed across shard replicas)");
        eprintln!(
            "# {:<14} {:>8} {:>10} {:>10} {:>12}",
            "operator", "steps", "consumed", "produced", "busy (us)"
        );
        for p in &snap.profile {
            eprintln!(
                "# {:<14} {:>8} {:>10} {:>10} {:>12}",
                p.name, p.steps, p.consumed, p.produced, p.busy_micros
            );
        }
        eprintln!("\n# per-shard busy time");
        for (j, b) in snap.busy_nanos.iter().enumerate() {
            eprintln!(
                "#   shard {j}: {:.3} ms busy, floor {:?}, {} advance(s)",
                *b as f64 / 1e6,
                snap.floors[j].map(|t| t.as_micros()),
                snap.frontier_advances[j],
            );
        }
    }
    Ok(())
}

/// The `--workers N` path: one worker thread per plan component. The trace
/// replay keeps the serial driver's epoch discipline — records sharing an
/// arrival timestamp land together, then a quiescence barrier runs every
/// component — so output per sink is identical to the serial run.
fn run_parallel(
    opts: &Options,
    planned: millstream_query::PlannedQuery,
    trace: Vec<millstream_sim::TraceRecord>,
    policy: EtsPolicy,
    collector: &PrintingCollector,
) -> Result<()> {
    let source_by_index: Vec<_> = planned.sources.iter().map(|s| s.id).collect();
    let config = ParallelConfig::new(CostModel::default(), policy, opts.workers);
    let config = ParallelConfig {
        opts: millstream_exec::ExecOptions {
            encore_batch: opts.batch.max(1),
        },
        ..config
    };
    let pex = ParallelExecutor::new(planned.graph, config);

    eprintln!(
        "# {} record(s), {} stream(s), output schema {}; {} component(s) on {} worker(s)",
        trace.len(),
        planned.sources.len(),
        planned.output_schema,
        pex.num_components(),
        pex.num_workers(),
    );

    let mut pending_at: Option<Timestamp> = None;
    for rec in &trace {
        if pending_at.is_some_and(|at| at != rec.at) {
            pex.run_until_quiescent(u64::MAX)?;
        }
        pending_at = Some(rec.at);
        pex.advance_to(rec.at)?;
        pex.ingest(
            source_by_index[rec.stream],
            Tuple::data(rec.at, rec.values.clone()),
        )?;
    }
    pex.run_until_quiescent(u64::MAX)?;

    let snap = pex.snapshot()?;
    let delivered = collector.count.load(Ordering::Relaxed);
    let mean_ms = if delivered == 0 {
        f64::NAN
    } else {
        collector.latency_sum_us.load(Ordering::Relaxed) as f64 / delivered as f64 / 1_000.0
    };
    eprintln!(
        "# delivered {delivered} row(s); mean latency {mean_ms:.3} ms; on-demand ETS {}",
        snap.stats.ets_generated
    );

    if opts.trace {
        eprintln!("# --trace is per-component state; not merged under --workers");
    }

    if opts.profile {
        eprintln!("\n# per-operator profile");
        eprintln!(
            "# {:<14} {:>8} {:>10} {:>10} {:>12}",
            "operator", "steps", "consumed", "produced", "busy (us)"
        );
        for p in &snap.profile {
            eprintln!(
                "# {:<14} {:>8} {:>10} {:>10} {:>12}",
                p.name, p.steps, p.consumed, p.produced, p.busy_micros
            );
        }
    }
    Ok(())
}

/// The `msq serve` subcommand: host a query over TCP until stdin closes.
fn run_serve(args: &[String]) -> Result<()> {
    let mut query_path = None;
    let mut cfg_addr = "127.0.0.1:7171".to_string();
    let mut workers = 2usize;
    let mut idle_ms = None;
    let mut strict = false;
    let mut sub_queue = None;
    let mut overflow = None;
    let mut feedback = true;
    let mut io_threads = None;
    let mut ingest_shards = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sub-queue" => {
                sub_queue = Some(
                    it.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| Error::config("--sub-queue expects a positive integer"))?,
                );
            }
            "--overflow" => {
                overflow = Some(match it.next().map(String::as_str) {
                    Some("shed") => millstream_net::OverflowPolicy::Shed,
                    Some("disconnect") => millstream_net::OverflowPolicy::Disconnect,
                    other => {
                        return Err(Error::config(format!(
                            "--overflow expects `shed` or `disconnect`, got {other:?}"
                        )));
                    }
                });
            }
            "--no-feedback" => feedback = false,
            "--addr" => {
                cfg_addr = it
                    .next()
                    .ok_or_else(|| Error::config("--addr requires a value"))?
                    .clone();
            }
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| Error::config("--workers expects a positive integer"))?;
            }
            "--idle-ms" => {
                idle_ms = Some(
                    it.next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| Error::config("--idle-ms expects a positive integer"))?,
                );
            }
            "--strict" => strict = true,
            "--io-threads" => {
                io_threads = Some(
                    it.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| Error::config("--io-threads expects a positive integer"))?,
                );
            }
            "--ingest-shards" => {
                ingest_shards = Some(
                    it.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| {
                            Error::config("--ingest-shards expects a positive integer")
                        })?,
                );
            }
            flag if flag.starts_with("--") => {
                return Err(Error::config(format!("unknown serve flag `{flag}`")));
            }
            p if query_path.is_none() => query_path = Some(p.to_string()),
            p => return Err(Error::config(format!("unexpected serve argument `{p}`"))),
        }
    }
    let query_path =
        query_path.ok_or_else(|| Error::config(format!("serve needs <query.msq>\n{USAGE}")))?;
    let program = std::fs::read_to_string(&query_path)
        .map_err(|e| Error::config(format!("{query_path}: {e}")))?;

    let mut cfg = millstream_net::ServerConfig::new(program);
    cfg.addr = cfg_addr;
    cfg.workers = workers;
    cfg.idle_timeout = idle_ms.map(std::time::Duration::from_millis);
    if strict {
        cfg.check = Some(millstream_buffer::CheckMode::Strict);
    }
    if let Some(n) = sub_queue {
        cfg.subscriber_queue = n;
    }
    if let Some(p) = overflow {
        cfg.overflow = p;
    }
    if !feedback {
        cfg.feedback = None;
    }
    if let Some(n) = io_threads {
        cfg.io_threads = n;
    }
    if let Some(n) = ingest_shards {
        cfg.ingest_shards = n;
    }
    let server = millstream_net::Server::start(cfg)?;
    // Scripts read the first line to learn the resolved port.
    println!("listening on {}", server.addr());
    eprintln!("# serving; close stdin (or type `quit`) for a graceful drain");

    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match std::io::BufRead::read_line(&mut stdin.lock(), &mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "quit" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }

    let report = server.shutdown()?;
    let s = &report.stats;
    eprintln!(
        "# served {} connection(s): {} tuple(s) in, {} heartbeat(s), {} synthesized, \
         {} duplicate(s) dropped, {} rejected; {} row(s) delivered",
        s.connections,
        s.tuples_ingested,
        s.heartbeats_in,
        s.synthesized_heartbeats,
        s.duplicates_dropped,
        s.rejected_tuples,
        s.delivered,
    );
    if s.feedback_frames > 0 || s.sub_shed > 0 || s.subscriber_overflows > 0 {
        eprintln!(
            "# feedback: {} pacing frame(s) to producers; {} tuple(s) shed from subscriber \
             queues (declared), {} engine-shed, {} overflow disconnect(s); peak subscriber \
             queue {}",
            s.feedback_frames,
            s.sub_shed,
            report.exec.shed_tuples,
            s.subscriber_overflows,
            report.sub_peak_queue,
        );
    }
    for p in &report.ports {
        eprintln!(
            "#   stream {:<12} ingested {:>8}  synthesized {:>4}  idle {:>5.1}%",
            p.stream,
            p.ingested,
            p.synthesized,
            p.idle.idle_fraction * 100.0
        );
    }
    if report.latency.count > 0 {
        let l = &report.latency;
        eprintln!(
            "# wire→sink latency: mean {:.3} ms, p50 {:.3}, p99 {:.3} (n={})",
            l.mean_ms, l.p50_ms, l.p99_ms, l.count
        );
    }
    if let Some(f) = report.monitor_idle_fraction {
        eprintln!("# monitored IWP operator idle-waiting {:.1}%", f * 100.0);
    }
    if report.wire_sentinel_violations > 0 {
        eprintln!(
            "# WARNING: {} wire sentinel violation(s)",
            report.wire_sentinel_violations
        );
    }
    Ok(())
}

/// The `msq send` subcommand: replay a single-stream trace as a producer.
fn run_send(args: &[String]) -> Result<()> {
    let mut positional = Vec::new();
    let mut window = 32usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--window" => {
                window = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| Error::config("--window expects a positive integer"))?;
            }
            flag if flag.starts_with("--") => {
                return Err(Error::config(format!("unknown send flag `{flag}`")));
            }
            p => positional.push(p.to_string()),
        }
    }
    let [addr, stream, trace_path] = positional.as_slice() else {
        return Err(Error::config(format!(
            "send needs <addr> <stream> <trace.csv>\n{USAGE}"
        )));
    };
    let mut cfg = millstream_net::ClientConfig::new(addr.clone(), stream.clone());
    cfg.ack_window = window;
    let mut client = millstream_net::StreamClient::connect(cfg)?;
    let schema = client
        .schema()
        .cloned()
        .ok_or_else(|| Error::runtime("no schema negotiated"))?;
    let trace_text = std::fs::read_to_string(trace_path)
        .map_err(|e| Error::config(format!("{trace_path}: {e}")))?;
    let trace = parse_trace(&trace_text, &[(stream.as_str(), &schema)])?;
    for rec in &trace {
        client.send(Tuple::data(rec.at, rec.values.clone()))?;
    }
    let report = client.close()?;
    eprintln!(
        "# sent {} frame(s), {} acked; {} reconnect(s), {} retransmitted, {} resume-skipped",
        report.sent, report.acked, report.reconnects, report.retransmitted, report.resume_skipped
    );
    Ok(())
}

/// The `msq tail` subcommand: print the sink stream until it ends.
fn run_tail(args: &[String]) -> Result<()> {
    let mut addr = None;
    let mut patience_ms = 30_000u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--patience-ms" => {
                patience_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| Error::config("--patience-ms expects a positive integer"))?;
            }
            flag if flag.starts_with("--") => {
                return Err(Error::config(format!("unknown tail flag `{flag}`")));
            }
            p if addr.is_none() => addr = Some(p.to_string()),
            p => return Err(Error::config(format!("unexpected tail argument `{p}`"))),
        }
    }
    let addr = addr.ok_or_else(|| Error::config(format!("tail needs <addr>\n{USAGE}")))?;
    let mut sub = millstream_net::Subscription::connect(&addr)?;
    eprintln!("# output schema {}", sub.schema());
    let patience = std::time::Duration::from_millis(patience_ms);
    let mut rows = 0u64;
    while let Some(tuple) = sub.next(patience)? {
        if tuple.is_data() {
            println!("{tuple}");
            rows += 1;
        }
    }
    eprintln!("# end of stream after {rows} row(s)");
    Ok(())
}

/// The `msq fuzz` subcommand: a differential fuzzing sweep over seeded
/// random graphs and workloads (see `millstream_sim::fuzz_range`).
fn run_fuzz(args: &[String]) -> ExitCode {
    let mut seeds = 64u64;
    let mut base = 0u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let parse_u64 = |flag: &str, value: Option<&String>| {
            value
                .ok_or_else(|| format!("{flag} requires a value\n{USAGE}"))?
                .parse::<u64>()
                .map_err(|_| format!("{flag} expects an unsigned integer\n{USAGE}"))
        };
        let parsed = match a.as_str() {
            "--seeds" => parse_u64("--seeds", it.next()).map(|n| seeds = n),
            "--base" => parse_u64("--base", it.next()).map(|n| base = n),
            "--help" | "-h" => Err(USAGE.to_string()),
            flag => Err(format!("unknown fuzz argument `{flag}`\n{USAGE}")),
        };
        if let Err(msg) = parsed {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    }
    let summary = millstream_sim::fuzz_range(base, seeds);
    eprintln!(
        "# fuzz: {} seed(s) from {base}, {} differential run(s), {} failure(s)",
        summary.seeds,
        summary.runs,
        summary.failures.len()
    );
    if summary.failures.is_empty() {
        return ExitCode::SUCCESS;
    }
    for failure in &summary.failures {
        eprintln!("FAIL {failure}");
    }
    // Reprint the specs of the failing seeds so a regression seed can be
    // dropped into fuzz-corpus/ without re-deriving it.
    let mut reported = std::collections::BTreeSet::new();
    for failure in &summary.failures {
        if let Some(seed) = failure
            .strip_prefix("seed ")
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|s| s.parse::<u64>().ok())
        {
            if reported.insert(seed) {
                eprintln!("{}", millstream_sim::describe_seed(seed));
            }
        }
    }
    ExitCode::FAILURE
}

/// The `msq bench` subcommand: one entry point for the whole perf suite.
/// Each harness is a `harness = false` bench target in millstream-bench, so
/// the uniform code path is `cargo bench --bench <name>` — every harness
/// then writes its `BENCH_<name>.json` via the shared
/// `millstream_bench::write_bench_summary`, which stamps `host_cores`.
/// `micro_alloc` additionally needs the `count-alloc` feature so the
/// counting `#[global_allocator]` is live.
fn run_bench(args: &[String]) -> ExitCode {
    let mut quick = false;
    for a in args {
        match a.as_str() {
            "--quick" => quick = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
            flag => {
                eprintln!("unknown bench argument `{flag}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    // `msq` lives in the workspace; anchor cargo at the workspace root so
    // the subcommand works no matter where it is invoked from.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let benches: &[(&str, &[&str])] = &[
        ("micro_batching", &[]),
        ("micro_components", &[]),
        ("micro_alloc", &["--features", "count-alloc"]),
        ("multijoin", &[]),
        ("ablation_coalescing", &[]),
        ("net_ingest", &[]),
    ];
    let mut failed = Vec::new();
    for (name, features) in benches {
        eprintln!("# bench: {name}{}", if quick { " --quick" } else { "" });
        let mut cmd = std::process::Command::new("cargo");
        cmd.current_dir(&root)
            .args(["bench", "-p", "millstream-bench", "--bench", name])
            .args(*features);
        if quick {
            cmd.args(["--", "--quick"]);
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("# bench: {name} failed ({status})");
                failed.push(*name);
            }
            Err(e) => {
                eprintln!("# bench: cannot spawn cargo for {name}: {e}");
                failed.push(*name);
            }
        }
    }
    if failed.is_empty() {
        eprintln!("# bench: all {} harnesses passed", benches.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("# bench: failed: {}", failed.join(", "));
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("fuzz") {
        return run_fuzz(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("bench") {
        return run_bench(&args[1..]);
    }
    if let Some(net) = args.first().and_then(|a| match a.as_str() {
        "serve" => Some(run_serve as fn(&[String]) -> Result<()>),
        "send" => Some(run_send as fn(&[String]) -> Result<()>),
        "tail" => Some(run_tail as fn(&[String]) -> Result<()>),
        _ => None,
    }) {
        return match net(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("msq: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("msq: {e}");
            ExitCode::FAILURE
        }
    }
}
