//! Property tests for the buffer substrate: FIFO discipline, occupancy
//! accounting, punctuation coalescing bounds, and TSM register laws.

use std::sync::Arc;

use proptest::prelude::*;

use millstream_buffer::{Buffer, OccupancyTracker, OrderPolicy, PunctuationPolicy, TsmBank};
use millstream_types::{Timestamp, Tuple, Value};

/// A random ordered stream of items (gap, is_punctuation).
fn stream(max_len: usize) -> impl Strategy<Value = Vec<(u64, bool)>> {
    prop::collection::vec((0u64..5, any::<bool>()), 0..max_len)
}

fn materialize(items: &[(u64, bool)]) -> Vec<Tuple> {
    let mut ts = 0u64;
    items
        .iter()
        .map(|&(gap, punct)| {
            ts += gap;
            if punct {
                Tuple::punctuation(Timestamp::from_micros(ts))
            } else {
                Tuple::data(Timestamp::from_micros(ts), vec![Value::Int(ts as i64)])
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// KeepAll buffers are strict FIFOs: pops return exactly the pushes.
    #[test]
    fn fifo_discipline(items in stream(60)) {
        let tuples = materialize(&items);
        let mut b = Buffer::new("p");
        for t in &tuples {
            b.push(t.clone()).unwrap();
        }
        prop_assert_eq!(b.len(), tuples.len());
        let mut popped = Vec::new();
        while let Some(t) = b.pop() {
            popped.push(t);
        }
        prop_assert_eq!(popped, tuples);
        prop_assert_eq!(b.pushed(), b.popped());
    }

    /// The shared tracker's total equals the sum of buffer lengths at every
    /// step, and the peak is the running max of totals.
    #[test]
    fn tracker_accounting(items_a in stream(40), items_b in stream(40), pops in 0usize..50) {
        let tracker: Arc<OccupancyTracker> = OccupancyTracker::shared();
        let mut a = Buffer::new("a").with_tracker(tracker.clone());
        let mut b = Buffer::new("b").with_tracker(tracker.clone());
        let mut max_seen = 0usize;
        for t in materialize(&items_a) {
            a.push(t).unwrap();
            max_seen = max_seen.max(tracker.total());
        }
        for t in materialize(&items_b) {
            b.push(t).unwrap();
            max_seen = max_seen.max(tracker.total());
        }
        prop_assert_eq!(tracker.total(), a.len() + b.len());
        prop_assert_eq!(tracker.peak(), max_seen);
        for _ in 0..pops {
            if a.pop().is_none() {
                let _ = b.pop();
            }
        }
        prop_assert_eq!(tracker.total(), a.len() + b.len());
        prop_assert_eq!(tracker.peak(), max_seen, "peak never shrinks");
        // data + punctuation split always sums to the total.
        prop_assert_eq!(
            tracker.data_total() + tracker.punctuation_total(),
            tracker.total()
        );
        prop_assert_eq!(a.data_len() <= a.len(), true);
    }

    /// Coalescing buffers never hold two adjacent punctuation tuples, and
    /// drop no data.
    #[test]
    fn coalescing_bounds_punctuation(items in stream(80)) {
        let tuples = materialize(&items);
        let data_count = tuples.iter().filter(|t| t.is_data()).count();
        let mut b = Buffer::new("c").with_punctuation_policy(PunctuationPolicy::Coalesce);
        for t in &tuples {
            b.push(t.clone()).unwrap();
        }
        let mut popped = Vec::new();
        while let Some(t) = b.pop() {
            popped.push(t);
        }
        // No data lost.
        prop_assert_eq!(popped.iter().filter(|t| t.is_data()).count(), data_count);
        // No two adjacent punctuation.
        for w in popped.windows(2) {
            prop_assert!(
                !(w[0].is_punctuation() && w[1].is_punctuation()),
                "adjacent punctuation survived coalescing"
            );
        }
        // Still timestamp ordered.
        for w in popped.windows(2) {
            prop_assert!(w[0].ts <= w[1].ts);
        }
    }

    /// Under Clamp, output is always ordered regardless of input disorder;
    /// under Drop, output is ordered and only regressed tuples are shed.
    #[test]
    fn disorder_policies(raw in prop::collection::vec(0u64..100, 0..60)) {
        for policy in [OrderPolicy::Clamp, OrderPolicy::Drop] {
            let mut b = Buffer::new("d").with_order_policy(policy);
            for &ts in &raw {
                let _ = b.push(Tuple::data(
                    Timestamp::from_micros(ts),
                    vec![Value::Int(ts as i64)],
                ));
            }
            let mut last = None;
            let mut n = 0;
            while let Some(t) = b.pop() {
                if let Some(prev) = last {
                    prop_assert!(t.ts >= prev, "{policy:?} output must be ordered");
                }
                last = Some(t.ts);
                n += 1;
            }
            match policy {
                OrderPolicy::Clamp => prop_assert_eq!(n, raw.len()),
                OrderPolicy::Drop => {
                    prop_assert_eq!(n as u64 + b.dropped(), raw.len() as u64)
                }
                _ => unreachable!(),
            }
        }
    }

    /// TSM bank: τ is the minimum over per-input maxima, and argmin points
    /// at exactly the inputs achieving it.
    #[test]
    fn tsm_bank_laws(
        observations in prop::collection::vec((0usize..4, 0u64..1000), 1..60)
    ) {
        let mut bank = TsmBank::new(4);
        let mut maxima: [Option<u64>; 4] = [None; 4];
        for &(i, ts) in &observations {
            bank.observe(i, Timestamp::from_micros(ts));
            maxima[i] = Some(maxima[i].map_or(ts, |m: u64| m.max(ts)));
        }
        let expect_tau = if maxima.iter().all(|m| m.is_some()) {
            Some(Timestamp::from_micros(
                maxima.iter().map(|m| m.unwrap()).min().unwrap(),
            ))
        } else {
            None
        };
        prop_assert_eq!(bank.min_tau(), expect_tau);
        let argmin = bank.argmin();
        prop_assert!(!argmin.is_empty());
        match expect_tau {
            Some(tau) => {
                for &i in &argmin {
                    prop_assert_eq!(bank.get(i), Some(tau));
                }
            }
            None => {
                for &i in &argmin {
                    prop_assert_eq!(bank.get(i), None, "unset inputs bound progress");
                }
            }
        }
    }
}
