//! Time-Stamp Memory (TSM) registers — paper §4.1.
//!
//! A TSM register is attached to each input of an idle-waiting-prone (IWP)
//! operator. It is "automatically updated with the timestamp value of the
//! current input tuple and it remains in the register until the next tuple
//! updates it". Crucially it retains its value *after the buffer empties*,
//! which is what lets the relaxed `more` condition (paper Fig. 5) process
//! simultaneous tuples without idle-waiting, and what lets a punctuation
//! tuple (whose only effect is to raise the register) unblock the operator.

use millstream_types::Timestamp;

/// Fan-in up to which a [`StarveList`] stays on the stack. Matches the
/// executor's inline port limit; wider unions spill to a heap `Vec`.
const STARVE_INLINE: usize = 8;

/// The input indices that bound an IWP operator's progress — the result of
/// [`TsmBank::argmin`] and the payload of a starved poll. Polling happens
/// on every scheduling decision, so the list stores up to
/// [`STARVE_INLINE`] indices inline and never allocates for realistic
/// fan-ins. Dereferences to `&[usize]` in construction order.
#[derive(Clone, Debug)]
pub struct StarveList(ListRepr);

#[derive(Clone, Debug)]
enum ListRepr {
    Inline {
        len: u8,
        idx: [usize; STARVE_INLINE],
    },
    Heap(Vec<usize>),
}

impl StarveList {
    /// An empty list.
    pub fn new() -> StarveList {
        StarveList(ListRepr::Inline {
            len: 0,
            idx: [0; STARVE_INLINE],
        })
    }

    /// A single-element list (the common starved-on-one-input case).
    pub fn one(input: usize) -> StarveList {
        let mut l = StarveList::new();
        l.push(input);
        l
    }

    /// Appends an input index, spilling to the heap past the inline cap.
    pub fn push(&mut self, input: usize) {
        match &mut self.0 {
            ListRepr::Inline { len, idx } => {
                if (*len as usize) < STARVE_INLINE {
                    idx[*len as usize] = input;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(STARVE_INLINE * 2);
                    v.extend_from_slice(&idx[..]);
                    v.push(input);
                    self.0 = ListRepr::Heap(v);
                }
            }
            ListRepr::Heap(v) => v.push(input),
        }
    }
}

impl Default for StarveList {
    fn default() -> Self {
        StarveList::new()
    }
}

impl std::ops::Deref for StarveList {
    type Target = [usize];

    #[inline]
    fn deref(&self) -> &[usize] {
        match &self.0 {
            ListRepr::Inline { len, idx } => &idx[..*len as usize],
            ListRepr::Heap(v) => v,
        }
    }
}

impl FromIterator<usize> for StarveList {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> StarveList {
        let mut l = StarveList::new();
        for i in iter {
            l.push(i);
        }
        l
    }
}

impl PartialEq for StarveList {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for StarveList {}

impl PartialEq<Vec<usize>> for StarveList {
    fn eq(&self, other: &Vec<usize>) -> bool {
        self[..] == other[..]
    }
}

impl<'a> IntoIterator for &'a StarveList {
    type Item = &'a usize;
    type IntoIter = std::slice::Iter<'a, usize>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A single Time-Stamp Memory register.
///
/// Starts unset; an IWP operator whose input has never delivered a tuple
/// (data or punctuation) has no lower bound for that input and must not
/// proceed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TsmRegister {
    value: Option<Timestamp>,
}

impl TsmRegister {
    /// A fresh, unset register.
    pub const fn new() -> Self {
        TsmRegister { value: None }
    }

    /// Updates the register with the timestamp of the current input tuple.
    /// Registers are monotone: stream order guarantees non-decreasing
    /// timestamps, and we keep the max defensively.
    pub fn observe(&mut self, ts: Timestamp) {
        self.value = Some(match self.value {
            Some(v) => v.max(ts),
            None => ts,
        });
    }

    /// The last observed timestamp, if any.
    pub fn get(&self) -> Option<Timestamp> {
        self.value
    }

    /// True iff the register has observed at least one tuple.
    pub fn is_set(&self) -> bool {
        self.value.is_some()
    }
}

/// The bank of TSM registers of one IWP operator — one per input.
#[derive(Debug, Clone)]
pub struct TsmBank {
    registers: Vec<TsmRegister>,
}

impl TsmBank {
    /// Creates a bank with `inputs` unset registers.
    pub fn new(inputs: usize) -> Self {
        TsmBank {
            registers: vec![TsmRegister::new(); inputs],
        }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.registers.len()
    }

    /// True iff the bank has no registers.
    pub fn is_empty(&self) -> bool {
        self.registers.is_empty()
    }

    /// Updates register `input` with the timestamp of its current tuple.
    pub fn observe(&mut self, input: usize, ts: Timestamp) {
        self.registers[input].observe(ts);
    }

    /// Register value for `input`.
    pub fn get(&self, input: usize) -> Option<Timestamp> {
        self.registers[input].get()
    }

    /// τ — the minimal value over the input TSM registers (paper Fig. 5).
    /// `None` while any register is still unset: with no lower bound for
    /// some input, no tuple can safely be processed.
    pub fn min_tau(&self) -> Option<Timestamp> {
        let mut tau = Timestamp::MAX;
        for r in &self.registers {
            tau = tau.min(r.get()?);
        }
        Some(tau)
    }

    /// The inputs whose register currently holds the minimum τ. These are
    /// the inputs that bound progress: when they are empty, backtracking
    /// should walk toward their predecessors. Allocation-free for fan-ins
    /// up to [`STARVE_INLINE`].
    pub fn argmin(&self) -> StarveList {
        match self.min_tau() {
            None => {
                // Unset registers bound progress; report them.
                self.registers
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| !r.is_set())
                    .map(|(i, _)| i)
                    .collect()
            }
            Some(tau) => self
                .registers
                .iter()
                .enumerate()
                .filter(|(_, r)| r.get() == Some(tau))
                .map(|(i, _)| i)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: u64) -> Timestamp {
        Timestamp::from_micros(v)
    }

    #[test]
    fn register_starts_unset_and_retains_value() {
        let mut r = TsmRegister::new();
        assert!(!r.is_set());
        assert_eq!(r.get(), None);
        r.observe(ts(5));
        assert_eq!(r.get(), Some(ts(5)));
        r.observe(ts(9));
        assert_eq!(r.get(), Some(ts(9)));
    }

    #[test]
    fn register_is_monotone_even_on_regression() {
        let mut r = TsmRegister::new();
        r.observe(ts(9));
        r.observe(ts(3)); // defensive: must not go backwards
        assert_eq!(r.get(), Some(ts(9)));
    }

    #[test]
    fn bank_min_tau_requires_all_inputs_seen() {
        let mut b = TsmBank::new(2);
        assert_eq!(b.min_tau(), None);
        b.observe(0, ts(10));
        assert_eq!(b.min_tau(), None, "input 1 has no lower bound yet");
        b.observe(1, ts(4));
        assert_eq!(b.min_tau(), Some(ts(4)));
    }

    #[test]
    fn bank_argmin_identifies_bounding_inputs() {
        let mut b = TsmBank::new(3);
        // All unset: every input bounds progress.
        assert_eq!(b.argmin(), vec![0, 1, 2]);
        b.observe(0, ts(7));
        b.observe(2, ts(7));
        // Input 1 still unset: it is the bounding one.
        assert_eq!(b.argmin(), vec![1]);
        b.observe(1, ts(3));
        assert_eq!(b.min_tau(), Some(ts(3)));
        assert_eq!(b.argmin(), vec![1]);
        b.observe(1, ts(7));
        // Tie: all three registers hold 7.
        assert_eq!(b.argmin(), vec![0, 1, 2]);
    }

    #[test]
    fn punctuation_unblocks_via_register() {
        // The scenario of paper §4: input B idle, a punctuation raises its
        // register above the pending A tuple, making τ equal A's head.
        let mut b = TsmBank::new(2);
        b.observe(0, ts(100)); // head of A
        b.observe(1, ts(250)); // ETS punctuation on B
        assert_eq!(b.min_tau(), Some(ts(100)));
        assert_eq!(b.argmin(), vec![0]);
    }
}
