//! Runtime ordering-contract sentinels.
//!
//! Every guarantee in the paper — safe IWP enabling, on-demand ETS, the
//! relaxed *more* condition — rests on one unstated contract: buffers carry
//! non-decreasing timestamps and no data tuple ever appears below a
//! punctuation already asserted on its path. The sentinel layer makes that
//! contract *checkable at runtime*: an opt-in, per-buffer [`OrderSentinel`]
//! validates every push, and the executors add node-level TSM-register and
//! clock-monotonicity checks on top, all recording into one shared
//! [`SentinelStats`].
//!
//! The layer is controlled by the `MILLSTREAM_CHECK` environment variable
//! (see [`CheckMode`]):
//!
//! * `off` (default) — no sentinels are attached; a single `Option` branch
//!   per push is the only residue.
//! * `counters` — violations are counted into [`SentinelStats`] (surfaced
//!   via `ExecStats`/snapshots) but execution continues.
//! * `strict` — a violation that the buffer's own [`OrderPolicy`] would
//!   silently absorb aborts execution with a structured
//!   [`Error::InvariantViolation`] naming the node, the buffer and the
//!   offending timestamp pair.
//!
//! What counts as a violation is defined *per the buffer's `OrderPolicy`*:
//! a regression into a `Reject` buffer already fails loudly
//! (`Error::OutOfOrder`), and `Clamp`/`Drop` recoveries are
//! policy-sanctioned — the sentinel counts all of these as order
//! regressions but never escalates them. The checks that `strict` escalates
//! are the ones nothing else catches: a data tuple sliding under the
//! punctuation high-water of an `Accept` buffer, an IWP operator emitting
//! beyond its TSM minimum, and a clock reading that travels backwards.
//!
//! [`OrderPolicy`]: crate::OrderPolicy
//! [`Error::InvariantViolation`]: millstream_types::Error::InvariantViolation

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use millstream_types::{Error, Result, Timestamp};

/// How much runtime invariant checking the engine performs.
///
/// Parsed from the `MILLSTREAM_CHECK` environment variable by
/// [`CheckMode::from_env`]; executors also accept a programmatic override.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckMode {
    /// No checking (default). Sentinels are not attached at all.
    #[default]
    Off,
    /// Count violations into [`SentinelStats`] but keep running.
    Counters,
    /// Fail fast: silent contract violations become
    /// [`millstream_types::Error::InvariantViolation`].
    Strict,
}

impl CheckMode {
    /// The environment variable consulted by [`CheckMode::from_env`].
    pub const ENV_VAR: &'static str = "MILLSTREAM_CHECK";

    /// Reads the mode from `MILLSTREAM_CHECK`. Unset, empty or
    /// unrecognized values mean [`CheckMode::Off`].
    pub fn from_env() -> Self {
        match std::env::var(Self::ENV_VAR) {
            Ok(v) => Self::parse(&v),
            Err(_) => CheckMode::Off,
        }
    }

    /// Parses a mode string (`off` / `counters` / `strict`,
    /// case-insensitive). Anything else is `Off`.
    pub fn parse(s: &str) -> Self {
        match s.trim().to_ascii_lowercase().as_str() {
            "counters" => CheckMode::Counters,
            "strict" => CheckMode::Strict,
            _ => CheckMode::Off,
        }
    }

    /// True unless the mode is [`CheckMode::Off`].
    pub fn is_enabled(self) -> bool {
        !matches!(self, CheckMode::Off)
    }
}

/// Shared violation counters, one instance per executor (or per worker in
/// the parallel engine), aggregated into `ExecStats`.
#[derive(Debug, Default)]
pub struct SentinelStats {
    order_regressions: AtomicU64,
    punct_violations: AtomicU64,
    tsm_violations: AtomicU64,
    clock_violations: AtomicU64,
    frontier_violations: AtomicU64,
}

impl SentinelStats {
    /// A fresh, shareable counter block.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Timestamp regressions observed at buffer pushes (including those the
    /// buffer's policy recovered by clamping, dropping or rejecting).
    pub fn order_regressions(&self) -> u64 {
        self.order_regressions.load(Ordering::Relaxed)
    }

    /// Data tuples observed below a buffer's punctuation high-water mark.
    pub fn punct_violations(&self) -> u64 {
        self.punct_violations.load(Ordering::Relaxed)
    }

    /// IWP operators caught emitting beyond their TSM-register minimum.
    pub fn tsm_violations(&self) -> u64 {
        self.tsm_violations.load(Ordering::Relaxed)
    }

    /// Clock readings that went backwards between executor steps.
    pub fn clock_violations(&self) -> u64 {
        self.clock_violations.load(Ordering::Relaxed)
    }

    /// Shard outputs observed below a frontier floor already published (or
    /// already consumed by the merge stage) for that shard.
    pub fn frontier_violations(&self) -> u64 {
        self.frontier_violations.load(Ordering::Relaxed)
    }

    /// Sum of every violation class.
    pub fn total(&self) -> u64 {
        self.order_regressions()
            + self.punct_violations()
            + self.tsm_violations()
            + self.clock_violations()
            + self.frontier_violations()
    }

    /// Records a buffer-level timestamp regression.
    pub fn record_order_regression(&self) {
        self.order_regressions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a punctuation-dominance violation.
    pub fn record_punct_violation(&self) {
        self.punct_violations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a TSM-consistency violation.
    pub fn record_tsm_violation(&self) {
        self.tsm_violations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a clock-monotonicity violation.
    pub fn record_clock_violation(&self) {
        self.clock_violations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a frontier-consistency violation.
    pub fn record_frontier_violation(&self) {
        self.frontier_violations.fetch_add(1, Ordering::Relaxed);
    }
}

/// A per-buffer contract checker, labelled with the graph node that
/// produces into the buffer so violations name their culprit.
#[derive(Debug, Clone)]
pub struct OrderSentinel {
    mode: CheckMode,
    /// The operator or source writing into the watched buffer.
    node: String,
    stats: Arc<SentinelStats>,
}

impl OrderSentinel {
    /// Builds a sentinel for the buffer fed by `node`.
    pub fn new(mode: CheckMode, node: impl Into<String>, stats: Arc<SentinelStats>) -> Self {
        OrderSentinel {
            mode,
            node: node.into(),
            stats,
        }
    }

    /// The active checking mode.
    pub fn mode(&self) -> CheckMode {
        self.mode
    }

    /// The producing node this sentinel reports against.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// The shared counter block.
    pub fn stats(&self) -> &Arc<SentinelStats> {
        &self.stats
    }

    /// Notes a timestamp regression at a push. The buffer's own policy
    /// decides recovery (reject / clamp / drop), so this only counts.
    pub fn note_order_regression(&self, _buffer: &str, _got: Timestamp, _high_water: Timestamp) {
        self.stats.record_order_regression();
    }

    /// Checks punctuation dominance: a *data* tuple below the buffer's
    /// punctuation high-water mark contradicts an ETS already asserted on
    /// this arc. In `strict` mode this is fatal — no `OrderPolicy` recovery
    /// can un-assert the punctuation.
    pub fn check_punct_dominance(
        &self,
        buffer: &str,
        got: Timestamp,
        punct_high_water: Timestamp,
    ) -> Result<()> {
        self.stats.record_punct_violation();
        if self.mode == CheckMode::Strict {
            return Err(Error::invariant(
                "punctuation-dominance",
                &self.node,
                buffer,
                got.as_micros(),
                punct_high_water.as_micros(),
            ));
        }
        Ok(())
    }

    /// Checks frontier consistency: a sharded worker emitted (or the merge
    /// stage received) a tuple *below* a frontier floor that worker already
    /// published. The floor is the shard's own promise — the whole
    /// frontier-summary protocol is unsound if it can be violated, so in
    /// `strict` mode this is fatal.
    pub fn check_frontier_consistency(
        &self,
        buffer: &str,
        got: Timestamp,
        floor: Timestamp,
    ) -> Result<()> {
        if got >= floor {
            return Ok(());
        }
        self.stats.record_frontier_violation();
        if self.mode == CheckMode::Strict {
            return Err(Error::invariant(
                "frontier-consistency",
                &self.node,
                buffer,
                got.as_micros(),
                floor.as_micros(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_modes() {
        assert_eq!(CheckMode::parse("off"), CheckMode::Off);
        assert_eq!(CheckMode::parse(""), CheckMode::Off);
        assert_eq!(CheckMode::parse("bogus"), CheckMode::Off);
        assert_eq!(CheckMode::parse("counters"), CheckMode::Counters);
        assert_eq!(CheckMode::parse("STRICT"), CheckMode::Strict);
        assert_eq!(CheckMode::parse(" strict "), CheckMode::Strict);
        assert!(!CheckMode::Off.is_enabled());
        assert!(CheckMode::Counters.is_enabled());
        assert!(CheckMode::Strict.is_enabled());
    }

    #[test]
    fn counters_accumulate() {
        let stats = SentinelStats::shared();
        let s = OrderSentinel::new(CheckMode::Counters, "op", stats.clone());
        s.note_order_regression("b", Timestamp::from_micros(1), Timestamp::from_micros(2));
        s.check_punct_dominance("b", Timestamp::from_micros(1), Timestamp::from_micros(2))
            .expect("counters mode never errors");
        stats.record_tsm_violation();
        stats.record_clock_violation();
        assert_eq!(stats.order_regressions(), 1);
        assert_eq!(stats.punct_violations(), 1);
        assert_eq!(stats.tsm_violations(), 1);
        assert_eq!(stats.clock_violations(), 1);
        assert_eq!(stats.total(), 4);
    }

    #[test]
    fn strict_mode_escalates_punct_dominance() {
        let stats = SentinelStats::shared();
        let s = OrderSentinel::new(CheckMode::Strict, "union#1", stats.clone());
        let err = s
            .check_punct_dominance(
                "out:union#1.0",
                Timestamp::from_micros(3),
                Timestamp::from_micros(9),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            Error::InvariantViolation {
                got: 3,
                bound: 9,
                ..
            }
        ));
        assert!(err.to_string().contains("union#1"));
        assert_eq!(stats.punct_violations(), 1);
    }

    #[test]
    fn frontier_consistency_counts_and_escalates() {
        let stats = SentinelStats::shared();
        let counting = OrderSentinel::new(CheckMode::Counters, "shard#2", stats.clone());
        counting
            .check_frontier_consistency(
                "merge:2",
                Timestamp::from_micros(9),
                Timestamp::from_micros(5),
            )
            .expect("at-or-above the floor is fine");
        assert_eq!(stats.frontier_violations(), 0);
        counting
            .check_frontier_consistency(
                "merge:2",
                Timestamp::from_micros(3),
                Timestamp::from_micros(5),
            )
            .expect("counters mode never errors");
        assert_eq!(stats.frontier_violations(), 1);
        assert_eq!(stats.total(), 1);

        let strict = OrderSentinel::new(CheckMode::Strict, "shard#2", stats.clone());
        let err = strict
            .check_frontier_consistency(
                "merge:2",
                Timestamp::from_micros(3),
                Timestamp::from_micros(5),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            Error::InvariantViolation {
                got: 3,
                bound: 5,
                ..
            }
        ));
        assert!(err.to_string().contains("frontier-consistency"));
        assert_eq!(stats.frontier_violations(), 2);
    }
}
