//! Inter-operator FIFO buffers.
//!
//! In the paper's query graphs (§3) every arc is a buffer: the upstream
//! operator appends to the tail (*production*) and the downstream operator
//! takes from the front (*consumption*). Buffers enforce the stream-order
//! contract — timestamps are non-decreasing — because every IWP operator's
//! correctness depends on it.
//!
//! Buffers optionally **coalesce punctuation**: consecutive punctuation
//! tuples carry no more information than the last one, so when enabled a
//! punctuation pushed onto a punctuation tail replaces it in place. The
//! paper's Fig. 8(b) shows the memory cost of *not* bounding punctuation at
//! high heartbeat rates; coalescing is the corresponding engineering fix and
//! is evaluated by the `ablation_coalescing` bench.

use std::collections::VecDeque;
use std::sync::Arc;

use millstream_types::{Error, Result, Timestamp, Tuple};

use crate::occupancy::OccupancyTracker;
use crate::sentinel::OrderSentinel;

/// Policy for how a buffer handles punctuation tuples on push.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PunctuationPolicy {
    /// Keep every punctuation tuple (the paper's baseline behaviour).
    #[default]
    KeepAll,
    /// Replace a punctuation tail with the newer punctuation, so at most
    /// one trailing punctuation is ever queued.
    Coalesce,
}

/// What to do with a tuple whose timestamp regresses below the buffer's
/// high-water mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderPolicy {
    /// Reject the push with [`Error::OutOfOrder`] (default; millstream
    /// streams are order-contracted like Stream Mill's).
    #[default]
    Reject,
    /// Clamp the timestamp up to the high-water mark (the pragmatic recovery
    /// used for mildly disordered external feeds).
    Clamp,
    /// Silently drop the tuple.
    Drop,
    /// Accept the tuple as-is. Only valid on buffers consumed by an
    /// order-restoring operator (`Reorder`): every other operator relies on
    /// the ordering contract.
    Accept,
}

/// A FIFO buffer connecting two operators (one arc of the query graph).
#[derive(Debug)]
pub struct Buffer {
    name: String,
    queue: VecDeque<Tuple>,
    /// Highest timestamp ever pushed; the ordering contract floor.
    high_water: Option<Timestamp>,
    /// Highest *punctuation* timestamp ever pushed. A punctuation at or
    /// below this mark is informationless (its ETS was already asserted),
    /// which is what lets the executor drop duplicate heartbeats.
    punct_high_water: Option<Timestamp>,
    punctuation_policy: PunctuationPolicy,
    order_policy: OrderPolicy,
    tracker: Option<Arc<OccupancyTracker>>,
    /// Opt-in ordering-contract checker (`MILLSTREAM_CHECK`); `None` when
    /// checking is off, so the steady-state cost is one branch per push.
    sentinel: Option<OrderSentinel>,
    /// Number of queued *data* tuples (punctuation excluded).
    data_count: usize,
    /// Lifetime counts for diagnostics.
    pushed: u64,
    popped: u64,
    dropped: u64,
}

impl Buffer {
    /// Creates a buffer with default policies and no shared tracker.
    pub fn new(name: impl Into<String>) -> Self {
        Buffer {
            name: name.into(),
            queue: VecDeque::new(),
            high_water: None,
            punct_high_water: None,
            punctuation_policy: PunctuationPolicy::default(),
            order_policy: OrderPolicy::default(),
            tracker: None,
            sentinel: None,
            data_count: 0,
            pushed: 0,
            popped: 0,
            dropped: 0,
        }
    }

    /// Attaches a shared occupancy tracker (builder style).
    pub fn with_tracker(mut self, tracker: Arc<OccupancyTracker>) -> Self {
        self.tracker = Some(tracker);
        self
    }

    /// Replaces the shared occupancy tracker, registering any currently
    /// queued tuples with the new tracker so its occupancy (and peak)
    /// reflect reality from the moment of attachment. Used when a graph is
    /// partitioned into components and each sub-graph gets a private
    /// tracker.
    pub fn set_tracker(&mut self, tracker: Arc<OccupancyTracker>) {
        let punct_count = self.queue.len() - self.data_count;
        for _ in 0..self.data_count {
            tracker.on_enqueue(false);
        }
        for _ in 0..punct_count {
            tracker.on_enqueue(true);
        }
        self.tracker = Some(tracker);
    }

    /// Attaches (or clears) the ordering-contract sentinel for this buffer.
    pub fn set_sentinel(&mut self, sentinel: Option<OrderSentinel>) {
        self.sentinel = sentinel;
    }

    /// The attached sentinel, if any.
    pub fn sentinel(&self) -> Option<&OrderSentinel> {
        self.sentinel.as_ref()
    }

    /// Sets the punctuation policy (builder style).
    pub fn with_punctuation_policy(mut self, policy: PunctuationPolicy) -> Self {
        self.punctuation_policy = policy;
        self
    }

    /// Sets the ordering policy (builder style).
    pub fn with_order_policy(mut self, policy: OrderPolicy) -> Self {
        self.order_policy = policy;
        self
    }

    /// Buffer name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of queued tuples.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Number of queued *data* tuples. Idle-waiting accounting is defined
    /// over data: a lingering trailing punctuation delays nothing
    /// user-visible.
    pub fn data_len(&self) -> usize {
        self.data_count
    }

    /// True iff no tuples are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The tuple at the consumption end, without removing it.
    pub fn front(&self) -> Option<&Tuple> {
        self.queue.front()
    }

    /// Timestamp of the front tuple, if any.
    pub fn front_ts(&self) -> Option<Timestamp> {
        self.queue.front().map(|t| t.ts)
    }

    /// Highest timestamp ever pushed into this buffer.
    pub fn high_water(&self) -> Option<Timestamp> {
        self.high_water
    }

    /// Highest punctuation timestamp ever pushed into this buffer.
    pub fn punct_high_water(&self) -> Option<Timestamp> {
        self.punct_high_water
    }

    /// Lifetime number of successful pushes.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Lifetime number of pops.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Lifetime number of tuples dropped by [`OrderPolicy::Drop`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends a tuple at the production end, enforcing stream order and
    /// applying the punctuation policy.
    pub fn push(&mut self, mut tuple: Tuple) -> Result<()> {
        if let Some(hw) = self.high_water {
            if tuple.ts < hw {
                if let Some(s) = &self.sentinel {
                    // Counted under every policy: Reject fails loudly on its
                    // own and Clamp/Drop recoveries are policy-sanctioned,
                    // but the regression itself is worth surfacing.
                    if self.order_policy != OrderPolicy::Accept {
                        s.note_order_regression(&self.name, tuple.ts, hw);
                    }
                }
                match self.order_policy {
                    OrderPolicy::Reject => {
                        return Err(Error::OutOfOrder {
                            context: format!("buffer {}", self.name),
                            got: tuple.ts.as_micros(),
                            watermark: hw.as_micros(),
                        });
                    }
                    OrderPolicy::Clamp => tuple.ts = hw,
                    OrderPolicy::Drop => {
                        self.dropped += 1;
                        return Ok(());
                    }
                    OrderPolicy::Accept => {}
                }
            }
        }
        if let Some(s) = &self.sentinel {
            // Punctuation dominance: once an ETS at τ was pushed on this
            // arc, data below τ contradicts it. Only `Accept` buffers can
            // reach this with a violating tuple (Reject/Clamp/Drop already
            // handled the regression against the ≥ punctuation high-water
            // mark above), and `Accept` is exactly where nothing else
            // checks.
            if tuple.is_data() {
                if let Some(p) = self.punct_high_water {
                    if tuple.ts < p {
                        s.check_punct_dominance(&self.name, tuple.ts, p)?;
                    }
                }
            }
        }
        // High-water tracks the max (under Accept a regressed tuple must
        // not lower it).
        self.high_water = Some(self.high_water.map_or(tuple.ts, |hw| hw.max(tuple.ts)));
        if tuple.is_punctuation() {
            self.punct_high_water = Some(
                self.punct_high_water
                    .map_or(tuple.ts, |hw| hw.max(tuple.ts)),
            );
        }

        if tuple.is_punctuation() && self.punctuation_policy == PunctuationPolicy::Coalesce {
            if let Some(tail) = self.queue.back_mut() {
                if tail.is_punctuation() {
                    // The newer ETS subsumes the older one.
                    *tail = tuple;
                    if let Some(t) = &self.tracker {
                        t.on_coalesce();
                    }
                    return Ok(());
                }
            }
        }

        if let Some(t) = &self.tracker {
            t.on_enqueue(tuple.is_punctuation());
        }
        if tuple.is_data() {
            self.data_count += 1;
        }
        self.pushed += 1;
        self.queue.push_back(tuple);
        Ok(())
    }

    /// Appends a run of tuples at the production end, applying the same
    /// order and punctuation policies as [`Buffer::push`]. Returns the
    /// number of tuples accepted (coalesced punctuation counts as
    /// accepted). On an ordering error, tuples already accepted stay
    /// queued — exactly as if they had been pushed one by one.
    pub fn push_batch<I>(&mut self, tuples: I) -> Result<usize>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut accepted = 0;
        for tuple in tuples {
            self.push(tuple)?;
            accepted += 1;
        }
        Ok(accepted)
    }

    /// Removes and returns the front tuple.
    pub fn pop(&mut self) -> Option<Tuple> {
        let tuple = self.queue.pop_front()?;
        if let Some(t) = &self.tracker {
            t.on_dequeue(tuple.is_punctuation());
        }
        if tuple.is_data() {
            self.data_count -= 1;
        }
        self.popped += 1;
        Some(tuple)
    }

    /// Removes and returns up to `n` tuples from the consumption end,
    /// preserving FIFO order (tracker-aware, like [`Buffer::pop`]).
    pub fn drain_front(&mut self, n: usize) -> Vec<Tuple> {
        let take = n.min(self.queue.len());
        let mut out = Vec::with_capacity(take);
        for _ in 0..take {
            out.push(self.pop().expect("length checked"));
        }
        out
    }

    /// Removes and drops up to `n` tuples from the consumption end without
    /// returning them. The bulk variant of [`Buffer::pop`] for fused
    /// drop-runs: same accounting, one pass, no intermediate allocation.
    /// Returns the number of tuples removed.
    pub fn discard_front(&mut self, n: usize) -> usize {
        let take = n.min(self.queue.len());
        for tuple in self.queue.drain(..take) {
            if let Some(t) = &self.tracker {
                t.on_dequeue(tuple.is_punctuation());
            }
            if tuple.is_data() {
                self.data_count -= 1;
            }
        }
        self.popped += take as u64;
        take
    }

    /// Iterates the queued tuples front-to-back without consuming them.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.queue.iter()
    }

    /// Removes every queued tuple (tracker-aware). Used on teardown.
    pub fn clear(&mut self) {
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_types::Value;

    fn data(ts: u64) -> Tuple {
        Tuple::data(Timestamp::from_micros(ts), vec![Value::Int(ts as i64)])
    }

    #[test]
    fn fifo_order() {
        let mut b = Buffer::new("t");
        b.push(data(1)).unwrap();
        b.push(data(2)).unwrap();
        b.push(data(2)).unwrap(); // simultaneous tuples are fine
        assert_eq!(b.len(), 3);
        assert_eq!(b.pop().unwrap().ts.as_micros(), 1);
        assert_eq!(b.pop().unwrap().ts.as_micros(), 2);
        assert_eq!(b.pop().unwrap().ts.as_micros(), 2);
        assert!(b.pop().is_none());
    }

    #[test]
    fn rejects_out_of_order_by_default() {
        let mut b = Buffer::new("t");
        b.push(data(10)).unwrap();
        let err = b.push(data(5)).unwrap_err();
        assert!(matches!(
            err,
            Error::OutOfOrder {
                got: 5,
                watermark: 10,
                ..
            }
        ));
        // High-water survives even after the queue drains.
        b.pop();
        assert!(b.push(data(7)).is_err());
        assert!(b.push(data(10)).is_ok(), "equal to high-water is in order");
    }

    #[test]
    fn clamp_policy_raises_timestamp() {
        let mut b = Buffer::new("t").with_order_policy(OrderPolicy::Clamp);
        b.push(data(10)).unwrap();
        b.push(data(5)).unwrap();
        assert_eq!(b.iter().nth(1).unwrap().ts.as_micros(), 10);
    }

    #[test]
    fn accept_policy_permits_disorder() {
        let mut b = Buffer::new("t").with_order_policy(OrderPolicy::Accept);
        b.push(data(10)).unwrap();
        b.push(data(5)).unwrap();
        b.push(data(7)).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b.front_ts().unwrap().as_micros(), 10, "FIFO, not sorted");
        assert_eq!(
            b.high_water().unwrap().as_micros(),
            10,
            "high-water is the max"
        );
    }

    #[test]
    fn drop_policy_counts_drops() {
        let mut b = Buffer::new("t").with_order_policy(OrderPolicy::Drop);
        b.push(data(10)).unwrap();
        b.push(data(5)).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b.dropped(), 1);
    }

    #[test]
    fn coalesces_trailing_punctuation() {
        let tracker = OccupancyTracker::shared();
        let mut b = Buffer::new("t")
            .with_punctuation_policy(PunctuationPolicy::Coalesce)
            .with_tracker(tracker.clone());
        b.push(Tuple::punctuation(Timestamp::from_micros(1)))
            .unwrap();
        b.push(Tuple::punctuation(Timestamp::from_micros(2)))
            .unwrap();
        b.push(Tuple::punctuation(Timestamp::from_micros(3)))
            .unwrap();
        assert_eq!(b.len(), 1, "consecutive punctuation collapses");
        assert_eq!(b.front_ts().unwrap().as_micros(), 3);
        assert_eq!(tracker.coalesced(), 2);
        assert_eq!(tracker.total(), 1);

        // A data tuple breaks the run; the next punctuation queues anew.
        b.push(data(4)).unwrap();
        b.push(Tuple::punctuation(Timestamp::from_micros(5)))
            .unwrap();
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn keep_all_retains_every_punctuation() {
        let mut b = Buffer::new("t");
        b.push(Tuple::punctuation(Timestamp::from_micros(1)))
            .unwrap();
        b.push(Tuple::punctuation(Timestamp::from_micros(2)))
            .unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn tracker_follows_occupancy() {
        let tracker = OccupancyTracker::shared();
        let mut a = Buffer::new("a").with_tracker(tracker.clone());
        let mut b = Buffer::new("b").with_tracker(tracker.clone());
        a.push(data(1)).unwrap();
        b.push(data(1)).unwrap();
        b.push(Tuple::punctuation(Timestamp::from_micros(2)))
            .unwrap();
        assert_eq!(tracker.total(), 3);
        assert_eq!(tracker.peak(), 3);
        assert_eq!(tracker.punctuation_total(), 1);
        a.pop();
        b.clear();
        assert_eq!(tracker.total(), 0);
        assert_eq!(tracker.peak(), 3);
    }

    #[test]
    fn push_batch_matches_sequential_pushes() {
        let tracker = OccupancyTracker::shared();
        let mut b = Buffer::new("t").with_tracker(tracker.clone());
        let n = b
            .push_batch(vec![
                data(1),
                Tuple::punctuation(Timestamp::from_micros(2)),
                data(3),
            ])
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(b.len(), 3);
        assert_eq!(b.data_len(), 2);
        assert_eq!(b.pushed(), 3);
        assert_eq!(tracker.total(), 3);
        assert_eq!(b.high_water().unwrap().as_micros(), 3);
        assert_eq!(b.punct_high_water().unwrap().as_micros(), 2);
    }

    #[test]
    fn push_batch_stops_at_first_ordering_error() {
        let mut b = Buffer::new("t");
        let err = b.push_batch(vec![data(5), data(3), data(9)]).unwrap_err();
        assert!(matches!(err, Error::OutOfOrder { got: 3, .. }));
        assert_eq!(b.len(), 1, "tuples before the error stay queued");
    }

    #[test]
    fn drain_front_preserves_order_and_accounting() {
        let tracker = OccupancyTracker::shared();
        let mut b = Buffer::new("t").with_tracker(tracker.clone());
        b.push_batch((1..=5).map(data)).unwrap();
        let got = b.drain_front(3);
        let ts: Vec<u64> = got.iter().map(|t| t.ts.as_micros()).collect();
        assert_eq!(ts, vec![1, 2, 3]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.data_len(), 2);
        assert_eq!(b.popped(), 3);
        assert_eq!(tracker.total(), 2);
        // Over-asking drains everything without panicking.
        assert_eq!(b.drain_front(100).len(), 2);
        assert!(b.is_empty());
    }

    #[test]
    fn discard_front_matches_pop_accounting() {
        let tracker = OccupancyTracker::shared();
        let mut b = Buffer::new("t").with_tracker(tracker.clone());
        b.push_batch((1..=4).map(data)).unwrap();
        b.push(Tuple::punctuation(Timestamp::from_micros(5)))
            .unwrap();
        assert_eq!(b.discard_front(3), 3);
        assert_eq!(b.len(), 2);
        assert_eq!(b.data_len(), 1);
        assert_eq!(b.popped(), 3);
        assert_eq!(tracker.total(), 2);
        assert_eq!(b.front_ts().unwrap().as_micros(), 4);
        // Over-asking clamps; punctuation accounting stays consistent.
        assert_eq!(b.discard_front(10), 2);
        assert!(b.is_empty());
        assert_eq!(b.data_len(), 0);
        assert_eq!(tracker.total(), 0);
    }

    #[test]
    fn sentinel_counts_masked_regressions() {
        use crate::sentinel::{CheckMode, OrderSentinel, SentinelStats};
        let stats = SentinelStats::shared();
        let mut b = Buffer::new("t").with_order_policy(OrderPolicy::Clamp);
        b.set_sentinel(Some(OrderSentinel::new(
            CheckMode::Counters,
            "op",
            stats.clone(),
        )));
        b.push(data(10)).unwrap();
        b.push(data(5)).unwrap(); // clamped to 10 — counted, not escalated
        assert_eq!(stats.order_regressions(), 1);
        assert_eq!(b.iter().nth(1).unwrap().ts.as_micros(), 10);

        // Reject still fails with its own OutOfOrder, sentinel counts it.
        let mut r = Buffer::new("r");
        r.set_sentinel(Some(OrderSentinel::new(
            CheckMode::Strict,
            "op",
            stats.clone(),
        )));
        r.push(data(10)).unwrap();
        assert!(matches!(
            r.push(data(4)).unwrap_err(),
            Error::OutOfOrder { .. }
        ));
        assert_eq!(stats.order_regressions(), 2);
    }

    #[test]
    fn sentinel_escalates_punct_dominance_on_accept_buffers() {
        use crate::sentinel::{CheckMode, OrderSentinel, SentinelStats};
        let stats = SentinelStats::shared();
        let mut b = Buffer::new("t").with_order_policy(OrderPolicy::Accept);
        b.set_sentinel(Some(OrderSentinel::new(
            CheckMode::Strict,
            "src s",
            stats.clone(),
        )));
        b.push(data(10)).unwrap();
        b.push(data(5)).unwrap(); // disorder is legal on Accept buffers
        b.push(Tuple::punctuation(Timestamp::from_micros(20)))
            .unwrap();
        b.push(data(25)).unwrap();
        // …but data below an asserted punctuation is not.
        let err = b.push(data(15)).unwrap_err();
        assert!(matches!(
            err,
            Error::InvariantViolation {
                got: 15,
                bound: 20,
                ..
            }
        ));
        assert_eq!(stats.punct_violations(), 1);

        // In counters mode the same push is admitted and only counted.
        let stats2 = SentinelStats::shared();
        let mut c = Buffer::new("t").with_order_policy(OrderPolicy::Accept);
        c.set_sentinel(Some(OrderSentinel::new(
            CheckMode::Counters,
            "src s",
            stats2.clone(),
        )));
        c.push(Tuple::punctuation(Timestamp::from_micros(20)))
            .unwrap();
        c.push(data(15)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(stats2.punct_violations(), 1);
    }

    #[test]
    fn counters() {
        let mut b = Buffer::new("t");
        b.push(data(1)).unwrap();
        b.push(data(2)).unwrap();
        b.pop();
        assert_eq!(b.pushed(), 2);
        assert_eq!(b.popped(), 1);
        assert_eq!(b.high_water().unwrap().as_micros(), 2);
    }
}
