//! Inter-operator FIFO buffers.
//!
//! In the paper's query graphs (§3) every arc is a buffer: the upstream
//! operator appends to the tail (*production*) and the downstream operator
//! takes from the front (*consumption*). Buffers enforce the stream-order
//! contract — timestamps are non-decreasing — because every IWP operator's
//! correctness depends on it.
//!
//! Buffers optionally **coalesce punctuation**: consecutive punctuation
//! tuples carry no more information than the last one, so when enabled a
//! punctuation pushed onto a punctuation tail replaces it in place. The
//! paper's Fig. 8(b) shows the memory cost of *not* bounding punctuation at
//! high heartbeat rates; coalescing is the corresponding engineering fix and
//! is evaluated by the `ablation_coalescing` bench.
//!
//! Steady-state allocation discipline: the backing `VecDeque` never
//! shrinks, so push/pop cycles stop touching the allocator once a buffer
//! has seen its high-water occupancy. Bulk consumption composes with
//! that: [`Buffer::drain_front`] hands out a block (`Vec<Tuple>`) from a
//! small per-buffer pool and [`Buffer::recycle`] returns it, so repeated
//! drain/refill cycles reuse the same capacity instead of allocating a
//! fresh vector per batch. Shared occupancy accounting is batched the
//! same way — one tracker update per batch, not per tuple.

use std::collections::VecDeque;
use std::sync::Arc;

use millstream_types::{Error, Result, Timestamp, Tuple};

use crate::occupancy::OccupancyTracker;
use crate::sentinel::OrderSentinel;

/// Policy for how a buffer handles punctuation tuples on push.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PunctuationPolicy {
    /// Keep every punctuation tuple (the paper's baseline behaviour).
    #[default]
    KeepAll,
    /// Replace a punctuation tail with the newer punctuation, so at most
    /// one trailing punctuation is ever queued.
    Coalesce,
}

/// What to do with a tuple whose timestamp regresses below the buffer's
/// high-water mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderPolicy {
    /// Reject the push with [`Error::OutOfOrder`] (default; millstream
    /// streams are order-contracted like Stream Mill's).
    #[default]
    Reject,
    /// Clamp the timestamp up to the high-water mark (the pragmatic recovery
    /// used for mildly disordered external feeds).
    Clamp,
    /// Silently drop the tuple.
    Drop,
    /// Accept the tuple as-is. Only valid on buffers consumed by an
    /// order-restoring operator (`Reorder`): every other operator relies on
    /// the ordering contract.
    Accept,
}

/// A FIFO buffer connecting two operators (one arc of the query graph).
#[derive(Debug)]
pub struct Buffer {
    name: String,
    queue: VecDeque<Tuple>,
    /// Highest timestamp ever pushed; the ordering contract floor.
    high_water: Option<Timestamp>,
    /// Highest *punctuation* timestamp ever pushed. A punctuation at or
    /// below this mark is informationless (its ETS was already asserted),
    /// which is what lets the executor drop duplicate heartbeats.
    punct_high_water: Option<Timestamp>,
    punctuation_policy: PunctuationPolicy,
    order_policy: OrderPolicy,
    tracker: Option<Arc<OccupancyTracker>>,
    /// Opt-in ordering-contract checker (`MILLSTREAM_CHECK`); `None` when
    /// checking is off, so the steady-state cost is one branch per push.
    sentinel: Option<OrderSentinel>,
    /// Number of queued *data* tuples (punctuation excluded).
    data_count: usize,
    /// Lifetime counts for diagnostics.
    pushed: u64,
    popped: u64,
    dropped: u64,
    /// Recycled drain blocks: cleared vectors whose capacity is reused by
    /// the next [`Buffer::drain_front`] instead of allocating afresh.
    pool: Vec<Vec<Tuple>>,
}

/// Blocks retained per buffer for drain reuse. One is enough for the
/// drain→consume→recycle cycle of a single consumer; a little slack
/// covers nested drains during teardown.
const POOL_BLOCKS: usize = 4;

/// Tracker deltas accumulated across one push batch and applied in a
/// single [`OccupancyTracker`] update per counter.
#[derive(Default)]
struct PendingEnqueues {
    data: usize,
    punct: usize,
    coalesced: u64,
}

impl Buffer {
    /// Creates a buffer with default policies and no shared tracker.
    pub fn new(name: impl Into<String>) -> Self {
        Buffer {
            name: name.into(),
            queue: VecDeque::new(),
            high_water: None,
            punct_high_water: None,
            punctuation_policy: PunctuationPolicy::default(),
            order_policy: OrderPolicy::default(),
            tracker: None,
            sentinel: None,
            data_count: 0,
            pushed: 0,
            popped: 0,
            dropped: 0,
            pool: Vec::new(),
        }
    }

    /// Attaches a shared occupancy tracker (builder style).
    pub fn with_tracker(mut self, tracker: Arc<OccupancyTracker>) -> Self {
        self.tracker = Some(tracker);
        self
    }

    /// Replaces the shared occupancy tracker, registering any currently
    /// queued tuples with the new tracker so its occupancy (and peak)
    /// reflect reality from the moment of attachment. Used when a graph is
    /// partitioned into components and each sub-graph gets a private
    /// tracker.
    pub fn set_tracker(&mut self, tracker: Arc<OccupancyTracker>) {
        tracker.on_enqueue_batch(self.data_count, self.queue.len() - self.data_count);
        self.tracker = Some(tracker);
    }

    /// Attaches (or clears) the ordering-contract sentinel for this buffer.
    pub fn set_sentinel(&mut self, sentinel: Option<OrderSentinel>) {
        self.sentinel = sentinel;
    }

    /// The attached sentinel, if any.
    pub fn sentinel(&self) -> Option<&OrderSentinel> {
        self.sentinel.as_ref()
    }

    /// Sets the punctuation policy (builder style).
    pub fn with_punctuation_policy(mut self, policy: PunctuationPolicy) -> Self {
        self.punctuation_policy = policy;
        self
    }

    /// Sets the ordering policy (builder style).
    pub fn with_order_policy(mut self, policy: OrderPolicy) -> Self {
        self.order_policy = policy;
        self
    }

    /// The buffer's out-of-order policy.
    pub fn order_policy(&self) -> OrderPolicy {
        self.order_policy
    }

    /// Buffer name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of queued tuples.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Number of queued *data* tuples. Idle-waiting accounting is defined
    /// over data: a lingering trailing punctuation delays nothing
    /// user-visible.
    pub fn data_len(&self) -> usize {
        self.data_count
    }

    /// True iff no tuples are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The tuple at the consumption end, without removing it.
    pub fn front(&self) -> Option<&Tuple> {
        self.queue.front()
    }

    /// Timestamp of the front tuple, if any.
    pub fn front_ts(&self) -> Option<Timestamp> {
        self.queue.front().map(|t| t.ts)
    }

    /// Highest timestamp ever pushed into this buffer.
    pub fn high_water(&self) -> Option<Timestamp> {
        self.high_water
    }

    /// Highest punctuation timestamp ever pushed into this buffer.
    pub fn punct_high_water(&self) -> Option<Timestamp> {
        self.punct_high_water
    }

    /// Lifetime number of successful pushes.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Lifetime number of pops.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Lifetime number of tuples dropped by [`OrderPolicy::Drop`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends a tuple at the production end, enforcing stream order and
    /// applying the punctuation policy.
    pub fn push(&mut self, tuple: Tuple) -> Result<()> {
        let mut pending = PendingEnqueues::default();
        let result = self.push_inner(tuple, &mut pending);
        self.flush_enqueues(pending);
        result
    }

    /// The push logic minus tracker traffic: order/punctuation policy,
    /// high-water and queue updates, with the tracker deltas accumulated
    /// into `pending` for the caller to flush in one batch.
    fn push_inner(&mut self, mut tuple: Tuple, pending: &mut PendingEnqueues) -> Result<()> {
        if let Some(hw) = self.high_water {
            if tuple.ts < hw {
                if let Some(s) = &self.sentinel {
                    // Counted under every policy: Reject fails loudly on its
                    // own and Clamp/Drop recoveries are policy-sanctioned,
                    // but the regression itself is worth surfacing.
                    if self.order_policy != OrderPolicy::Accept {
                        s.note_order_regression(&self.name, tuple.ts, hw);
                    }
                }
                match self.order_policy {
                    OrderPolicy::Reject => {
                        return Err(Error::OutOfOrder {
                            context: format!("buffer {}", self.name),
                            got: tuple.ts.as_micros(),
                            watermark: hw.as_micros(),
                        });
                    }
                    OrderPolicy::Clamp => tuple.ts = hw,
                    OrderPolicy::Drop => {
                        self.dropped += 1;
                        return Ok(());
                    }
                    OrderPolicy::Accept => {}
                }
            }
        }
        if let Some(s) = &self.sentinel {
            // Punctuation dominance: once an ETS at τ was pushed on this
            // arc, data below τ contradicts it. Only `Accept` buffers can
            // reach this with a violating tuple (Reject/Clamp/Drop already
            // handled the regression against the ≥ punctuation high-water
            // mark above), and `Accept` is exactly where nothing else
            // checks.
            if tuple.is_data() {
                if let Some(p) = self.punct_high_water {
                    if tuple.ts < p {
                        s.check_punct_dominance(&self.name, tuple.ts, p)?;
                    }
                }
            }
        }
        // High-water tracks the max (under Accept a regressed tuple must
        // not lower it).
        self.high_water = Some(self.high_water.map_or(tuple.ts, |hw| hw.max(tuple.ts)));
        if tuple.is_punctuation() {
            self.punct_high_water = Some(
                self.punct_high_water
                    .map_or(tuple.ts, |hw| hw.max(tuple.ts)),
            );
        }

        if tuple.is_punctuation() && self.punctuation_policy == PunctuationPolicy::Coalesce {
            if let Some(tail) = self.queue.back_mut() {
                if tail.is_punctuation() {
                    // The newer ETS subsumes the older one.
                    *tail = tuple;
                    pending.coalesced += 1;
                    return Ok(());
                }
            }
        }

        if tuple.is_data() {
            self.data_count += 1;
            pending.data += 1;
        } else {
            pending.punct += 1;
        }
        self.pushed += 1;
        self.queue.push_back(tuple);
        Ok(())
    }

    /// Applies accumulated enqueue deltas to the shared tracker: one
    /// update per counter per batch, instead of per tuple. Occupancy only
    /// grows within a push batch, so the batched peak equals the
    /// per-tuple peak (see `OccupancyTracker::on_enqueue_batch`).
    fn flush_enqueues(&self, pending: PendingEnqueues) {
        if let Some(t) = &self.tracker {
            t.on_enqueue_batch(pending.data, pending.punct);
            t.on_coalesce_batch(pending.coalesced);
        }
    }

    /// Appends a run of tuples at the production end, applying the same
    /// order and punctuation policies as [`Buffer::push`]. Returns the
    /// number of tuples accepted (coalesced punctuation counts as
    /// accepted). On an ordering error, tuples already accepted stay
    /// queued — exactly as if they had been pushed one by one. The shared
    /// occupancy tracker is updated once for the whole batch.
    pub fn push_batch<I>(&mut self, tuples: I) -> Result<usize>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut accepted = 0;
        let mut pending = PendingEnqueues::default();
        for tuple in tuples {
            if let Err(e) = self.push_inner(tuple, &mut pending) {
                // Tuples accepted before the error stay queued, so their
                // tracker deltas must land too.
                self.flush_enqueues(pending);
                return Err(e);
            }
            accepted += 1;
        }
        self.flush_enqueues(pending);
        Ok(accepted)
    }

    /// Removes and returns the front tuple.
    pub fn pop(&mut self) -> Option<Tuple> {
        let tuple = self.queue.pop_front()?;
        if let Some(t) = &self.tracker {
            t.on_dequeue(tuple.is_punctuation());
        }
        if tuple.is_data() {
            self.data_count -= 1;
        }
        self.popped += 1;
        Some(tuple)
    }

    /// Removes and returns up to `n` tuples from the consumption end,
    /// preserving FIFO order, with the same accounting as [`Buffer::pop`]
    /// applied once for the whole batch. The returned block comes from
    /// this buffer's recycle pool when one is available — pass it back
    /// via [`Buffer::recycle`] after consuming it and steady-state
    /// drain/refill cycles never touch the allocator.
    pub fn drain_front(&mut self, n: usize) -> Vec<Tuple> {
        let take = n.min(self.queue.len());
        let mut out = self.pool.pop().unwrap_or_default();
        out.reserve(take);
        let mut data = 0usize;
        for tuple in self.queue.drain(..take) {
            if tuple.is_data() {
                data += 1;
            }
            out.push(tuple);
        }
        if let Some(t) = &self.tracker {
            t.on_dequeue_batch(data, take - data);
        }
        self.data_count -= data;
        self.popped += take as u64;
        out
    }

    /// Returns a consumed drain block to the buffer's pool. The block is
    /// cleared; its capacity is reused by the next [`Buffer::drain_front`].
    /// At most a handful of blocks are retained — surplus blocks are
    /// simply dropped — and recycling a block from a *different* buffer is
    /// harmless (capacity is capacity).
    pub fn recycle(&mut self, mut block: Vec<Tuple>) {
        block.clear();
        if block.capacity() > 0 && self.pool.len() < POOL_BLOCKS {
            self.pool.push(block);
        }
    }

    /// Number of recycled blocks currently pooled (diagnostic).
    pub fn pooled_blocks(&self) -> usize {
        self.pool.len()
    }

    /// Removes and drops up to `n` tuples from the consumption end without
    /// returning them. The bulk variant of [`Buffer::pop`] for fused
    /// drop-runs: same accounting (one batched tracker update), one pass,
    /// no intermediate allocation. Returns the number of tuples removed.
    pub fn discard_front(&mut self, n: usize) -> usize {
        let take = n.min(self.queue.len());
        let mut data = 0usize;
        for tuple in self.queue.drain(..take) {
            if tuple.is_data() {
                data += 1;
            }
        }
        if let Some(t) = &self.tracker {
            t.on_dequeue_batch(data, take - data);
        }
        self.data_count -= data;
        self.popped += take as u64;
        take
    }

    /// Iterates the queued tuples front-to-back without consuming them.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.queue.iter()
    }

    /// Removes every queued tuple (tracker-aware, batched). Used on
    /// teardown.
    pub fn clear(&mut self) {
        let take = self.queue.len();
        let data = self.data_count;
        self.queue.clear();
        if let Some(t) = &self.tracker {
            t.on_dequeue_batch(data, take - data);
        }
        self.data_count = 0;
        self.popped += take as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_types::Value;

    fn data(ts: u64) -> Tuple {
        Tuple::data(Timestamp::from_micros(ts), vec![Value::Int(ts as i64)])
    }

    #[test]
    fn fifo_order() {
        let mut b = Buffer::new("t");
        b.push(data(1)).unwrap();
        b.push(data(2)).unwrap();
        b.push(data(2)).unwrap(); // simultaneous tuples are fine
        assert_eq!(b.len(), 3);
        assert_eq!(b.pop().unwrap().ts.as_micros(), 1);
        assert_eq!(b.pop().unwrap().ts.as_micros(), 2);
        assert_eq!(b.pop().unwrap().ts.as_micros(), 2);
        assert!(b.pop().is_none());
    }

    #[test]
    fn rejects_out_of_order_by_default() {
        let mut b = Buffer::new("t");
        b.push(data(10)).unwrap();
        let err = b.push(data(5)).unwrap_err();
        assert!(matches!(
            err,
            Error::OutOfOrder {
                got: 5,
                watermark: 10,
                ..
            }
        ));
        // High-water survives even after the queue drains.
        b.pop();
        assert!(b.push(data(7)).is_err());
        assert!(b.push(data(10)).is_ok(), "equal to high-water is in order");
    }

    #[test]
    fn clamp_policy_raises_timestamp() {
        let mut b = Buffer::new("t").with_order_policy(OrderPolicy::Clamp);
        b.push(data(10)).unwrap();
        b.push(data(5)).unwrap();
        assert_eq!(b.iter().nth(1).unwrap().ts.as_micros(), 10);
    }

    #[test]
    fn accept_policy_permits_disorder() {
        let mut b = Buffer::new("t").with_order_policy(OrderPolicy::Accept);
        b.push(data(10)).unwrap();
        b.push(data(5)).unwrap();
        b.push(data(7)).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b.front_ts().unwrap().as_micros(), 10, "FIFO, not sorted");
        assert_eq!(
            b.high_water().unwrap().as_micros(),
            10,
            "high-water is the max"
        );
    }

    #[test]
    fn drop_policy_counts_drops() {
        let mut b = Buffer::new("t").with_order_policy(OrderPolicy::Drop);
        b.push(data(10)).unwrap();
        b.push(data(5)).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b.dropped(), 1);
    }

    #[test]
    fn coalesces_trailing_punctuation() {
        let tracker = OccupancyTracker::shared();
        let mut b = Buffer::new("t")
            .with_punctuation_policy(PunctuationPolicy::Coalesce)
            .with_tracker(tracker.clone());
        b.push(Tuple::punctuation(Timestamp::from_micros(1)))
            .unwrap();
        b.push(Tuple::punctuation(Timestamp::from_micros(2)))
            .unwrap();
        b.push(Tuple::punctuation(Timestamp::from_micros(3)))
            .unwrap();
        assert_eq!(b.len(), 1, "consecutive punctuation collapses");
        assert_eq!(b.front_ts().unwrap().as_micros(), 3);
        assert_eq!(tracker.coalesced(), 2);
        assert_eq!(tracker.total(), 1);

        // A data tuple breaks the run; the next punctuation queues anew.
        b.push(data(4)).unwrap();
        b.push(Tuple::punctuation(Timestamp::from_micros(5)))
            .unwrap();
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn keep_all_retains_every_punctuation() {
        let mut b = Buffer::new("t");
        b.push(Tuple::punctuation(Timestamp::from_micros(1)))
            .unwrap();
        b.push(Tuple::punctuation(Timestamp::from_micros(2)))
            .unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn tracker_follows_occupancy() {
        let tracker = OccupancyTracker::shared();
        let mut a = Buffer::new("a").with_tracker(tracker.clone());
        let mut b = Buffer::new("b").with_tracker(tracker.clone());
        a.push(data(1)).unwrap();
        b.push(data(1)).unwrap();
        b.push(Tuple::punctuation(Timestamp::from_micros(2)))
            .unwrap();
        assert_eq!(tracker.total(), 3);
        assert_eq!(tracker.peak(), 3);
        assert_eq!(tracker.punctuation_total(), 1);
        a.pop();
        b.clear();
        assert_eq!(tracker.total(), 0);
        assert_eq!(tracker.peak(), 3);
    }

    #[test]
    fn push_batch_matches_sequential_pushes() {
        let tracker = OccupancyTracker::shared();
        let mut b = Buffer::new("t").with_tracker(tracker.clone());
        let n = b
            .push_batch(vec![
                data(1),
                Tuple::punctuation(Timestamp::from_micros(2)),
                data(3),
            ])
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(b.len(), 3);
        assert_eq!(b.data_len(), 2);
        assert_eq!(b.pushed(), 3);
        assert_eq!(tracker.total(), 3);
        assert_eq!(b.high_water().unwrap().as_micros(), 3);
        assert_eq!(b.punct_high_water().unwrap().as_micros(), 2);
    }

    #[test]
    fn push_batch_stops_at_first_ordering_error() {
        let mut b = Buffer::new("t");
        let err = b.push_batch(vec![data(5), data(3), data(9)]).unwrap_err();
        assert!(matches!(err, Error::OutOfOrder { got: 3, .. }));
        assert_eq!(b.len(), 1, "tuples before the error stay queued");
    }

    #[test]
    fn drain_front_preserves_order_and_accounting() {
        let tracker = OccupancyTracker::shared();
        let mut b = Buffer::new("t").with_tracker(tracker.clone());
        b.push_batch((1..=5).map(data)).unwrap();
        let got = b.drain_front(3);
        let ts: Vec<u64> = got.iter().map(|t| t.ts.as_micros()).collect();
        assert_eq!(ts, vec![1, 2, 3]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.data_len(), 2);
        assert_eq!(b.popped(), 3);
        assert_eq!(tracker.total(), 2);
        // Over-asking drains everything without panicking.
        assert_eq!(b.drain_front(100).len(), 2);
        assert!(b.is_empty());
    }

    #[test]
    fn discard_front_matches_pop_accounting() {
        let tracker = OccupancyTracker::shared();
        let mut b = Buffer::new("t").with_tracker(tracker.clone());
        b.push_batch((1..=4).map(data)).unwrap();
        b.push(Tuple::punctuation(Timestamp::from_micros(5)))
            .unwrap();
        assert_eq!(b.discard_front(3), 3);
        assert_eq!(b.len(), 2);
        assert_eq!(b.data_len(), 1);
        assert_eq!(b.popped(), 3);
        assert_eq!(tracker.total(), 2);
        assert_eq!(b.front_ts().unwrap().as_micros(), 4);
        // Over-asking clamps; punctuation accounting stays consistent.
        assert_eq!(b.discard_front(10), 2);
        assert!(b.is_empty());
        assert_eq!(b.data_len(), 0);
        assert_eq!(tracker.total(), 0);
    }

    #[test]
    fn recycled_blocks_are_reused_by_drain_front() {
        let mut b = Buffer::new("t");
        b.push_batch((1..=8).map(data)).unwrap();
        let block = b.drain_front(4);
        let cap = block.capacity();
        let ptr = block.as_ptr();
        b.recycle(block);
        assert_eq!(b.pooled_blocks(), 1);
        let reused = b.drain_front(4);
        assert_eq!(b.pooled_blocks(), 0, "drain takes the pooled block");
        assert_eq!(reused.as_ptr(), ptr, "same backing storage came back");
        assert!(reused.capacity() >= cap);
        let ts: Vec<u64> = reused.iter().map(|t| t.ts.as_micros()).collect();
        assert_eq!(ts, vec![5, 6, 7, 8]);
        // Zero-capacity blocks are not worth pooling; the pool is bounded.
        b.recycle(Vec::new());
        assert_eq!(b.pooled_blocks(), 0);
        for _ in 0..10 {
            b.recycle(Vec::with_capacity(4));
        }
        assert!(b.pooled_blocks() <= 4, "pool stays bounded");
    }

    #[test]
    fn batched_tracker_accounting_matches_per_tuple_path() {
        // The bulk paths (push_batch / drain_front / discard_front / clear)
        // update the shared tracker once per batch. This must be
        // observationally identical — including the peak — to a buffer
        // driven one tuple at a time through push/pop.
        let bulk_t = OccupancyTracker::shared();
        let unit_t = OccupancyTracker::shared();
        let mut bulk = Buffer::new("bulk").with_tracker(bulk_t.clone());
        let mut unit = Buffer::new("unit").with_tracker(unit_t.clone());

        let wave = || {
            let mut w: Vec<Tuple> = (1..=6).map(data).collect();
            w.push(Tuple::punctuation(Timestamp::from_micros(7)));
            w
        };
        bulk.push_batch(wave()).unwrap();
        for t in wave() {
            unit.push(t).unwrap();
        }
        let block = bulk.drain_front(5);
        bulk.recycle(block);
        for _ in 0..5 {
            unit.pop();
        }
        bulk.push_batch((8..=9).map(data)).unwrap();
        for t in (8..=9).map(data) {
            unit.push(t).unwrap();
        }
        bulk.clear();
        unit.clear();

        for (b, t) in [(&bulk, &bulk_t), (&unit, &unit_t)] {
            assert_eq!(t.total(), 0);
            assert_eq!(t.peak(), 7, "peak must match the per-tuple path");
            assert_eq!(t.enqueued(), 9);
            assert_eq!(t.punctuation_enqueued(), 1);
            assert_eq!(b.pushed(), 9);
            assert_eq!(b.popped(), 9);
        }
    }

    #[test]
    fn sentinel_counts_masked_regressions() {
        use crate::sentinel::{CheckMode, OrderSentinel, SentinelStats};
        let stats = SentinelStats::shared();
        let mut b = Buffer::new("t").with_order_policy(OrderPolicy::Clamp);
        b.set_sentinel(Some(OrderSentinel::new(
            CheckMode::Counters,
            "op",
            stats.clone(),
        )));
        b.push(data(10)).unwrap();
        b.push(data(5)).unwrap(); // clamped to 10 — counted, not escalated
        assert_eq!(stats.order_regressions(), 1);
        assert_eq!(b.iter().nth(1).unwrap().ts.as_micros(), 10);

        // Reject still fails with its own OutOfOrder, sentinel counts it.
        let mut r = Buffer::new("r");
        r.set_sentinel(Some(OrderSentinel::new(
            CheckMode::Strict,
            "op",
            stats.clone(),
        )));
        r.push(data(10)).unwrap();
        assert!(matches!(
            r.push(data(4)).unwrap_err(),
            Error::OutOfOrder { .. }
        ));
        assert_eq!(stats.order_regressions(), 2);
    }

    #[test]
    fn sentinel_escalates_punct_dominance_on_accept_buffers() {
        use crate::sentinel::{CheckMode, OrderSentinel, SentinelStats};
        let stats = SentinelStats::shared();
        let mut b = Buffer::new("t").with_order_policy(OrderPolicy::Accept);
        b.set_sentinel(Some(OrderSentinel::new(
            CheckMode::Strict,
            "src s",
            stats.clone(),
        )));
        b.push(data(10)).unwrap();
        b.push(data(5)).unwrap(); // disorder is legal on Accept buffers
        b.push(Tuple::punctuation(Timestamp::from_micros(20)))
            .unwrap();
        b.push(data(25)).unwrap();
        // …but data below an asserted punctuation is not.
        let err = b.push(data(15)).unwrap_err();
        assert!(matches!(
            err,
            Error::InvariantViolation {
                got: 15,
                bound: 20,
                ..
            }
        ));
        assert_eq!(stats.punct_violations(), 1);

        // In counters mode the same push is admitted and only counted.
        let stats2 = SentinelStats::shared();
        let mut c = Buffer::new("t").with_order_policy(OrderPolicy::Accept);
        c.set_sentinel(Some(OrderSentinel::new(
            CheckMode::Counters,
            "src s",
            stats2.clone(),
        )));
        c.push(Tuple::punctuation(Timestamp::from_micros(20)))
            .unwrap();
        c.push(data(15)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(stats2.punct_violations(), 1);
    }

    #[test]
    fn counters() {
        let mut b = Buffer::new("t");
        b.push(data(1)).unwrap();
        b.push(data(2)).unwrap();
        b.pop();
        assert_eq!(b.pushed(), 2);
        assert_eq!(b.popped(), 1);
        assert_eq!(b.high_water().unwrap().as_micros(), 2);
    }
}
