//! Feedback punctuation: pressure signals flowing *against* the data
//! direction (Fernández-Moctezuma & Tufte's inter-operator feedback).
//!
//! Ordinary punctuation travels with the data and asserts "no more tuples
//! below τ". Feedback punctuation travels the other way and asserts "the
//! consumer is under pressure" — a queue-occupancy level classified by
//! configurable [`Watermarks`]. Upstream nodes react without ever breaking
//! the ordering or punctuation-dominance contracts: sources pace or shed
//! (declared, counted — never silent), order-restoring operators may
//! tighten their slack when explicitly allowed, and at the wire boundary
//! the server translates pressure into producer-side send-window hints.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Queue-pressure classification carried by a feedback signal.
///
/// The discriminants are the wire encoding (`Frame::Feedback.level`), so
/// they are stable protocol values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum PressureLevel {
    /// Occupancy below the high watermark: no upstream action needed.
    #[default]
    Normal = 0,
    /// Occupancy at or above the high watermark: pace down.
    High = 1,
    /// Occupancy at or above the critical watermark: minimal window,
    /// shedding permitted where it was enabled.
    Critical = 2,
}

impl PressureLevel {
    /// The wire encoding of the level.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decodes a wire level, saturating unknown values to `Critical` so a
    /// newer peer's stronger signal is never weakened.
    pub fn from_u8(v: u8) -> PressureLevel {
        match v {
            0 => PressureLevel::Normal,
            1 => PressureLevel::High,
            _ => PressureLevel::Critical,
        }
    }

    /// True iff the level calls for an upstream reaction.
    pub fn is_elevated(self) -> bool {
        self != PressureLevel::Normal
    }
}

/// Occupancy thresholds that classify queue depth into a
/// [`PressureLevel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermarks {
    /// Occupancy at or above this is [`PressureLevel::High`].
    pub high: usize,
    /// Occupancy at or above this is [`PressureLevel::Critical`].
    pub critical: usize,
}

impl Watermarks {
    /// Creates a watermark pair; `critical` is raised to at least `high`
    /// so the classification is monotone by construction.
    pub fn new(high: usize, critical: usize) -> Watermarks {
        Watermarks {
            high: high.max(1),
            critical: critical.max(high.max(1)),
        }
    }

    /// Classifies an occupancy reading.
    pub fn classify(&self, occupancy: usize) -> PressureLevel {
        if occupancy >= self.critical {
            PressureLevel::Critical
        } else if occupancy >= self.high {
            PressureLevel::High
        } else {
            PressureLevel::Normal
        }
    }
}

impl Default for Watermarks {
    /// Defaults sized for the bounded wire queues (1024): react at half
    /// occupancy, clamp hard near the brim.
    fn default() -> Watermarks {
        Watermarks::new(512, 896)
    }
}

/// One feedback signal delivered to an upstream operator or source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedbackSignal {
    /// The pressure level downstream of the receiver.
    pub level: PressureLevel,
    /// The queued-tuple count that produced the level (the receiver's own
    /// input occupancy plus downstream pressure).
    pub queued: usize,
    /// Whether the receiver may *degrade* its output to relieve pressure
    /// (e.g. a `Reorder` tightening its slack). When false the signal is
    /// purely advisory pacing and must not change any output.
    pub allow_degraded: bool,
}

/// Lock-free per-source pressure registers, shared between an executor
/// (which writes them at quiescence) and external observers such as the
/// network server (which reads them to pace producers).
#[derive(Debug)]
pub struct FeedbackRegisters {
    levels: Vec<AtomicU8>,
}

impl FeedbackRegisters {
    /// Creates registers for `n` sources, all `Normal`, wrapped for
    /// sharing.
    pub fn shared(n: usize) -> Arc<FeedbackRegisters> {
        Arc::new(FeedbackRegisters {
            levels: (0..n).map(|_| AtomicU8::new(0)).collect(),
        })
    }

    /// Number of sources covered.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// True iff there are no registers.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Stores the level for source `i`.
    pub fn set(&self, i: usize, level: PressureLevel) {
        if let Some(cell) = self.levels.get(i) {
            cell.store(level.as_u8(), Ordering::Relaxed);
        }
    }

    /// Reads the level for source `i` (`Normal` when out of range).
    pub fn get(&self, i: usize) -> PressureLevel {
        self.levels
            .get(i)
            .map(|cell| PressureLevel::from_u8(cell.load(Ordering::Relaxed)))
            .unwrap_or_default()
    }

    /// The maximum level across all sources.
    pub fn max_level(&self) -> PressureLevel {
        (0..self.levels.len())
            .map(|i| self.get(i))
            .max()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_roundtrip() {
        assert!(PressureLevel::Normal < PressureLevel::High);
        assert!(PressureLevel::High < PressureLevel::Critical);
        for lvl in [
            PressureLevel::Normal,
            PressureLevel::High,
            PressureLevel::Critical,
        ] {
            assert_eq!(PressureLevel::from_u8(lvl.as_u8()), lvl);
        }
        // Unknown wire values saturate upward, never downward.
        assert_eq!(PressureLevel::from_u8(200), PressureLevel::Critical);
        assert!(!PressureLevel::Normal.is_elevated());
        assert!(PressureLevel::High.is_elevated());
    }

    #[test]
    fn watermarks_classify_monotonically() {
        let wm = Watermarks::new(10, 20);
        assert_eq!(wm.classify(0), PressureLevel::Normal);
        assert_eq!(wm.classify(9), PressureLevel::Normal);
        assert_eq!(wm.classify(10), PressureLevel::High);
        assert_eq!(wm.classify(19), PressureLevel::High);
        assert_eq!(wm.classify(20), PressureLevel::Critical);
        assert_eq!(wm.classify(usize::MAX), PressureLevel::Critical);
    }

    #[test]
    fn degenerate_watermarks_are_repaired() {
        // critical below high is raised; zero thresholds become 1 so an
        // empty queue is always Normal.
        let wm = Watermarks::new(10, 3);
        assert_eq!(wm.critical, 10);
        let wm = Watermarks::new(0, 0);
        assert_eq!(wm.classify(0), PressureLevel::Normal);
        assert_eq!(wm.classify(1), PressureLevel::Critical);
    }

    #[test]
    fn registers_store_and_max() {
        let regs = FeedbackRegisters::shared(3);
        assert_eq!(regs.len(), 3);
        assert!(!regs.is_empty());
        assert_eq!(regs.max_level(), PressureLevel::Normal);
        regs.set(1, PressureLevel::High);
        regs.set(2, PressureLevel::Critical);
        assert_eq!(regs.get(0), PressureLevel::Normal);
        assert_eq!(regs.get(1), PressureLevel::High);
        assert_eq!(regs.get(2), PressureLevel::Critical);
        assert_eq!(regs.max_level(), PressureLevel::Critical);
        // Out-of-range accesses are harmless.
        regs.set(9, PressureLevel::Critical);
        assert_eq!(regs.get(9), PressureLevel::Normal);
        assert!(FeedbackRegisters::shared(0).is_empty());
    }
}
