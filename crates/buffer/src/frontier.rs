//! Per-worker frontier summaries for intra-component data parallelism.
//!
//! When one connected component is sharded across N workers, the paper's
//! per-source ETS/TSM registers are no longer enough: each worker sees
//! only its key-partition of every source stream, so a TSM register
//! filled from local data alone under-reports global progress and an IWP
//! operator would idle-wait forever on tuples that were routed elsewhere.
//! The [`FrontierTable`] generalizes the registers into compact,
//! lock-free **frontier summaries** shared by the router, the shard
//! workers and the merge stage (the "timestamp tokens" coordination model
//! of Lattuada & McSherry, specialized to millstream's ordered streams):
//!
//! * the **router** publishes, per source, the routed data high-water
//!   mark ([`FrontierTable::note_routed`], ordered sources only — a
//!   routed tuple at `t` proves every future tuple of that source is
//!   `≥ t` *on every shard*) and the broadcast punctuation high-water
//!   mark ([`FrontierTable::note_punct`], valid even for unordered
//!   sources because a heartbeat is the producer's global promise);
//! * each **shard worker** publishes, per `(source, shard)`, the frontier
//!   it has applied to its local source ([`FrontierTable::publish_applied`])
//!   and one per-shard **output floor** ([`FrontierTable::publish_floor`]):
//!   a lower bound on the timestamp of anything the shard may still emit;
//! * the **merge stage** (an ordinary IWP union over the shard outputs)
//!   unblocks when the *minimum floor across shards* passes its stall
//!   point — the exact analogue of the paper's relaxed `more` condition,
//!   with the frontier advance generated on demand, only when the merge
//!   operator actually starves.
//!
//! Timestamps are stored in `AtomicU64` slots encoded as `micros + 1`
//! (saturating), with `0` meaning *unset* — a summary must never be
//! mistaken for an assertion at time zero. All updates are `fetch_max`,
//! so every published value is monotone by construction; regressions are
//! rejected at the slot and surface through the sentinel layer's
//! frontier-consistency check instead of corrupting the table.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use millstream_types::Timestamp;

/// Encodes a timestamp into a slot value (`0` stays reserved for unset).
fn encode(ts: Timestamp) -> u64 {
    ts.as_micros().saturating_add(1)
}

/// Decodes a slot value back into a timestamp (`None` when unset).
fn decode(raw: u64) -> Option<Timestamp> {
    if raw == 0 {
        None
    } else {
        Some(Timestamp::from_micros(raw - 1))
    }
}

/// Lock-free frontier summaries for one sharded component.
///
/// Indexed by the component's local source ids (`0..num_sources`) and
/// shard ids (`0..num_shards`). See the module docs for who writes what.
#[derive(Debug)]
pub struct FrontierTable {
    num_sources: usize,
    num_shards: usize,
    /// Per source: routed data high-water (router; ordered sources only).
    routed: Vec<AtomicU64>,
    /// Per source: broadcast punctuation high-water (router).
    punct: Vec<AtomicU64>,
    /// Per `(source, shard)` (source-major): the frontier the shard worker
    /// has applied to its local copy of the source.
    applied: Vec<AtomicU64>,
    /// Per shard: the published output floor.
    floors: Vec<AtomicU64>,
}

impl FrontierTable {
    /// A fresh table for `num_sources` sources sharded `num_shards` ways.
    pub fn new(num_sources: usize, num_shards: usize) -> Self {
        let fill = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        FrontierTable {
            num_sources,
            num_shards,
            routed: fill(num_sources),
            punct: fill(num_sources),
            applied: fill(num_sources * num_shards),
            floors: fill(num_shards),
        }
    }

    /// A shareable handle (router, workers and merge all hold one).
    pub fn shared(num_sources: usize, num_shards: usize) -> Arc<Self> {
        Arc::new(Self::new(num_sources, num_shards))
    }

    /// Number of sources tracked.
    pub fn num_sources(&self) -> usize {
        self.num_sources
    }

    /// Number of shards tracked.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    fn raise(slot: &AtomicU64, ts: Timestamp) {
        slot.fetch_max(encode(ts), Ordering::Release);
    }

    /// Router: a data tuple of `source` at `ts` was routed to some shard.
    /// Only meaningful for ordered sources (an unordered stream's data
    /// high-water bounds nothing).
    pub fn note_routed(&self, source: usize, ts: Timestamp) {
        Self::raise(&self.routed[source], ts);
    }

    /// Router: punctuation at `ts` was broadcast for `source` — a global
    /// promise, valid on every shard regardless of source ordering.
    pub fn note_punct(&self, source: usize, ts: Timestamp) {
        Self::raise(&self.punct[source], ts);
    }

    /// Shard worker: `shard` has applied frontier `ts` for `source`.
    pub fn publish_applied(&self, source: usize, shard: usize, ts: Timestamp) {
        Self::raise(&self.applied[source * self.num_shards + shard], ts);
    }

    /// Shard worker: `shard` promises every future emission is `≥ ts`.
    pub fn publish_floor(&self, shard: usize, ts: Timestamp) {
        Self::raise(&self.floors[shard], ts);
    }

    /// The bound on future data of `source` arriving at *any* shard:
    /// `max(routed, punct)` for ordered sources, punctuation only for
    /// unordered ones (late data may still regress below the routed mark).
    pub fn source_frontier(&self, source: usize, ordered: bool) -> Option<Timestamp> {
        let punct = decode(self.punct[source].load(Ordering::Acquire));
        if !ordered {
            return punct;
        }
        let routed = decode(self.routed[source].load(Ordering::Acquire));
        match (routed, punct) {
            (Some(r), Some(p)) => Some(r.max(p)),
            (r, p) => r.or(p),
        }
    }

    /// The punctuation high-water broadcast for `source`.
    pub fn punct_frontier(&self, source: usize) -> Option<Timestamp> {
        decode(self.punct[source].load(Ordering::Acquire))
    }

    /// The frontier `shard` has applied for `source`.
    pub fn applied(&self, source: usize, shard: usize) -> Option<Timestamp> {
        decode(self.applied[source * self.num_shards + shard].load(Ordering::Acquire))
    }

    /// The minimum applied frontier for `source` across every shard —
    /// `None` while any shard has not published yet. This is the value an
    /// IWP operator's stall point is compared against.
    pub fn min_applied(&self, source: usize) -> Option<Timestamp> {
        let mut min: Option<Timestamp> = None;
        for shard in 0..self.num_shards {
            match self.applied(source, shard) {
                None => return None,
                Some(ts) => min = Some(min.map_or(ts, |m| m.min(ts))),
            }
        }
        min
    }

    /// The output floor `shard` last published.
    pub fn floor(&self, shard: usize) -> Option<Timestamp> {
        decode(self.floors[shard].load(Ordering::Acquire))
    }

    /// The minimum published floor across every shard — `None` while any
    /// shard has not published yet.
    pub fn min_floor(&self) -> Option<Timestamp> {
        let mut min: Option<Timestamp> = None;
        for shard in 0..self.num_shards {
            match self.floor(shard) {
                None => return None,
                Some(ts) => min = Some(min.map_or(ts, |m| m.min(ts))),
            }
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(micros: u64) -> Timestamp {
        Timestamp::from_micros(micros)
    }

    #[test]
    fn unset_slots_read_as_none() {
        let t = FrontierTable::new(2, 3);
        assert_eq!(t.num_sources(), 2);
        assert_eq!(t.num_shards(), 3);
        assert_eq!(t.source_frontier(0, true), None);
        assert_eq!(t.source_frontier(1, false), None);
        assert_eq!(t.applied(0, 2), None);
        assert_eq!(t.min_applied(0), None);
        assert_eq!(t.floor(1), None);
        assert_eq!(t.min_floor(), None);
    }

    #[test]
    fn time_zero_is_distinguishable_from_unset() {
        let t = FrontierTable::new(1, 1);
        t.note_routed(0, Timestamp::ZERO);
        assert_eq!(t.source_frontier(0, true), Some(Timestamp::ZERO));
        t.publish_floor(0, Timestamp::ZERO);
        assert_eq!(t.min_floor(), Some(Timestamp::ZERO));
    }

    #[test]
    fn source_frontier_combines_routed_and_punct_for_ordered() {
        let t = FrontierTable::new(1, 2);
        t.note_routed(0, ts(10));
        assert_eq!(t.source_frontier(0, true), Some(ts(10)));
        t.note_punct(0, ts(25));
        assert_eq!(t.source_frontier(0, true), Some(ts(25)));
        // Unordered sources only trust the broadcast punctuation.
        assert_eq!(t.source_frontier(0, false), Some(ts(25)));
        t.note_routed(0, ts(40));
        assert_eq!(t.source_frontier(0, true), Some(ts(40)));
        assert_eq!(t.source_frontier(0, false), Some(ts(25)));
    }

    #[test]
    fn updates_are_monotone() {
        let t = FrontierTable::new(1, 1);
        t.note_routed(0, ts(50));
        t.note_routed(0, ts(20));
        assert_eq!(t.source_frontier(0, true), Some(ts(50)));
        t.publish_floor(0, ts(9));
        t.publish_floor(0, ts(3));
        assert_eq!(t.floor(0), Some(ts(9)));
        t.publish_applied(0, 0, ts(7));
        t.publish_applied(0, 0, ts(2));
        assert_eq!(t.applied(0, 0), Some(ts(7)));
    }

    #[test]
    fn minima_require_every_shard() {
        let t = FrontierTable::new(1, 3);
        t.publish_floor(0, ts(10));
        t.publish_floor(2, ts(4));
        assert_eq!(t.min_floor(), None, "shard 1 has not published");
        t.publish_floor(1, ts(7));
        assert_eq!(t.min_floor(), Some(ts(4)));

        t.publish_applied(0, 0, ts(10));
        t.publish_applied(0, 1, ts(30));
        assert_eq!(t.min_applied(0), None);
        t.publish_applied(0, 2, ts(20));
        assert_eq!(t.min_applied(0), Some(ts(10)));
    }

    #[test]
    fn timestamp_max_saturates() {
        let t = FrontierTable::new(1, 1);
        t.note_punct(0, Timestamp::MAX);
        let f = t.source_frontier(0, false).unwrap();
        assert_eq!(f.as_micros(), u64::MAX - 1, "encode saturates below MAX");
    }

    #[test]
    fn table_is_shareable_across_threads() {
        let t = FrontierTable::shared(1, 4);
        let mut handles = Vec::new();
        for shard in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    t.publish_floor(shard, ts(i));
                    t.publish_applied(0, shard, ts(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.min_floor(), Some(ts(99)));
        assert_eq!(t.min_applied(0), Some(ts(99)));
    }
}
