//! # millstream-buffer
//!
//! Inter-operator buffers and Time-Stamp Memory registers for the
//! millstream DSMS.
//!
//! * [`Buffer`] — the FIFO arc of a query graph, with stream-order
//!   enforcement, configurable out-of-order handling and optional
//!   punctuation coalescing.
//! * [`TsmRegister`] / [`TsmBank`] — the per-input Time-Stamp Memory of
//!   idle-waiting-prone operators (paper §4.1).
//! * [`OccupancyTracker`] — graph-wide queue occupancy and peak accounting
//!   (the Fig. 8 "peak total queue size" metric).
//! * [`OrderSentinel`] / [`SentinelStats`] / [`CheckMode`] — the opt-in
//!   runtime ordering-contract checks (`MILLSTREAM_CHECK={off,counters,strict}`).
//! * [`PressureLevel`] / [`Watermarks`] / [`FeedbackSignal`] /
//!   [`FeedbackRegisters`] — feedback punctuation flowing against the data
//!   direction (queue-pressure levels, upstream pacing and declared
//!   shedding).
//! * [`FrontierTable`] — per-worker frontier summaries for intra-component
//!   data parallelism (the sharded generalization of per-source ETS/TSM
//!   registers).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod feedback;
mod fifo;
mod frontier;
mod occupancy;
mod sentinel;
mod tsm;

pub use feedback::{FeedbackRegisters, FeedbackSignal, PressureLevel, Watermarks};
pub use fifo::{Buffer, OrderPolicy, PunctuationPolicy};
pub use frontier::FrontierTable;
pub use occupancy::OccupancyTracker;
pub use sentinel::{CheckMode, OrderSentinel, SentinelStats};
pub use tsm::{StarveList, TsmBank, TsmRegister};
