//! # millstream-buffer
//!
//! Inter-operator buffers and Time-Stamp Memory registers for the
//! millstream DSMS.
//!
//! * [`Buffer`] — the FIFO arc of a query graph, with stream-order
//!   enforcement, configurable out-of-order handling and optional
//!   punctuation coalescing.
//! * [`TsmRegister`] / [`TsmBank`] — the per-input Time-Stamp Memory of
//!   idle-waiting-prone operators (paper §4.1).
//! * [`OccupancyTracker`] — graph-wide queue occupancy and peak accounting
//!   (the Fig. 8 "peak total queue size" metric).
//! * [`OrderSentinel`] / [`SentinelStats`] / [`CheckMode`] — the opt-in
//!   runtime ordering-contract checks (`MILLSTREAM_CHECK={off,counters,strict}`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod fifo;
mod occupancy;
mod sentinel;
mod tsm;

pub use fifo::{Buffer, OrderPolicy, PunctuationPolicy};
pub use occupancy::OccupancyTracker;
pub use sentinel::{CheckMode, OrderSentinel, SentinelStats};
pub use tsm::{StarveList, TsmBank, TsmRegister};
