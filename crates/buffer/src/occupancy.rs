//! Shared occupancy accounting across all buffers of a query graph.
//!
//! The paper's Figure 8 measures **peak total queue size** — "the total
//! number of tuples in the buffers" at the worst instant of the run. Every
//! buffer of a graph therefore shares one [`OccupancyTracker`] that is
//! bumped on each enqueue and decremented on each dequeue; the peak is
//! maintained incrementally so no sampling is needed.

use std::cell::Cell;
use std::rc::Rc;

/// Aggregate queue-occupancy statistics shared by all buffers of one graph.
///
/// Single-threaded by design (the paper's execution model runs one
/// scheduling unit on one thread), hence `Cell` + `Rc`.
#[derive(Debug, Default)]
pub struct OccupancyTracker {
    total: Cell<usize>,
    peak: Cell<usize>,
    data_total: Cell<usize>,
    punct_total: Cell<usize>,
    enqueued: Cell<u64>,
    punct_enqueued: Cell<u64>,
    coalesced: Cell<u64>,
}

impl OccupancyTracker {
    /// Creates a fresh tracker wrapped for sharing.
    pub fn shared() -> Rc<OccupancyTracker> {
        Rc::new(OccupancyTracker::default())
    }

    /// Records one tuple entering some buffer.
    pub fn on_enqueue(&self, punctuation: bool) {
        let t = self.total.get() + 1;
        self.total.set(t);
        if t > self.peak.get() {
            self.peak.set(t);
        }
        self.enqueued.set(self.enqueued.get() + 1);
        if punctuation {
            self.punct_total.set(self.punct_total.get() + 1);
            self.punct_enqueued.set(self.punct_enqueued.get() + 1);
        } else {
            self.data_total.set(self.data_total.get() + 1);
        }
    }

    /// Records one tuple leaving some buffer.
    pub fn on_dequeue(&self, punctuation: bool) {
        self.total.set(self.total.get().saturating_sub(1));
        if punctuation {
            self.punct_total
                .set(self.punct_total.get().saturating_sub(1));
        } else {
            self.data_total.set(self.data_total.get().saturating_sub(1));
        }
    }

    /// Records a punctuation tuple that was merged into the buffer tail
    /// instead of occupying a new slot.
    pub fn on_coalesce(&self) {
        self.coalesced.set(self.coalesced.get() + 1);
    }

    /// Current total number of queued tuples across the graph.
    pub fn total(&self) -> usize {
        self.total.get()
    }

    /// Current number of queued *data* tuples.
    pub fn data_total(&self) -> usize {
        self.data_total.get()
    }

    /// Current number of queued punctuation tuples.
    pub fn punctuation_total(&self) -> usize {
        self.punct_total.get()
    }

    /// Highest total occupancy observed so far (the Fig. 8 metric).
    pub fn peak(&self) -> usize {
        self.peak.get()
    }

    /// Lifetime count of enqueued tuples (data + punctuation).
    pub fn enqueued(&self) -> u64 {
        self.enqueued.get()
    }

    /// Lifetime count of enqueued punctuation tuples.
    pub fn punctuation_enqueued(&self) -> u64 {
        self.punct_enqueued.get()
    }

    /// Lifetime count of coalesced punctuation tuples.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.get()
    }

    /// Resets the peak to the current occupancy (useful after a warm-up
    /// phase so the reported peak reflects steady state).
    pub fn reset_peak(&self) {
        self.peak.set(self.total.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let t = OccupancyTracker::default();
        t.on_enqueue(false);
        t.on_enqueue(true);
        t.on_enqueue(false);
        assert_eq!(t.total(), 3);
        assert_eq!(t.peak(), 3);
        t.on_dequeue(true);
        t.on_dequeue(false);
        assert_eq!(t.total(), 1);
        assert_eq!(t.peak(), 3, "peak must not shrink on dequeue");
        t.on_enqueue(false);
        assert_eq!(t.peak(), 3);
    }

    #[test]
    fn kind_split_accounting() {
        let t = OccupancyTracker::default();
        t.on_enqueue(false);
        t.on_enqueue(true);
        assert_eq!(t.data_total(), 1);
        assert_eq!(t.punctuation_total(), 1);
        assert_eq!(t.punctuation_enqueued(), 1);
        t.on_dequeue(false);
        assert_eq!(t.data_total(), 0);
        assert_eq!(t.punctuation_total(), 1);
    }

    #[test]
    fn reset_peak_rebases_on_current() {
        let t = OccupancyTracker::default();
        for _ in 0..5 {
            t.on_enqueue(false);
        }
        for _ in 0..4 {
            t.on_dequeue(false);
        }
        assert_eq!(t.peak(), 5);
        t.reset_peak();
        assert_eq!(t.peak(), 1);
    }

    #[test]
    fn dequeue_saturates_at_zero() {
        let t = OccupancyTracker::default();
        t.on_dequeue(false);
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn coalesce_counter() {
        let t = OccupancyTracker::default();
        t.on_coalesce();
        t.on_coalesce();
        assert_eq!(t.coalesced(), 2);
        assert_eq!(t.total(), 0, "coalescing does not change occupancy");
    }
}
