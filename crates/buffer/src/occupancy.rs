//! Shared occupancy accounting across all buffers of a query graph.
//!
//! The paper's Figure 8 measures **peak total queue size** — "the total
//! number of tuples in the buffers" at the worst instant of the run. Every
//! buffer of a graph therefore shares one [`OccupancyTracker`] that is
//! bumped on each enqueue and decremented on each dequeue; the peak is
//! maintained incrementally so no sampling is needed.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Aggregate queue-occupancy statistics shared by all buffers of one graph
/// (with parallel execution: of one connected component — each component's
/// sub-graph owns a private tracker).
///
/// The counters are relaxed atomics so a component's graph can be moved
/// onto a worker thread; within a component all updates still come from
/// one thread at a time, so relaxed ordering is exact, not approximate.
#[derive(Debug, Default)]
pub struct OccupancyTracker {
    total: AtomicUsize,
    peak: AtomicUsize,
    data_total: AtomicUsize,
    punct_total: AtomicUsize,
    enqueued: AtomicU64,
    punct_enqueued: AtomicU64,
    coalesced: AtomicU64,
}

impl OccupancyTracker {
    /// Creates a fresh tracker wrapped for sharing.
    pub fn shared() -> Arc<OccupancyTracker> {
        Arc::new(OccupancyTracker::default())
    }

    /// Records one tuple entering some buffer.
    pub fn on_enqueue(&self, punctuation: bool) {
        let t = self.total.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(t, Ordering::Relaxed);
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        if punctuation {
            self.punct_total.fetch_add(1, Ordering::Relaxed);
            self.punct_enqueued.fetch_add(1, Ordering::Relaxed);
        } else {
            self.data_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one tuple leaving some buffer.
    pub fn on_dequeue(&self, punctuation: bool) {
        saturating_dec(&self.total);
        if punctuation {
            saturating_dec(&self.punct_total);
        } else {
            saturating_dec(&self.data_total);
        }
    }

    /// Records a whole batch of enqueues in one update per counter.
    ///
    /// Equivalent to `data + punct` calls to [`OccupancyTracker::on_enqueue`]
    /// with no interleaved dequeues — which is exactly the situation inside
    /// `Buffer::push_batch`. Occupancy only grows during the batch, so the
    /// post-batch total *is* the running maximum and one `fetch_max`
    /// observes the same peak the per-tuple updates would have.
    pub fn on_enqueue_batch(&self, data: usize, punct: usize) {
        let n = data + punct;
        if n == 0 {
            return;
        }
        let t = self.total.fetch_add(n, Ordering::Relaxed) + n;
        self.peak.fetch_max(t, Ordering::Relaxed);
        self.enqueued.fetch_add(n as u64, Ordering::Relaxed);
        if punct > 0 {
            self.punct_total.fetch_add(punct, Ordering::Relaxed);
            self.punct_enqueued
                .fetch_add(punct as u64, Ordering::Relaxed);
        }
        if data > 0 {
            self.data_total.fetch_add(data, Ordering::Relaxed);
        }
    }

    /// Records a whole batch of dequeues in one update per counter.
    /// Dequeues never move the peak, so this is exactly `data + punct`
    /// calls to [`OccupancyTracker::on_dequeue`].
    pub fn on_dequeue_batch(&self, data: usize, punct: usize) {
        if data + punct == 0 {
            return;
        }
        saturating_sub(&self.total, data + punct);
        if punct > 0 {
            saturating_sub(&self.punct_total, punct);
        }
        if data > 0 {
            saturating_sub(&self.data_total, data);
        }
    }

    /// Records `n` coalesced punctuation tuples.
    pub fn on_coalesce_batch(&self, n: u64) {
        if n > 0 {
            self.coalesced.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records a punctuation tuple that was merged into the buffer tail
    /// instead of occupying a new slot.
    pub fn on_coalesce(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Current total number of queued tuples across the graph.
    pub fn total(&self) -> usize {
        self.total.load(Ordering::Relaxed)
    }

    /// Current number of queued *data* tuples.
    pub fn data_total(&self) -> usize {
        self.data_total.load(Ordering::Relaxed)
    }

    /// Current number of queued punctuation tuples.
    pub fn punctuation_total(&self) -> usize {
        self.punct_total.load(Ordering::Relaxed)
    }

    /// Highest total occupancy observed so far (the Fig. 8 metric).
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Lifetime count of enqueued tuples (data + punctuation).
    pub fn enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }

    /// Lifetime count of enqueued punctuation tuples.
    pub fn punctuation_enqueued(&self) -> u64 {
        self.punct_enqueued.load(Ordering::Relaxed)
    }

    /// Lifetime count of coalesced punctuation tuples.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current occupancy (useful after a warm-up
    /// phase so the reported peak reflects steady state).
    pub fn reset_peak(&self) {
        self.peak
            .store(self.total.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Decrements an unsigned counter without wrapping below zero.
fn saturating_dec(counter: &AtomicUsize) {
    let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
}

/// Subtracts `n` from an unsigned counter, clamping at zero.
fn saturating_sub(counter: &AtomicUsize, n: usize) {
    let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_sub(n))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let t = OccupancyTracker::default();
        t.on_enqueue(false);
        t.on_enqueue(true);
        t.on_enqueue(false);
        assert_eq!(t.total(), 3);
        assert_eq!(t.peak(), 3);
        t.on_dequeue(true);
        t.on_dequeue(false);
        assert_eq!(t.total(), 1);
        assert_eq!(t.peak(), 3, "peak must not shrink on dequeue");
        t.on_enqueue(false);
        assert_eq!(t.peak(), 3);
    }

    #[test]
    fn kind_split_accounting() {
        let t = OccupancyTracker::default();
        t.on_enqueue(false);
        t.on_enqueue(true);
        assert_eq!(t.data_total(), 1);
        assert_eq!(t.punctuation_total(), 1);
        assert_eq!(t.punctuation_enqueued(), 1);
        t.on_dequeue(false);
        assert_eq!(t.data_total(), 0);
        assert_eq!(t.punctuation_total(), 1);
    }

    #[test]
    fn reset_peak_rebases_on_current() {
        let t = OccupancyTracker::default();
        for _ in 0..5 {
            t.on_enqueue(false);
        }
        for _ in 0..4 {
            t.on_dequeue(false);
        }
        assert_eq!(t.peak(), 5);
        t.reset_peak();
        assert_eq!(t.peak(), 1);
    }

    #[test]
    fn dequeue_saturates_at_zero() {
        let t = OccupancyTracker::default();
        t.on_dequeue(false);
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn coalesce_counter() {
        let t = OccupancyTracker::default();
        t.on_coalesce();
        t.on_coalesce();
        assert_eq!(t.coalesced(), 2);
        assert_eq!(t.total(), 0, "coalescing does not change occupancy");
    }

    #[test]
    fn batched_updates_match_per_tuple_updates() {
        // The same traffic applied per-tuple and as batches must agree on
        // every counter, including the peak (occupancy is monotone within
        // an enqueue batch, so the post-batch fetch_max sees the same
        // high-water mark the per-tuple updates would).
        let per_tuple = OccupancyTracker::default();
        let batched = OccupancyTracker::default();

        for _ in 0..7 {
            per_tuple.on_enqueue(false);
        }
        for _ in 0..3 {
            per_tuple.on_enqueue(true);
        }
        batched.on_enqueue_batch(7, 3);

        for _ in 0..5 {
            per_tuple.on_dequeue(false);
        }
        per_tuple.on_dequeue(true);
        batched.on_dequeue_batch(5, 1);

        // A second, smaller wave: the peak must stay at the first wave's.
        for _ in 0..2 {
            per_tuple.on_enqueue(false);
        }
        batched.on_enqueue_batch(2, 0);

        for t in [&per_tuple, &batched] {
            assert_eq!(t.total(), 6);
            assert_eq!(t.data_total(), 4);
            assert_eq!(t.punctuation_total(), 2);
            assert_eq!(t.peak(), 10);
            assert_eq!(t.enqueued(), 12);
            assert_eq!(t.punctuation_enqueued(), 3);
        }
    }

    #[test]
    fn batch_dequeue_saturates_at_zero() {
        let t = OccupancyTracker::default();
        t.on_enqueue_batch(2, 0);
        t.on_dequeue_batch(5, 3);
        assert_eq!(t.total(), 0);
        assert_eq!(t.data_total(), 0);
        assert_eq!(t.punctuation_total(), 0);
        // Empty batches are free no-ops.
        t.on_enqueue_batch(0, 0);
        t.on_coalesce_batch(0);
        assert_eq!(t.enqueued(), 2);
        t.on_coalesce_batch(2);
        assert_eq!(t.coalesced(), 2);
    }

    #[test]
    fn tracker_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OccupancyTracker>();
    }
}
