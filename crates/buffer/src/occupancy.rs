//! Shared occupancy accounting across all buffers of a query graph.
//!
//! The paper's Figure 8 measures **peak total queue size** — "the total
//! number of tuples in the buffers" at the worst instant of the run. Every
//! buffer of a graph therefore shares one [`OccupancyTracker`] that is
//! bumped on each enqueue and decremented on each dequeue; the peak is
//! maintained incrementally so no sampling is needed.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Aggregate queue-occupancy statistics shared by all buffers of one graph
/// (with parallel execution: of one connected component — each component's
/// sub-graph owns a private tracker).
///
/// The counters are relaxed atomics so a component's graph can be moved
/// onto a worker thread; within a component all updates still come from
/// one thread at a time, so relaxed ordering is exact, not approximate.
#[derive(Debug, Default)]
pub struct OccupancyTracker {
    total: AtomicUsize,
    peak: AtomicUsize,
    data_total: AtomicUsize,
    punct_total: AtomicUsize,
    enqueued: AtomicU64,
    punct_enqueued: AtomicU64,
    coalesced: AtomicU64,
}

impl OccupancyTracker {
    /// Creates a fresh tracker wrapped for sharing.
    pub fn shared() -> Arc<OccupancyTracker> {
        Arc::new(OccupancyTracker::default())
    }

    /// Records one tuple entering some buffer.
    pub fn on_enqueue(&self, punctuation: bool) {
        let t = self.total.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(t, Ordering::Relaxed);
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        if punctuation {
            self.punct_total.fetch_add(1, Ordering::Relaxed);
            self.punct_enqueued.fetch_add(1, Ordering::Relaxed);
        } else {
            self.data_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one tuple leaving some buffer.
    pub fn on_dequeue(&self, punctuation: bool) {
        saturating_dec(&self.total);
        if punctuation {
            saturating_dec(&self.punct_total);
        } else {
            saturating_dec(&self.data_total);
        }
    }

    /// Records a punctuation tuple that was merged into the buffer tail
    /// instead of occupying a new slot.
    pub fn on_coalesce(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Current total number of queued tuples across the graph.
    pub fn total(&self) -> usize {
        self.total.load(Ordering::Relaxed)
    }

    /// Current number of queued *data* tuples.
    pub fn data_total(&self) -> usize {
        self.data_total.load(Ordering::Relaxed)
    }

    /// Current number of queued punctuation tuples.
    pub fn punctuation_total(&self) -> usize {
        self.punct_total.load(Ordering::Relaxed)
    }

    /// Highest total occupancy observed so far (the Fig. 8 metric).
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Lifetime count of enqueued tuples (data + punctuation).
    pub fn enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }

    /// Lifetime count of enqueued punctuation tuples.
    pub fn punctuation_enqueued(&self) -> u64 {
        self.punct_enqueued.load(Ordering::Relaxed)
    }

    /// Lifetime count of coalesced punctuation tuples.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current occupancy (useful after a warm-up
    /// phase so the reported peak reflects steady state).
    pub fn reset_peak(&self) {
        self.peak
            .store(self.total.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Decrements an unsigned counter without wrapping below zero.
fn saturating_dec(counter: &AtomicUsize) {
    let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let t = OccupancyTracker::default();
        t.on_enqueue(false);
        t.on_enqueue(true);
        t.on_enqueue(false);
        assert_eq!(t.total(), 3);
        assert_eq!(t.peak(), 3);
        t.on_dequeue(true);
        t.on_dequeue(false);
        assert_eq!(t.total(), 1);
        assert_eq!(t.peak(), 3, "peak must not shrink on dequeue");
        t.on_enqueue(false);
        assert_eq!(t.peak(), 3);
    }

    #[test]
    fn kind_split_accounting() {
        let t = OccupancyTracker::default();
        t.on_enqueue(false);
        t.on_enqueue(true);
        assert_eq!(t.data_total(), 1);
        assert_eq!(t.punctuation_total(), 1);
        assert_eq!(t.punctuation_enqueued(), 1);
        t.on_dequeue(false);
        assert_eq!(t.data_total(), 0);
        assert_eq!(t.punctuation_total(), 1);
    }

    #[test]
    fn reset_peak_rebases_on_current() {
        let t = OccupancyTracker::default();
        for _ in 0..5 {
            t.on_enqueue(false);
        }
        for _ in 0..4 {
            t.on_dequeue(false);
        }
        assert_eq!(t.peak(), 5);
        t.reset_peak();
        assert_eq!(t.peak(), 1);
    }

    #[test]
    fn dequeue_saturates_at_zero() {
        let t = OccupancyTracker::default();
        t.on_dequeue(false);
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn coalesce_counter() {
        let t = OccupancyTracker::default();
        t.on_coalesce();
        t.on_coalesce();
        assert_eq!(t.coalesced(), 2);
        assert_eq!(t.total(), 0, "coalescing does not change occupancy");
    }

    #[test]
    fn tracker_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OccupancyTracker>();
    }
}
