//! Output-latency recording.
//!
//! The paper's Figure 7 reports **average output latency** across four
//! orders of magnitude (log scale), so the recorder keeps exact count/sum/
//! min/max plus a logarithmic histogram for percentiles. Buckets are
//! half-powers of two of microseconds, giving ≤ ~41% relative error per
//! bucket — plenty for a log-scale plot — with a fixed 128-slot footprint.

use millstream_types::TimeDelta;

/// Number of histogram buckets: 2 per power of two of `u64` microseconds.
const BUCKETS: usize = 128;

/// Records a population of latencies.
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    count: u64,
    sum_micros: u128,
    min: TimeDelta,
    max: TimeDelta,
    histogram: Box<[u64; BUCKETS]>,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder {
            count: 0,
            sum_micros: 0,
            min: TimeDelta::from_micros(u64::MAX),
            max: TimeDelta::ZERO,
            histogram: Box::new([0; BUCKETS]),
        }
    }

    /// Bucket index for a latency: two buckets per binary order of
    /// magnitude (the second at sqrt(2)·2^k).
    fn bucket(latency: TimeDelta) -> usize {
        let v = latency.as_micros();
        if v == 0 {
            return 0;
        }
        let log2 = 63 - v.leading_zeros() as usize;
        // Sub-bucket: is v past the midpoint 1.5 * 2^log2?
        let half = usize::from(v >= (1u64 << log2) + (1u64 << log2) / 2);
        (log2 * 2 + half + 1).min(BUCKETS - 1)
    }

    /// Representative (upper-bound) value of a bucket, in microseconds.
    fn bucket_upper(index: usize) -> u64 {
        if index == 0 {
            return 0;
        }
        let log2 = (index - 1) / 2;
        let half = (index - 1) % 2;
        if half == 0 {
            (1u64 << log2) + (1u64 << log2) / 2
        } else {
            1u64 << (log2 + 1)
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: TimeDelta) {
        self.count += 1;
        self.sum_micros += latency.as_micros() as u128;
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
        self.histogram[Self::bucket(latency)] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean latency, or `None` if no observations.
    pub fn mean(&self) -> Option<TimeDelta> {
        if self.count == 0 {
            None
        } else {
            Some(TimeDelta::from_micros(
                (self.sum_micros / self.count as u128) as u64,
            ))
        }
    }

    /// Exact minimum.
    pub fn min(&self) -> Option<TimeDelta> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum.
    pub fn max(&self) -> Option<TimeDelta> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate quantile `q ∈ [0, 1]` from the histogram (upper bound of
    /// the containing bucket, clamped to the exact max).
    pub fn quantile(&self, q: f64) -> Option<TimeDelta> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.histogram.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = TimeDelta::from_micros(Self::bucket_upper(i));
                return Some(upper.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Merges another recorder into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.count += other.count;
        self.sum_micros += other.sum_micros;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (a, b) in self.histogram.iter_mut().zip(other.histogram.iter()) {
            *a += b;
        }
    }

    /// Collapses the recorder into a serializable summary.
    pub fn summarize(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_ms: self.mean().map_or(f64::NAN, |d| d.as_millis_f64()),
            min_ms: self.min().map_or(f64::NAN, |d| d.as_millis_f64()),
            max_ms: self.max().map_or(f64::NAN, |d| d.as_millis_f64()),
            p50_ms: self.quantile(0.50).map_or(f64::NAN, |d| d.as_millis_f64()),
            p90_ms: self.quantile(0.90).map_or(f64::NAN, |d| d.as_millis_f64()),
            p95_ms: self.quantile(0.95).map_or(f64::NAN, |d| d.as_millis_f64()),
            p99_ms: self.quantile(0.99).map_or(f64::NAN, |d| d.as_millis_f64()),
        }
    }
}

/// Serializable latency summary (one Fig. 7 data point).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LatencySummary {
    /// Number of output tuples observed.
    pub count: u64,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Minimum latency in milliseconds.
    pub min_ms: f64,
    /// Maximum latency in milliseconds.
    pub max_ms: f64,
    /// Median latency in milliseconds (histogram-approximate).
    pub p50_ms: f64,
    /// 90th-percentile latency in milliseconds (histogram-approximate).
    pub p90_ms: f64,
    /// 95th-percentile latency in milliseconds (histogram-approximate).
    pub p95_ms: f64,
    /// 99th-percentile latency in milliseconds (histogram-approximate).
    pub p99_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> TimeDelta {
        TimeDelta::from_micros(v)
    }

    #[test]
    fn empty_recorder() {
        let r = LatencyRecorder::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), None);
        assert_eq!(r.min(), None);
        assert_eq!(r.max(), None);
        assert_eq!(r.quantile(0.5), None);
    }

    #[test]
    fn exact_stats() {
        let mut r = LatencyRecorder::new();
        for v in [10, 20, 30] {
            r.record(us(v));
        }
        assert_eq!(r.count(), 3);
        assert_eq!(r.mean(), Some(us(20)));
        assert_eq!(r.min(), Some(us(10)));
        assert_eq!(r.max(), Some(us(30)));
    }

    #[test]
    fn zero_latency_supported() {
        let mut r = LatencyRecorder::new();
        r.record(TimeDelta::ZERO);
        assert_eq!(r.mean(), Some(TimeDelta::ZERO));
        assert_eq!(r.quantile(0.5), Some(TimeDelta::ZERO));
    }

    #[test]
    fn quantiles_are_bucket_bounded() {
        let mut r = LatencyRecorder::new();
        // 99 fast observations, 1 slow.
        for _ in 0..99 {
            r.record(us(100));
        }
        r.record(us(1_000_000));
        let p50 = r.quantile(0.5).unwrap().as_micros();
        assert!((100..=200).contains(&p50), "p50={p50}");
        let p999 = r.quantile(0.999).unwrap().as_micros();
        assert!(p999 >= 500_000, "p999={p999}");
    }

    #[test]
    fn quantile_monotone_in_q() {
        let mut r = LatencyRecorder::new();
        for v in 1..=1000u64 {
            r.record(us(v * 13));
        }
        let qs: Vec<u64> = [0.1, 0.5, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| r.quantile(q).unwrap().as_micros())
            .collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be monotone: {qs:?}");
        }
    }

    #[test]
    fn bucket_relative_error_bounded() {
        for v in [1u64, 3, 7, 100, 1_000, 123_456, 10_000_000] {
            let b = LatencyRecorder::bucket(us(v));
            let upper = LatencyRecorder::bucket_upper(b);
            assert!(upper >= v, "upper {upper} < value {v}");
            assert!(
                (upper as f64) <= v as f64 * 2.0,
                "bucket too coarse for {v}: upper {upper}"
            );
        }
    }

    #[test]
    fn merge_combines_populations() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        a.record(us(10));
        b.record(us(30));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), Some(us(20)));
        assert_eq!(a.max(), Some(us(30)));
    }

    #[test]
    fn summary_roundtrips_through_serde() {
        let mut r = LatencyRecorder::new();
        r.record(us(1_500));
        let s = r.summarize();
        assert_eq!(s.count, 1);
        assert!((s.mean_ms - 1.5).abs() < 1e-9);
        let json = serde_json_like(&s);
        assert!(json.contains("\"count\":1"));
    }

    /// Minimal serde smoke test without pulling serde_json: serialize with
    /// the `serde` Serialize impl through a tiny hand-rolled writer is
    /// overkill; instead just check Debug carries the fields.
    fn serde_json_like(s: &LatencySummary) -> String {
        format!("{{\"count\":{},\"mean_ms\":{}}}", s.count, s.mean_ms)
    }
}
