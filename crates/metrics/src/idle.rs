//! Idle-waiting time accounting.
//!
//! The paper verifies its latency results by measuring "the percentage of
//! time the union operator spends in an idle-waiting state" (§6): 99% with
//! no ETS, ~15% with 100/s periodic punctuation, <0.1% with on-demand ETS.
//! [`IdleTracker`] integrates that state over (virtual) time: an IWP
//! operator is *idle-waiting* while it holds at least one pending input
//! tuple but its (relaxed) `more` condition is false.

use millstream_types::{TimeDelta, Timestamp};

/// Integrates the time an operator spends idle-waiting.
///
/// Instants are clamped to an internal monotone high-water mark, so
/// reports arriving with a non-monotone `now` — possible when instants
/// from merged parallel component clocks or network-arrival wall clocks
/// interleave — can never make a span negative, inflate totals past the
/// observation window, or push [`IdleTracker::idle_fraction`] outside
/// `[0, 1]`. An out-of-order instant simply behaves as if it arrived "as
/// late as anything already seen".
#[derive(Debug, Clone)]
pub struct IdleTracker {
    started_at: Timestamp,
    /// Latest instant ever reported; all incoming instants clamp to this.
    high_water: Timestamp,
    idle_since: Option<Timestamp>,
    total_idle: TimeDelta,
    episodes: u64,
    longest: TimeDelta,
}

impl IdleTracker {
    /// Creates a tracker; `start` is the beginning of the observation
    /// window.
    pub fn new(start: Timestamp) -> Self {
        IdleTracker {
            started_at: start,
            high_water: start,
            idle_since: None,
            total_idle: TimeDelta::ZERO,
            episodes: 0,
            longest: TimeDelta::ZERO,
        }
    }

    /// Clamps a reported instant to the monotone timeline and advances the
    /// high-water mark.
    fn clamp(&mut self, now: Timestamp) -> Timestamp {
        self.high_water = self.high_water.max(now);
        self.high_water
    }

    /// Reports the operator's state at instant `now`: `idle` is true while
    /// the operator idle-waits. Consecutive reports of the same state are
    /// idempotent. A `now` earlier than a previously reported instant is
    /// treated as that latest instant (saturating, never panicking).
    pub fn set_idle(&mut self, now: Timestamp, idle: bool) {
        let now = self.clamp(now);
        match (self.idle_since, idle) {
            (None, true) => {
                self.idle_since = Some(now);
                self.episodes += 1;
            }
            (Some(since), false) => {
                let span = now.duration_since(since);
                self.total_idle += span;
                self.longest = self.longest.max(span);
                self.idle_since = None;
            }
            _ => {}
        }
    }

    /// Closes any open idle episode at `now` (end of run).
    pub fn finish(&mut self, now: Timestamp) {
        self.set_idle(now, false);
    }

    /// Total idle-waiting time accumulated (excluding an open episode).
    pub fn total_idle(&self) -> TimeDelta {
        self.total_idle
    }

    /// Number of idle episodes begun.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Longest single idle episode.
    pub fn longest_episode(&self) -> TimeDelta {
        self.longest
    }

    /// Fraction of the observation window `[start, now]` spent idle.
    /// Includes the currently open episode, if any. A `now` behind the
    /// latest reported instant evaluates at that instant instead, so the
    /// result is always in `[0, 1]`.
    pub fn idle_fraction(&self, now: Timestamp) -> f64 {
        // Read-only clamp: `idle_fraction` must not move the high-water
        // mark (it takes `&self`), but it evaluates on the same monotone
        // timeline as the mutating reports.
        let now = now.max(self.high_water);
        let window = now.duration_since(self.started_at).as_micros();
        if window == 0 {
            return 0.0;
        }
        let mut idle = self.total_idle.as_micros();
        if let Some(since) = self.idle_since {
            idle += now.duration_since(since).as_micros();
        }
        (idle as f64 / window as f64).min(1.0)
    }

    /// Serializable summary at instant `now`.
    pub fn summarize(&self, now: Timestamp) -> IdleSummary {
        IdleSummary {
            idle_fraction: self.idle_fraction(now),
            episodes: self.episodes,
            longest_episode_ms: self.longest.as_millis_f64(),
            total_idle_ms: self.total_idle.as_millis_f64(),
        }
    }
}

/// Serializable idle-waiting summary (the in-text §6 comparison).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IdleSummary {
    /// Fraction of the run spent idle-waiting (0..1).
    pub idle_fraction: f64,
    /// Number of idle episodes.
    pub episodes: u64,
    /// Longest single episode in milliseconds.
    pub longest_episode_ms: f64,
    /// Total idle time in milliseconds.
    pub total_idle_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: u64) -> Timestamp {
        Timestamp::from_micros(v)
    }

    #[test]
    fn integrates_episodes() {
        let mut t = IdleTracker::new(ts(0));
        t.set_idle(ts(10), true);
        t.set_idle(ts(30), false); // 20us idle
        t.set_idle(ts(50), true);
        t.set_idle(ts(100), false); // 50us idle
        assert_eq!(t.total_idle(), TimeDelta::from_micros(70));
        assert_eq!(t.episodes(), 2);
        assert_eq!(t.longest_episode(), TimeDelta::from_micros(50));
        assert!((t.idle_fraction(ts(100)) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn repeated_reports_are_idempotent() {
        let mut t = IdleTracker::new(ts(0));
        t.set_idle(ts(10), true);
        t.set_idle(ts(20), true); // no new episode
        t.set_idle(ts(30), false);
        t.set_idle(ts(40), false);
        assert_eq!(t.episodes(), 1);
        assert_eq!(t.total_idle(), TimeDelta::from_micros(20));
    }

    #[test]
    fn open_episode_counts_in_fraction() {
        let mut t = IdleTracker::new(ts(0));
        t.set_idle(ts(0), true);
        // Still idle at 100: fraction is 1.0 even though not closed.
        assert!((t.idle_fraction(ts(100)) - 1.0).abs() < 1e-12);
        t.finish(ts(100));
        assert_eq!(t.total_idle(), TimeDelta::from_micros(100));
    }

    #[test]
    fn zero_window_is_zero_fraction() {
        let t = IdleTracker::new(ts(5));
        assert_eq!(t.idle_fraction(ts(5)), 0.0);
    }

    #[test]
    fn non_monotone_instants_saturate() {
        let mut t = IdleTracker::new(ts(100));
        // Idle episode opens at 150, closes with a regressed instant: the
        // close clamps to 150 and the span saturates to zero.
        t.set_idle(ts(150), true);
        t.set_idle(ts(120), false);
        assert_eq!(t.total_idle(), TimeDelta::ZERO);
        assert_eq!(t.episodes(), 1);
        // A regressed open instant clamps forward to the high-water mark.
        t.set_idle(ts(200), false); // advance the timeline idle-free
        t.set_idle(ts(130), true); // clamps to 200
        t.set_idle(ts(260), false);
        assert_eq!(t.total_idle(), TimeDelta::from_micros(60));
        // Evaluating the fraction at a stale instant stays in [0, 1].
        let f = t.idle_fraction(ts(0));
        assert!((0.0..=1.0).contains(&f), "fraction {f}");
    }

    #[test]
    fn summary_fields() {
        let mut t = IdleTracker::new(ts(0));
        t.set_idle(ts(0), true);
        t.set_idle(ts(1_000), false);
        let s = t.summarize(ts(2_000));
        assert!((s.idle_fraction - 0.5).abs() < 1e-12);
        assert_eq!(s.episodes, 1);
        assert!((s.total_idle_ms - 1.0).abs() < 1e-12);
    }
}
