//! # millstream-metrics
//!
//! Measurement infrastructure for the millstream DSMS, matching the
//! quantities the paper reports:
//!
//! * [`LatencyRecorder`] — average/percentile output latency (Fig. 7);
//! * [`IdleTracker`] — idle-waiting time fraction (§6 in-text comparison);
//! * [`RunMetrics`] — the combined, serializable result of one experiment
//!   run (peak queue size for Fig. 8 comes from
//!   `millstream_buffer::OccupancyTracker` and is folded in here).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod idle;
mod json;
mod latency;

pub use idle::{IdleSummary, IdleTracker};
pub use json::{Json, ToJson};
pub use latency::{LatencyRecorder, LatencySummary};

/// The combined, serializable measurements of one experiment run — one data
/// point of the paper's evaluation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunMetrics {
    /// Output latency statistics (Fig. 7).
    pub latency: LatencySummary,
    /// Idle-waiting statistics of the monitored IWP operator (§6).
    pub idle: IdleSummary,
    /// Peak total queue size in tuples (Fig. 8).
    pub peak_queue_tuples: usize,
    /// Total punctuation tuples enqueued anywhere in the graph.
    pub punctuation_enqueued: u64,
    /// Data tuples delivered at sinks.
    pub delivered: u64,
    /// Virtual (or wall-clock) seconds the run covered.
    pub run_seconds: f64,
    /// Total operator-step work units executed (CPU cost proxy).
    pub work_units: u64,
}

impl RunMetrics {
    /// Delivered-tuple throughput in tuples per second of run time.
    pub fn throughput(&self) -> f64 {
        if self.run_seconds <= 0.0 {
            0.0
        } else {
            self.delivered as f64 / self.run_seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_types::{TimeDelta, Timestamp};

    fn sample() -> RunMetrics {
        let mut lat = LatencyRecorder::new();
        lat.record(TimeDelta::from_millis(2));
        let mut idle = IdleTracker::new(Timestamp::ZERO);
        idle.set_idle(Timestamp::from_secs(1), true);
        idle.finish(Timestamp::from_secs(2));
        RunMetrics {
            latency: lat.summarize(),
            idle: idle.summarize(Timestamp::from_secs(2)),
            peak_queue_tuples: 42,
            punctuation_enqueued: 7,
            delivered: 100,
            run_seconds: 2.0,
            work_units: 1_000,
        }
    }

    #[test]
    fn throughput_math() {
        let m = sample();
        assert!((m.throughput() - 50.0).abs() < 1e-12);
        let zero = RunMetrics {
            run_seconds: 0.0,
            ..sample()
        };
        assert_eq!(zero.throughput(), 0.0);
    }

    #[test]
    fn fields_plumbed() {
        let m = sample();
        assert_eq!(m.latency.count, 1);
        assert!((m.idle.idle_fraction - 0.5).abs() < 1e-12);
        assert_eq!(m.peak_queue_tuples, 42);
    }
}
