//! A minimal JSON value/emitter so experiment harnesses can persist
//! machine-readable results without extra dependencies (the workspace
//! deliberately stays on the small approved crate set; `serde` derives are
//! used for typed config, but no JSON backend is available offline).
//!
//! Only emission is supported — the harnesses write results, they never
//! read them back programmatically.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number; NaN/∞ render as `null` (JSON has no spelling).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into the JSON model.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for crate::LatencySummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::Num(self.count as f64)),
            ("mean_ms", Json::Num(self.mean_ms)),
            ("min_ms", Json::Num(self.min_ms)),
            ("max_ms", Json::Num(self.max_ms)),
            ("p50_ms", Json::Num(self.p50_ms)),
            ("p90_ms", Json::Num(self.p90_ms)),
            ("p95_ms", Json::Num(self.p95_ms)),
            ("p99_ms", Json::Num(self.p99_ms)),
        ])
    }
}

impl ToJson for crate::IdleSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("idle_fraction", Json::Num(self.idle_fraction)),
            ("episodes", Json::Num(self.episodes as f64)),
            ("longest_episode_ms", Json::Num(self.longest_episode_ms)),
            ("total_idle_ms", Json::Num(self.total_idle_ms)),
        ])
    }
}

impl ToJson for crate::RunMetrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("latency", self.latency.to_json()),
            ("idle", self.idle.to_json()),
            (
                "peak_queue_tuples",
                Json::Num(self.peak_queue_tuples as f64),
            ),
            (
                "punctuation_enqueued",
                Json::Num(self.punctuation_enqueued as f64),
            ),
            ("delivered", Json::Num(self.delivered as f64)),
            ("run_seconds", Json::Num(self.run_seconds)),
            ("work_units", Json::Num(self.work_units as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.25).render(), "3.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::str("a\"b\\c\nd\te").render(),
            "\"a\\\"b\\\\c\\nd\\te\""
        );
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
        assert_eq!(Json::str("uni→code").render(), "\"uni→code\"");
    }

    #[test]
    fn containers_render() {
        let j = Json::obj([
            ("xs", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
            ("name", Json::str("run")),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(j.render(), r#"{"xs":[1,2],"name":"run","empty":[]}"#);
    }

    #[test]
    fn pretty_rendering_nests() {
        let j = Json::obj([("a", Json::Arr(vec![Json::Num(1.0)]))]);
        let pretty = j.render_pretty();
        assert!(pretty.contains("{\n  \"a\": [\n    1\n  ]\n}"));
    }

    #[test]
    fn run_metrics_to_json() {
        use millstream_types::{TimeDelta, Timestamp};
        let mut lat = crate::LatencyRecorder::new();
        lat.record(TimeDelta::from_millis(3));
        let mut idle = crate::IdleTracker::new(Timestamp::ZERO);
        idle.finish(Timestamp::from_secs(1));
        let m = crate::RunMetrics {
            latency: lat.summarize(),
            idle: idle.summarize(Timestamp::from_secs(1)),
            peak_queue_tuples: 7,
            punctuation_enqueued: 9,
            delivered: 11,
            run_seconds: 1.0,
            work_units: 13,
        };
        let rendered = m.to_json().render();
        assert!(rendered.contains("\"peak_queue_tuples\":7"));
        assert!(rendered.contains("\"mean_ms\":3"));
        assert!(rendered.contains("\"delivered\":11"));
    }
}
