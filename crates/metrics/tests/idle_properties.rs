//! Property tests hardening [`IdleTracker`] against non-monotone instants.
//!
//! Under merged parallel component clocks — and with wall-clock instants
//! stamped at network arrival by different threads — the `now` values
//! reported to a tracker need not be monotone. Whatever sequence arrives,
//! the tracker must never panic, never let totals exceed the observation
//! window, and always report an idle fraction in `[0, 1]`.

// The vendored proptest shim expands `proptest!` recursively per token;
// two property functions in one block need headroom.
#![recursion_limit = "1024"]

use proptest::prelude::*;

use millstream_metrics::IdleTracker;
use millstream_types::{TimeDelta, Timestamp};

/// One report: an instant (possibly out of order) plus the claimed state.
fn reports() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..10_000, any::<bool>()), 0..64)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Any interleaving of out-of-order instants keeps every invariant:
    /// no panic, idle total bounded by the elapsed window, fraction in
    /// [0, 1], and episode count bounded by the number of reports.
    #[test]
    fn out_of_order_instants_never_corrupt_totals(
        start in 0u64..5_000,
        seq in reports(),
        probe in 0u64..20_000,
    ) {
        let start_ts = Timestamp::from_micros(start);
        let mut t = IdleTracker::new(start_ts);
        let mut high_water = start;
        for &(now, idle) in &seq {
            t.set_idle(Timestamp::from_micros(now), idle);
            high_water = high_water.max(now);
            // Totals can never exceed the monotone window seen so far.
            let window = high_water.saturating_sub(start);
            prop_assert!(
                t.total_idle() <= TimeDelta::from_micros(window),
                "total {:?} exceeds window {window}us",
                t.total_idle()
            );
            prop_assert!(t.longest_episode() <= TimeDelta::from_micros(window));
            // The fraction is well-defined at *any* probe instant, even a
            // stale one.
            let f = t.idle_fraction(Timestamp::from_micros(probe));
            prop_assert!((0.0..=1.0).contains(&f), "fraction {f}");
        }
        prop_assert!(t.episodes() <= seq.len() as u64);
        // Closing out at a regressed instant is safe and keeps bounds.
        t.finish(Timestamp::from_micros(0));
        let window = high_water.saturating_sub(start);
        prop_assert!(t.total_idle() <= TimeDelta::from_micros(window));
        let f = t.idle_fraction(Timestamp::from_micros(probe));
        prop_assert!((0.0..=1.0).contains(&f), "fraction {f}");
    }

    /// On a monotone report sequence the clamp is a no-op: totals match a
    /// direct integration of the idle state over time.
    #[test]
    fn monotone_sequences_integrate_exactly(
        gaps in proptest::collection::vec((1u64..100, any::<bool>()), 1..32),
    ) {
        let mut gaps = gaps;
        let mut t = IdleTracker::new(Timestamp::ZERO);
        let mut now = 0u64;
        let mut expected = 0u64;
        let mut idle_since: Option<u64> = None;
        gaps.push((1, false)); // close any open episode at the end
        for (gap, idle) in gaps {
            now += gap;
            let at = Timestamp::from_micros(now);
            t.set_idle(at, idle);
            match (idle_since, idle) {
                (None, true) => idle_since = Some(now),
                (Some(s), false) => {
                    expected += now - s;
                    idle_since = None;
                }
                _ => {}
            }
        }
        prop_assert_eq!(t.total_idle(), TimeDelta::from_micros(expected));
    }
}
