//! Loopback integration tests for the wire protocol: real sockets, the
//! `msq serve` engine host, and the `msq send` client machinery.

use std::time::Duration;

use millstream_buffer::CheckMode;
use millstream_net::{ClientConfig, Server, ServerConfig, StreamClient, Subscription};
use millstream_types::{Timestamp, Tuple, TupleBody, Value};

const UNION_PROGRAM: &str = "\
CREATE STREAM a (v INT);
CREATE STREAM b (v INT);
SELECT v FROM a UNION SELECT v FROM b;";

fn data(ts: u64) -> Tuple {
    Tuple::data(Timestamp::from_micros(ts), vec![Value::Int(ts as i64)])
}

fn client(addr: std::net::SocketAddr, stream: &str) -> StreamClient {
    StreamClient::connect(ClientConfig::new(addr.to_string(), stream)).expect("connect")
}

/// Collects data tuples until end-of-stream; punctuation marks are
/// returned separately.
fn drain(sub: &mut Subscription) -> (Vec<u64>, usize) {
    let mut ts = Vec::new();
    let mut puncts = 0;
    while let Some(t) = sub.next(Duration::from_secs(10)).expect("subscription") {
        match t.body {
            TupleBody::Punctuation => puncts += 1,
            TupleBody::Data(_) => ts.push(t.ts.as_micros()),
        }
    }
    (ts, puncts)
}

#[test]
fn producers_and_subscriber_roundtrip() {
    let mut cfg = ServerConfig::new(UNION_PROGRAM);
    cfg.check = Some(CheckMode::Strict);
    let server = Server::start(cfg).expect("server");
    let addr = server.addr();

    let mut sub = Subscription::connect(&addr.to_string()).expect("subscribe");
    assert_eq!(sub.schema().len(), 1, "negotiated output schema");

    let a = std::thread::spawn(move || {
        let mut c = client(addr, "a");
        assert_eq!(c.schema().expect("negotiated").len(), 1);
        for ts in [10u64, 30, 50, 70] {
            c.send(data(ts)).expect("send a");
        }
        c.close().expect("close a")
    });
    let b = std::thread::spawn(move || {
        let mut c = client(addr, "b");
        for ts in [20u64, 40, 60] {
            c.send(data(ts)).expect("send b");
        }
        c.close().expect("close b")
    });
    let ra = a.join().expect("thread a");
    let rb = b.join().expect("thread b");
    assert_eq!(ra.acked, ra.sent);
    assert_eq!(rb.acked, rb.sent);
    assert_eq!(ra.reconnects + rb.reconnects, 0);

    // Both sources closed: the union drains fully without the server
    // shutting down.
    let report = {
        // Wait for all 7 tuples at the subscriber, then shut down.
        let mut got = Vec::new();
        while got.len() < 7 {
            match sub.next(Duration::from_secs(10)).expect("output") {
                Some(t) if t.is_data() => got.push(t.ts.as_micros()),
                Some(_) => {}
                None => panic!("stream ended early: {got:?}"),
            }
        }
        assert_eq!(got, vec![10, 20, 30, 40, 50, 60, 70], "timestamp order");
        server.shutdown().expect("shutdown")
    };
    let (rest, puncts) = drain(&mut sub);
    assert!(rest.is_empty(), "no data after the drain: {rest:?}");
    assert_eq!(puncts, 1, "final ETS mark reaches the subscriber");

    assert_eq!(report.stats.tuples_ingested, 7);
    assert_eq!(report.stats.delivered, 7);
    assert_eq!(report.stats.duplicates_dropped, 0);
    assert_eq!(report.wire_sentinel_violations, 0);
    assert_eq!(report.latency.count, 7, "every delivery latency-attributed");
    assert!(report.ports.iter().all(|p| p.closed));
    let by_stream: Vec<(&str, u64)> = report
        .ports
        .iter()
        .map(|p| (p.stream.as_str(), p.ingested))
        .collect();
    assert_eq!(by_stream, vec![("a", 4), ("b", 3)]);
}

#[test]
fn idle_timeout_synthesizes_heartbeat_that_unblocks_the_union() {
    let mut cfg = ServerConfig::new(UNION_PROGRAM);
    cfg.idle_timeout = Some(Duration::from_millis(60));
    cfg.read_timeout = Duration::from_millis(10);
    cfg.check = Some(CheckMode::Strict);
    let server = Server::start(cfg).expect("server");
    let addr = server.addr();

    let mut sub = Subscription::connect(&addr.to_string()).expect("subscribe");
    // `b` attaches and goes silent; `a` produces. Without heartbeat
    // synthesis the union would hold every `a` tuple forever.
    let _silent = client(addr, "b");
    let mut a = client(addr, "a");
    for ts in [10u64, 20, 30] {
        a.send(data(ts)).expect("send");
    }
    // The subscriber sees all three tuples *without* `b` sending a byte
    // and without either source closing: only the synthesized heartbeat
    // can have released them.
    let mut got = Vec::new();
    for _ in 0..3 {
        let t = sub
            .next(Duration::from_secs(10))
            .expect("idle heartbeat must unblock the union")
            .expect("stream still open");
        assert!(t.is_data());
        got.push(t.ts.as_micros());
    }
    assert_eq!(got, vec![10, 20, 30]);
    let stats = server.stats();
    assert!(
        stats.synthesized_heartbeats >= 1,
        "synthesis observed: {stats:?}"
    );
    assert_eq!(stats.tuples_ingested, 3);

    drop(a);
    let report = server.shutdown().expect("shutdown");
    assert!(report
        .ports
        .iter()
        .any(|p| p.stream == "b" && p.synthesized >= 1));
    // The silent source was network-starved for most of the run.
    let b_port = report.ports.iter().find(|p| p.stream == "b").unwrap();
    assert!(
        b_port.idle.idle_fraction > 0.0,
        "silent producer marked idle: {:?}",
        b_port.idle
    );
}

#[test]
fn late_data_under_synthesized_mark_is_fatal_in_strict_mode() {
    let mut cfg = ServerConfig::new(UNION_PROGRAM);
    cfg.idle_timeout = Some(Duration::from_millis(40));
    cfg.read_timeout = Duration::from_millis(10);
    cfg.check = Some(CheckMode::Strict);
    let server = Server::start(cfg).expect("server");
    let addr = server.addr();

    let mut b = client(addr, "b");
    let mut a = client(addr, "a");
    a.send(data(1_000)).expect("send");
    // Wait until the server synthesized a heartbeat at b's expense.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.stats().synthesized_heartbeats == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "no synthesis happened"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // `b` broke the wire contract: silent past the idle timeout, then
    // data below the synthesized mark. Strict mode kills the connection
    // with an invariant error; the client does not silently retry.
    let err = b
        .send(data(5))
        .and_then(|()| b.flush())
        .expect_err("strict mode must refuse late data");
    let msg = err.to_string();
    assert!(
        msg.contains("punctuation-dominance") || msg.contains("Invariant"),
        "unexpected error: {msg}"
    );
    let report = server.shutdown().expect("shutdown");
    assert!(report.wire_sentinel_violations >= 1);
    assert_eq!(report.stats.tuples_ingested, 1, "late tuple never ingested");
}

#[test]
fn chaos_link_failure_resumes_without_loss_or_duplication() {
    const PROGRAM: &str = "CREATE STREAM s (v INT);\nSELECT v FROM s;";
    let mut cfg = ServerConfig::new(PROGRAM);
    cfg.check = Some(CheckMode::Strict);
    let server = Server::start(cfg).expect("server");
    let addr = server.addr();

    let mut sub = Subscription::connect(&addr.to_string()).expect("subscribe");
    let mut c = StreamClient::connect({
        let mut cc = ClientConfig::new(addr.to_string(), "s");
        cc.ack_window = 4;
        cc
    })
    .expect("connect");
    // Sever the link twice mid-stream; the client must reconnect, resume
    // from the acked high-water and retransmit the rest.
    c.fail_link_after(7);
    let mut failed_again = false;
    for ts in 1..=40u64 {
        c.send(data(ts * 10)).expect("send survives link chaos");
        if ts == 20 && !failed_again {
            failed_again = true;
            c.fail_link_after(3);
        }
    }
    let report = c.close().expect("close");
    assert!(report.reconnects >= 2, "two severances: {report:?}");
    assert_eq!(report.sent, 41, "40 data + close");

    let srv_report = server.shutdown().expect("shutdown");
    let (got, _) = drain(&mut sub);
    let want: Vec<u64> = (1..=40).map(|t| t * 10).collect();
    assert_eq!(got, want, "exactly-once delivery across link failures");
    assert_eq!(srv_report.stats.tuples_ingested, 40);
    assert_eq!(srv_report.wire_sentinel_violations, 0);
    assert!(
        report.retransmitted + report.resume_skipped + srv_report.stats.duplicates_dropped > 0,
        "the chaos hook exercised the retransmission path: client {report:?}, server {:?}",
        srv_report.stats
    );
}

#[test]
fn handshake_rejections_are_structured() {
    let server = Server::start(ServerConfig::new(UNION_PROGRAM)).expect("server");
    let addr = server.addr();

    // Unknown stream.
    let err = StreamClient::connect(ClientConfig::new(addr.to_string(), "nope"))
        .expect_err("unknown stream");
    assert!(err.to_string().contains("unknown stream"), "{err}");

    // Schema mismatch.
    let mut cc = ClientConfig::new(addr.to_string(), "a");
    cc.schema = Some(millstream_types::Schema::new(vec![
        millstream_types::Field::new("v", millstream_types::DataType::Str),
    ]));
    let err = StreamClient::connect(cc).expect_err("schema mismatch");
    assert!(err.to_string().contains("schema mismatch"), "{err}");

    // Adopting the server schema works.
    let c = client(addr, "a");
    let schema = c.schema().expect("negotiated");
    assert_eq!(schema.fields()[0].name, "v");
    drop(c);
    server.shutdown().expect("shutdown");
}

#[test]
fn frame_order_violation_closes_the_connection() {
    use millstream_net::{write_frame, Frame, FrameReader, Role, PROTOCOL_VERSION};
    let server = Server::start(ServerConfig::new(UNION_PROGRAM)).expect("server");
    let addr = server.addr();
    let mut raw = std::net::TcpStream::connect(addr).expect("connect");
    raw.set_read_timeout(Some(Duration::from_millis(25)))
        .unwrap();
    write_frame(
        &mut raw,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            role: Role::Producer,
            stream: "a".into(),
            schema: None,
            resume_hint: 0,
        },
    )
    .unwrap();
    let mut reader = FrameReader::new();
    let ack = reader.read_blocking(&mut raw).unwrap().expect("hello ack");
    assert!(matches!(ack, Frame::HelloAck { .. }));
    write_frame(
        &mut raw,
        &Frame::Data {
            seq: 5,
            tuple: data(10),
        },
    )
    .unwrap();
    assert!(matches!(
        reader.read_blocking(&mut raw).unwrap(),
        Some(Frame::Ack { seq: 5, .. })
    ));
    // Regressing the sequence number on the same connection is a hard
    // protocol error, reported before the connection closes.
    write_frame(
        &mut raw,
        &Frame::Data {
            seq: 5,
            tuple: data(20),
        },
    )
    .unwrap();
    match reader.read_blocking(&mut raw).unwrap() {
        Some(Frame::Error { message, .. }) => {
            assert!(message.contains("frame order"), "{message}")
        }
        other => panic!("expected a frame-order error, got {other:?}"),
    }
    server.shutdown().expect("shutdown");
}

#[test]
fn connection_counters_track_reaped_connections() {
    const PROGRAM: &str = "CREATE STREAM s (v INT);\nSELECT v FROM s;";
    let server = Server::start(ServerConfig::new(PROGRAM)).expect("server");
    let addr = server.addr();

    // Churn: producer and subscriber connections that come and go.
    for _ in 0..4 {
        drop(client(addr, "s"));
        drop(Subscription::connect(&addr.to_string()).expect("subscribe"));
    }
    // A live producer pushes output so any lingering subscriber writer
    // notices its dead socket and exits.
    let mut c = client(addr, "s");
    for i in 1..=5u64 {
        c.send(data(i * 10)).expect("send");
    }
    c.flush().expect("flush");

    // Every churned connection retires — the server reaps them while
    // running, not at shutdown — leaving only the live producer.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = server.stats();
        if stats.conns_active == 1 {
            assert!(stats.conns_total >= 9, "churn counted: {stats:?}");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "connections never reaped: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    c.close().expect("close");
    server.shutdown().expect("shutdown");
}

/// Satellite regression: wire→sink latency is recorded *outside* the
/// engine critical section. The engine-lock guard counts any recording
/// attempted while the lock is held on the same thread; the count must
/// stay zero (debug builds additionally trip an assert in the server).
#[test]
fn latency_recording_happens_outside_the_engine_lock() {
    const PROGRAM: &str = "CREATE STREAM s (v INT);\nSELECT v FROM s;";
    let mut cfg = ServerConfig::new(PROGRAM);
    cfg.check = Some(CheckMode::Strict);
    let server = Server::start(cfg).expect("server");
    let addr = server.addr();

    let mut sub = Subscription::connect(&addr.to_string()).expect("subscribe");
    let mut c = client(addr, "s");
    for i in 1..=32u64 {
        c.send(data(i * 10)).expect("send");
    }
    c.close().expect("close");
    let report = server.shutdown().expect("shutdown");
    let (got, _) = drain(&mut sub);
    assert_eq!(got.len(), 32);
    assert!(
        report.latency.count > 0,
        "deliveries latency-attributed: {:?}",
        report.latency
    );
    assert_eq!(
        report.latency_lock_violations, 0,
        "latency recorder touched under the engine lock"
    );
}

/// Frames enter the engine through batched critical sections: the pump's
/// section counter is exposed and can never exceed the frame count (one
/// frame per section is the degenerate floor, never the other way round).
#[test]
fn ingest_sections_batch_frames() {
    const PROGRAM: &str = "CREATE STREAM s (v INT);\nSELECT v FROM s;";
    let mut cfg = ServerConfig::new(PROGRAM);
    cfg.check = Some(CheckMode::Strict);
    let server = Server::start(cfg).expect("server");
    let addr = server.addr();

    let mut sub = Subscription::connect(&addr.to_string()).expect("subscribe");
    let mut c = client(addr, "s");
    for i in 1..=64u64 {
        c.send(data(i * 10)).expect("send");
    }
    c.close().expect("close");
    let report = server.shutdown().expect("shutdown");
    let (got, _) = drain(&mut sub);
    assert_eq!(got.len(), 64);
    assert_eq!(report.stats.tuples_ingested, 64);
    assert!(report.stats.ingest_sections >= 1, "{:?}", report.stats);
    assert!(
        report.stats.ingest_sections <= report.stats.frames_in,
        "sections can never outnumber frames: {:?}",
        report.stats
    );
}
