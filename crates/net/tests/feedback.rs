//! Feedback-punctuation integration tests: the subscriber overflow
//! contract (satellite: no more silent cut-off before the final mark),
//! heartbeat pruning on reconnect, jittered backoff bounds, and the
//! shed-policy pacing path end to end over real sockets.

use std::time::Duration;

use millstream_buffer::CheckMode;
use millstream_net::{
    backoff_delay, ClientConfig, OverflowPolicy, Server, ServerConfig, StreamClient, Subscription,
};
use millstream_types::{Timestamp, Tuple, TupleBody, Value};
use proptest::prelude::*;

/// A single identity query over wide string tuples, so a stalled
/// subscriber jams its socket (and then its bounded queue) quickly.
const STR_PROGRAM: &str = "\
CREATE STREAM s (v STRING);
SELECT v FROM s;";

const INT_PROGRAM: &str = "\
CREATE STREAM s (v INT);
SELECT v FROM s;";

/// ~16 KiB per tuple: a few hundred of these overrun any socket-buffer
/// slack the kernel grants a never-reading subscriber.
fn big(ts: u64) -> Tuple {
    Tuple::data(
        Timestamp::from_micros(ts),
        vec![Value::str("x".repeat(16 * 1024))],
    )
}

fn data(ts: u64) -> Tuple {
    Tuple::data(Timestamp::from_micros(ts), vec![Value::Int(ts as i64)])
}

/// Floods the server through `c` until `enough(stats)` holds (checked
/// every 32 sends) or the send budget runs out; returns how many tuples
/// were sent.
fn flood_until(
    c: &mut StreamClient,
    server: &Server,
    enough: impl Fn(&millstream_net::ServerStats) -> bool,
) -> u64 {
    let mut sent = 0u64;
    while sent < 4000 {
        sent += 1;
        c.send(big(sent * 10)).expect("send");
        if sent.is_multiple_of(32) && enough(&server.stats()) {
            break;
        }
    }
    sent
}

/// The fixed overflow-disconnect path: a subscriber that stalls past its
/// bounded queue is told how much it lost (cumulative drop notice), gets
/// the final `Timestamp::MAX` punctuation, and then a *structured*
/// Overflow error — never a bare socket close that loses the stream's
/// progress contract.
#[test]
fn overflow_disconnect_sends_notice_mark_and_error() {
    let mut cfg = ServerConfig::new(STR_PROGRAM);
    cfg.check = Some(CheckMode::Strict);
    cfg.subscriber_queue = 4;
    cfg.overflow = OverflowPolicy::Disconnect;
    let server = Server::start(cfg).expect("server");
    let addr = server.addr().to_string();

    // Subscribe but do not read: the writer jams, the queue fills.
    let mut sub = Subscription::connect(&addr).expect("subscribe");
    let mut c = StreamClient::connect(ClientConfig::new(&addr, "s")).expect("connect");
    let sent = flood_until(&mut c, &server, |s| s.subscriber_overflows >= 1);
    assert!(
        server.stats().subscriber_overflows >= 1,
        "subscriber never overflowed after {sent} wide tuples"
    );
    c.close().expect("producer close");

    // Now drain: the buffered prefix arrives intact, then the declared
    // cut-off — notice, final mark, structured error.
    let mut received: Vec<u64> = Vec::new();
    let mut final_mark = false;
    let err = loop {
        match sub.next(Duration::from_secs(10)) {
            Ok(Some(t)) => match t.body {
                TupleBody::Data(_) => {
                    assert!(!final_mark, "data after the final punctuation mark");
                    received.push(t.ts.as_micros());
                }
                TupleBody::Punctuation => {
                    assert_eq!(t.ts, Timestamp::MAX, "only the final mark is expected");
                    final_mark = true;
                }
            },
            Ok(None) => panic!("overflowed subscriber ended without the structured error"),
            Err(e) => break e,
        }
    };
    assert!(final_mark, "overflowed subscriber never got the final mark");
    let msg = err.to_string();
    assert!(msg.contains("Overflow"), "unexpected error: {msg}");
    assert!(sub.dropped() > 0, "the cut-off must declare its drop count");
    // The disconnect is a *cut*: everything before it is delivered or
    // declared dropped (zero silent loss), everything after it is
    // post-subscription. The delivered prefix must be exact and
    // contiguous — tuple i carries timestamp i*10 — and the declared
    // drops extend it to the cut point, never past what was produced.
    let prefix: Vec<u64> = (1..=received.len() as u64).map(|i| i * 10).collect();
    assert_eq!(
        received, prefix,
        "the pre-overflow prefix must arrive intact"
    );
    assert!(
        received.len() as u64 + sub.dropped() <= sent,
        "delivered + declared ({} + {}) cannot exceed production ({sent})",
        received.len(),
        sub.dropped()
    );

    let report = server.shutdown().expect("shutdown");
    assert_eq!(report.stats.subscriber_overflows, 1);
    assert_eq!(report.stats.sub_shed, 0, "Disconnect policy never sheds");
    assert_eq!(report.wire_sentinel_violations, 0);
}

/// The default shed policy: a stalled subscriber stays connected, loses
/// only its oldest data (declared, exactly accounted), the queue stays
/// bounded, and the producer is paced by feedback frames.
#[test]
fn shed_policy_declares_drops_and_paces_producer() {
    let mut cfg = ServerConfig::new(STR_PROGRAM);
    cfg.check = Some(CheckMode::Strict);
    cfg.subscriber_queue = 8;
    let server = Server::start(cfg).expect("server");
    let addr = server.addr().to_string();

    let mut sub = Subscription::connect(&addr).expect("subscribe");
    let mut c = StreamClient::connect(ClientConfig::new(&addr, "s")).expect("connect");
    let sent = flood_until(&mut c, &server, |s| s.sub_shed >= 32);
    let mid = server.stats();
    assert!(mid.sub_shed >= 1, "no shedding after {sent} wide tuples");
    assert_eq!(
        mid.subscriber_overflows, 0,
        "shed policy must not disconnect"
    );
    let preport = c.close().expect("producer close");
    assert!(
        preport.feedback_frames >= 1,
        "producer never received a pacing feedback frame"
    );

    // Drain concurrently with shutdown: the final mark and Bye only go
    // out once the server finishes the broadcast.
    let reader = std::thread::spawn(move || {
        let mut received = 0u64;
        let mut marks = 0u64;
        while let Some(t) = sub.next(Duration::from_secs(10)).expect("subscription") {
            match t.body {
                TupleBody::Data(_) => received += 1,
                TupleBody::Punctuation => {
                    assert_eq!(t.ts, Timestamp::MAX);
                    marks += 1;
                }
            }
        }
        (received, marks, sub.dropped(), sub.feedback_frames())
    });
    let report = server.shutdown().expect("shutdown");
    let (received, marks, dropped, notices) = reader.join().expect("reader thread");

    assert!(dropped > 0, "sheds must be declared to the subscriber");
    assert!(notices >= 1, "no drop-notice feedback frame arrived");
    assert!(marks >= 1, "the final punctuation must still arrive");
    assert_eq!(
        received + dropped,
        sent,
        "declared drops must reconcile exactly with what was delivered"
    );
    assert_eq!(
        report.stats.sub_shed, dropped,
        "server/client drop accounting must agree"
    );
    assert_eq!(report.stats.subscriber_overflows, 0);
    assert!(
        report.stats.feedback_frames >= 1,
        "no producer pacing was recorded"
    );
    assert!(
        report.sub_peak_queue <= 8,
        "queue exceeded its bound: {}",
        report.sub_peak_queue
    );
    assert_eq!(report.wire_sentinel_violations, 0);
}

/// A heartbeat at or below the server's resume point asserts nothing the
/// server doesn't already know: the reconnect path must prune it instead
/// of retransmitting it (the bug: only data frames were pruned).
#[test]
fn reconnect_prunes_heartbeats_below_resume_point() {
    let mut cfg = ServerConfig::new(INT_PROGRAM);
    cfg.check = Some(CheckMode::Strict);
    let server = Server::start(cfg).expect("server");
    let addr = server.addr().to_string();

    let mut ccfg = ClientConfig::new(&addr, "s");
    ccfg.backoff_seed = Some(7);
    let mut c = StreamClient::connect(ccfg).expect("connect");
    c.send(data(10)).expect("send");
    c.send(data(20)).expect("send");
    c.heartbeat(Timestamp::from_micros(30)).expect("heartbeat");
    c.send(data(40)).expect("send");
    // Everything acked: the server's resume point is now 40.
    c.flush().expect("flush");

    // Sever the link right after the next frame hits the wire: a
    // heartbeat at 35, already dominated by the acked high-water 40.
    c.fail_link_after(1);
    c.heartbeat(Timestamp::from_micros(35))
        .expect("heartbeat across reconnect");
    c.send(data(50)).expect("send after reconnect");
    let report = c.close().expect("close");

    assert_eq!(report.reconnects, 1);
    assert_eq!(
        report.resume_skipped, 1,
        "the stale heartbeat must be pruned against resume_ts"
    );
    assert_eq!(
        report.retransmitted, 0,
        "nothing at or below resume_ts may be retransmitted"
    );
    assert_eq!(report.sent, report.acked, "every frame must end accounted");

    let sreport = server.shutdown().expect("shutdown");
    assert_eq!(sreport.stats.tuples_ingested, 4);
    assert_eq!(sreport.stats.duplicates_dropped, 0);
    // The original heartbeat(35) write may or may not survive the severed
    // socket; a retransmission on the fresh connection would make it 2.
    assert!(
        sreport.stats.heartbeats_in <= 2,
        "stale heartbeat was retransmitted: {} heartbeats",
        sreport.stats.heartbeats_in
    );
    assert!(
        sreport.stats.heartbeats_in >= 1,
        "heartbeat(30) must arrive"
    );
    assert_eq!(sreport.wire_sentinel_violations, 0);
}

/// With zero jitter the schedule is the plain saturating doubling.
#[test]
fn backoff_nominal_schedule_without_jitter() {
    let base = Duration::from_millis(10);
    let max = Duration::from_secs(1);
    assert_eq!(backoff_delay(base, max, 1, 0), Duration::from_millis(10));
    assert_eq!(backoff_delay(base, max, 2, 0), Duration::from_millis(20));
    assert_eq!(backoff_delay(base, max, 5, 0), Duration::from_millis(160));
    assert_eq!(
        backoff_delay(base, max, 30, 0),
        max,
        "doubling saturates at max"
    );
}

/// Jitter pulls each delay uniformly into `[nominal/2, nominal]`.
#[test]
fn backoff_jitter_stays_within_half_nominal() {
    let base = Duration::from_millis(10);
    let max = Duration::from_secs(1);
    for jitter in [1u64, 7, 12_345, u64::MAX / 3, u64::MAX] {
        let d = backoff_delay(base, max, 3, jitter);
        assert!(
            d >= Duration::from_millis(20) && d <= Duration::from_millis(40),
            "attempt 3 with jitter {jitter}: {d:?} outside [20ms, 40ms]"
        );
    }
}

proptest! {
    /// The whole backoff schedule stays within `[base, max]` for any
    /// base/max/attempt/jitter combination — no sleep shorter than the
    /// floor, none past the ceiling, no overflow at large attempts.
    #[test]
    fn backoff_schedule_stays_bounded(
        base_ms in 1u64..100,
        extra_ms in 0u64..2000,
        attempt in 0u32..64,
        jitter in any::<u64>(),
    ) {
        let base = Duration::from_millis(base_ms);
        let max = base + Duration::from_millis(extra_ms);
        let d = backoff_delay(base, max, attempt, jitter);
        prop_assert!(d >= base, "{:?} below base {:?}", d, base);
        prop_assert!(d <= max, "{:?} above max {:?}", d, max);
    }
}
