//! Wire-decoder fuzzing: the decoder is total — any byte string either
//! decodes to a frame or returns a structured error, and it must never
//! panic or over-allocate.
//!
//! Two layers, mirroring `crates/sim/tests/fuzz_graphs.rs`:
//!
//! * deterministic exhaustive cases: every representative frame is
//!   truncated at every prefix, bit-flipped at every byte, and fed back
//!   through a one-byte-at-a-time trickle reader;
//! * the seed corpus under `fuzz-corpus/net/*.seeds` — each seed
//!   deterministically generates hostile buffers (garbage, mutations,
//!   length-header lies) replayed on every CI run.

use std::io::{self, Cursor, Read};
use std::path::PathBuf;

use millstream_net::{
    write_frame, ErrorCode, Frame, FrameReader, ReadOutcome, Role, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use millstream_types::{DataType, Field, Schema, Timestamp, Tuple, Value};
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fuzz-corpus/net")
}

/// Parses a `.seeds` file: one decimal seed per line, `#` comments and
/// blank lines ignored.
fn parse_seeds(text: &str) -> Vec<u64> {
    text.lines()
        .map(|line| line.split('#').next().unwrap_or("").trim())
        .filter(|line| !line.is_empty())
        .map(|line| {
            line.parse::<u64>()
                .unwrap_or_else(|_| panic!("bad seed line in corpus: `{line}`"))
        })
        .collect()
}

/// One frame of every kind, with every value tag represented.
fn representative_frames() -> Vec<Frame> {
    let schema = Schema::new(vec![
        Field::new("a", DataType::Int),
        Field::new("b", DataType::Float),
        Field::new("c", DataType::Bool),
        Field::new("d", DataType::Str),
    ]);
    let tuple = Tuple::data(
        Timestamp::from_micros(1_234_567),
        vec![
            Value::Int(-42),
            Value::Float(2.5),
            Value::Bool(true),
            Value::str("wire"),
            Value::Null,
        ],
    );
    vec![
        Frame::Hello {
            version: PROTOCOL_VERSION,
            role: Role::Producer,
            stream: "telemetry".into(),
            schema: Some(schema.clone()),
            resume_hint: 99,
        },
        Frame::Hello {
            version: PROTOCOL_VERSION,
            role: Role::Subscriber,
            stream: String::new(),
            schema: None,
            resume_hint: 0,
        },
        Frame::HelloAck {
            version: PROTOCOL_VERSION,
            schema,
            resume_ts: 777,
        },
        Frame::Data {
            seq: u64::MAX,
            tuple: tuple.clone(),
        },
        Frame::Heartbeat {
            seq: 2,
            ts: Timestamp::from_micros(u64::MAX >> 1),
        },
        Frame::Close { seq: 3 },
        Frame::Ack {
            seq: 4,
            high_water: 1_000_000,
        },
        Frame::Output { tuple },
        Frame::Error {
            code: ErrorCode::Overflow,
            message: "subscriber too slow".into(),
        },
        Frame::Bye,
    ]
}

/// Drains a reader, proving the decoder terminates without panicking.
/// Returns the frames it managed to decode before EOF or the first error.
fn drain_bytes(bytes: &[u8]) -> Vec<Frame> {
    let mut cursor = Cursor::new(bytes);
    let mut reader = FrameReader::new();
    let mut frames = Vec::new();
    loop {
        match reader.poll(&mut cursor) {
            Ok(ReadOutcome::Frame(f)) => frames.push(f),
            Ok(ReadOutcome::Eof) | Err(_) => return frames,
            Ok(ReadOutcome::Timeout) => unreachable!("Cursor never blocks"),
        }
    }
}

#[test]
fn every_frame_roundtrips() {
    for frame in representative_frames() {
        let bytes = frame.encode().expect("encode");
        let got = drain_bytes(&bytes);
        assert_eq!(got, vec![frame], "roundtrip through the reader");
    }
}

#[test]
fn every_truncation_is_structured() {
    for frame in representative_frames() {
        let bytes = frame.encode().expect("encode");
        for cut in 0..bytes.len() {
            // A strict prefix never yields a frame: the reader either
            // sees a clean EOF (cut at a frame boundary, i.e. 0) or
            // reports mid-frame truncation as an error — no panic, no
            // partial frame.
            let got = drain_bytes(&bytes[..cut]);
            assert!(
                got.is_empty(),
                "truncation at {cut}/{} produced {got:?}",
                bytes.len()
            );
        }
    }
}

#[test]
fn every_single_byte_flip_is_structured() {
    for frame in representative_frames() {
        let bytes = frame.encode().expect("encode");
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[i] ^= 1 << bit;
                // Must not panic; decoding to some other valid frame is
                // acceptable (e.g. a flipped integer payload).
                let _ = drain_bytes(&mutated);
            }
        }
    }
}

#[test]
fn length_header_lies_are_rejected() {
    let body_of = |frame: &Frame| frame.encode().expect("encode");

    // Oversized length: rejected before allocation.
    let mut oversized = body_of(&Frame::Bye);
    oversized[..4].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    let mut reader = FrameReader::new();
    let err = reader
        .poll(&mut Cursor::new(&oversized[..]))
        .expect_err("oversized length must be an error");
    assert!(err.to_string().contains("frame"), "{err}");

    // Zero length: a frame has at least its kind byte.
    let zero = 0u32.to_le_bytes();
    let mut reader = FrameReader::new();
    assert!(reader.poll(&mut Cursor::new(&zero[..])).is_err());

    // Length larger than the actual body: mid-frame EOF is an error,
    // not a hang or a panic.
    let mut lying = body_of(&Frame::Close { seq: 1 });
    let claimed = u32::from_le_bytes(lying[..4].try_into().unwrap());
    lying[..4].copy_from_slice(&(claimed + 8).to_le_bytes());
    let mut reader = FrameReader::new();
    let mut cursor = Cursor::new(&lying[..]);
    loop {
        match reader.poll(&mut cursor) {
            Ok(ReadOutcome::Frame(f)) => panic!("decoded {f:?} from a lying header"),
            Ok(ReadOutcome::Timeout) => continue,
            Ok(ReadOutcome::Eof) => panic!("mid-frame EOF must be an error"),
            Err(_) => break,
        }
    }

    // Hostile value/field counts inside a structurally valid header must
    // not cause huge allocations: a Data frame claiming 65535 values in
    // a 16-byte body.
    let mut hostile = Vec::new();
    hostile.extend_from_slice(&14u32.to_le_bytes());
    hostile.push(3); // kind: Data
    hostile.extend_from_slice(&1u64.to_le_bytes()); // seq
    hostile.extend_from_slice(&[0xFF; 5]); // ts prefix cut short + junk
    let mut reader = FrameReader::new();
    assert!(reader.poll(&mut Cursor::new(&hostile[..])).is_err());
}

/// Feeds one byte per read, returning `WouldBlock` between bytes: the
/// reader must preserve partial state across timeouts and reassemble the
/// identical frame sequence.
struct Trickle<'a> {
    data: &'a [u8],
    pos: usize,
    starve: bool,
}

impl Read for Trickle<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.starve {
            self.starve = false;
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "starved"));
        }
        self.starve = true;
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        buf[0] = self.data[self.pos];
        self.pos += 1;
        Ok(1)
    }
}

#[test]
fn trickled_bytes_reassemble_identically() {
    let frames = representative_frames();
    let mut bytes = Vec::new();
    for f in &frames {
        write_frame(&mut bytes, f).expect("write");
    }
    let mut trickle = Trickle {
        data: &bytes,
        pos: 0,
        starve: false,
    };
    let mut reader = FrameReader::new();
    let mut got = Vec::new();
    loop {
        match reader.poll(&mut trickle).expect("trickle poll") {
            ReadOutcome::Frame(f) => got.push(f),
            ReadOutcome::Timeout => continue,
            ReadOutcome::Eof => break,
        }
    }
    assert_eq!(got, frames, "byte-at-a-time reassembly");
}

/// Serves `segments` one readiness event at a time: reads drain the
/// current segment, then one `WouldBlock` separates it from the next —
/// exactly what a poller sees between readiness events on a nonblocking
/// socket.
struct Chunked<'a> {
    segments: std::vec::IntoIter<&'a [u8]>,
    current: &'a [u8],
}

impl Read for Chunked<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.current.is_empty() {
            match self.segments.next() {
                Some(seg) => {
                    self.current = seg;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "await readiness"));
                }
                None => return Ok(0),
            }
        }
        let n = buf.len().min(self.current.len());
        buf[..n].copy_from_slice(&self.current[..n]);
        self.current = &self.current[n..];
        Ok(n)
    }
}

/// Incremental-feed decode: splits `bytes` at the (sorted) `cuts` and
/// polls one reader across the resulting readiness events, proving
/// partial decoder state survives every boundary. Returns the decoded
/// frames up to EOF or the first error, like [`drain_bytes`].
fn drain_chunked(bytes: &[u8], cuts: &[usize]) -> Vec<Frame> {
    let mut segments = Vec::with_capacity(cuts.len() + 1);
    let mut prev = 0;
    for &cut in cuts {
        segments.push(&bytes[prev..cut]);
        prev = cut;
    }
    segments.push(&bytes[prev..]);
    let mut reader = FrameReader::new();
    let mut chunked = Chunked {
        segments: segments.into_iter(),
        current: &[],
    };
    let mut frames = Vec::new();
    loop {
        match reader.poll(&mut chunked) {
            Ok(ReadOutcome::Frame(f)) => frames.push(f),
            Ok(ReadOutcome::Timeout) => continue,
            Ok(ReadOutcome::Eof) | Err(_) => return frames,
        }
    }
}

/// Exhaustive readiness-boundary coverage: every representative frame
/// split at every byte (resume after partial header and partial body),
/// and every adjacent frame pair split at every byte (a frame straddling
/// two readiness events) must reassemble exactly.
#[test]
fn every_two_read_split_reassembles() {
    let frames = representative_frames();
    for frame in &frames {
        let bytes = frame.encode().expect("encode");
        for cut in 0..=bytes.len() {
            let got = drain_chunked(&bytes, &[cut]);
            assert_eq!(got, vec![frame.clone()], "split at {cut}/{}", bytes.len());
        }
    }
    for pair in frames.windows(2) {
        let mut bytes = Vec::new();
        for f in pair {
            write_frame(&mut bytes, f).expect("write");
        }
        for cut in 0..=bytes.len() {
            let got = drain_chunked(&bytes, &[cut]);
            assert_eq!(got, pair, "straddling split at {cut}/{}", bytes.len());
        }
    }
}

/// Byte-by-byte incremental feed — a readiness event per byte — over the
/// whole representative stream, with a `WouldBlock` between every pair of
/// bytes.
#[test]
fn byte_by_byte_feed_matches_whole_buffer() {
    let frames = representative_frames();
    let mut bytes = Vec::new();
    for f in &frames {
        write_frame(&mut bytes, f).expect("write");
    }
    let cuts: Vec<usize> = (1..bytes.len()).collect();
    assert_eq!(drain_chunked(&bytes, &cuts), frames);
    assert_eq!(drain_chunked(&bytes, &cuts), drain_bytes(&bytes));
}

/// Seed-driven hostile buffers: garbage, mutated valid frames,
/// truncations, and forged length headers. The decoder must terminate
/// with frames-or-error on every one — a panic fails the test — and the
/// incremental-feed decode at seeded readiness boundaries must agree
/// with the whole-buffer decode byte for byte.
fn hostile_round(seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let templates = representative_frames();
    for _ in 0..64 {
        let buf: Vec<u8> = match rng.gen_range(0u32..4) {
            // Pure garbage.
            0 => {
                let len = rng.gen_range(0usize..2048);
                (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect()
            }
            // A valid frame with random byte mutations.
            1 => {
                let t = &templates[rng.gen_range(0usize..templates.len())];
                let mut b = t.encode().expect("encode");
                for _ in 0..rng.gen_range(1usize..8) {
                    let i = rng.gen_range(0usize..b.len());
                    b[i] = rng.gen_range(0u32..256) as u8;
                }
                b
            }
            // A valid frame truncated at a random point.
            2 => {
                let t = &templates[rng.gen_range(0usize..templates.len())];
                let b = t.encode().expect("encode");
                let cut = rng.gen_range(0usize..b.len());
                b[..cut].to_vec()
            }
            // A valid body behind a forged length header.
            _ => {
                let t = &templates[rng.gen_range(0usize..templates.len())];
                let mut b = t.encode().expect("encode");
                let lie = rng.gen_range(0u64..=u32::MAX as u64) as u32;
                b[..4].copy_from_slice(&lie.to_le_bytes());
                b
            }
        };
        let whole = drain_bytes(&buf);
        let mut cuts: Vec<usize> = (0..rng.gen_range(1usize..8))
            .map(|_| rng.gen_range(0usize..=buf.len()))
            .collect();
        cuts.sort_unstable();
        assert_eq!(
            drain_chunked(&buf, &cuts),
            whole,
            "chunked decode diverged from whole-buffer decode (seed {seed})"
        );
    }
}

#[test]
fn decoder_survives_fixed_seed_range() {
    for seed in 0..16 {
        hostile_round(seed);
    }
}

#[test]
fn decoder_survives_regression_corpus() {
    let dir = corpus_dir();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("fuzz-corpus/net dir {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.expect("read corpus entry").path();
            (path.extension().is_some_and(|ext| ext == "seeds")).then_some(path)
        })
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no *.seeds files in {}", dir.display());
    let mut replayed = 0usize;
    for path in entries {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        for seed in parse_seeds(&text) {
            hostile_round(seed);
            replayed += 1;
        }
    }
    assert!(replayed > 0, "corpus files contained no seeds");
}
