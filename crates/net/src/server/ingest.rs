//! Nonblocking ingest front-end: accept loop, poller threads, per-shard
//! ingest queues, and the engine pump.
//!
//! ## Division of labor
//!
//! - **Pollers** ([`poller_loop`]) own the sockets. Each poller steps its
//!   connections in a loop: flush the outbox, advance the handshake, and
//!   (for producers) run the restartable [`FrameReader`] until the socket
//!   would block — partial frames survive in the reader between steps.
//!   Decoded frames are validated for per-connection seq order at the
//!   boundary, then pushed to the shard queue of the frame's port.
//! - **Shard queues** ([`ShardQueues`]) decouple socket readiness from the
//!   engine. A port's frames always land in `port_idx % shards`, so the
//!   per-port FIFO contract survives the split. Queues are bounded:
//!   pollers simply stop reading a connection whose shard is full, which
//!   turns into TCP backpressure on the producer.
//! - **The pump** ([`pump_loop`]) drains batches and enters the engine
//!   once per batch: every frame is applied (ingest / heartbeat / close —
//!   validation identical to the old per-frame path), then one
//!   `advance_clock` to the batch's max timestamp and one
//!   run-to-quiescence. Outcomes are routed back per connection: one
//!   cumulative [`Frame::Ack`] (or an attributed [`Frame::Error`]) per
//!   connection per section, pushed to the connection's outbox and
//!   flushed by its poller.
//!
//! Idle-timeout heartbeat synthesis also lives on the pump: one sweep per
//! poll tick walks each shard's ports and synthesizes marks for every
//! network-starved source in a single engine section, instead of arming a
//! timer per connection.

use std::collections::{HashMap, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{JoinHandle, Thread};
use std::time::{Duration, Instant};

use millstream_buffer::PressureLevel;
use millstream_types::{Result, Schema, TimeDelta, Timestamp};

use crate::frame::{ErrorCode, Frame, FrameReader, ReadOutcome, Role, PROTOCOL_VERSION};

use super::{pacing_window, Shared, HANDSHAKE_DEADLINE};

/// Frames a poller reads from one connection per step before yielding to
/// the next connection (fairness under flood).
const FRAMES_PER_STEP: usize = 64;

/// Bound on one shard queue; a full shard stops reads from its
/// connections (TCP backpressure) rather than queueing unbounded input.
const SHARD_CAP: usize = 8192;

/// Items the pump drains into one engine critical section.
const PUMP_BATCH: usize = 1024;

/// Poller park bounds: a poller that made progress re-polls immediately;
/// an idle one backs off exponentially between these bounds.
const PARK_MIN: Duration = Duration::from_micros(500);
const PARK_MAX: Duration = Duration::from_millis(10);

/// The cross-thread half of one connection: the pump pushes outcome
/// frames here, the owning poller flushes them to the socket.
pub(super) struct ConnShared {
    outbox: Mutex<Outbox>,
    /// Pump → poller: a terminal error frame is queued; flush, then drop
    /// the connection. Also read by the pump to skip queued items from a
    /// connection that already failed.
    dead: std::sync::atomic::AtomicBool,
    /// Frames decoded and queued to a shard but not yet resolved by the
    /// pump (acked or errored).
    inflight: AtomicU64,
    /// Last pressure level announced to this producer
    /// ([`PressureLevel::as_u8`]); pacing frames go out on change only.
    sent_level: AtomicU8,
    /// Index of the poller that owns the socket (for pump wakeups).
    poller: usize,
}

#[derive(Default)]
struct Outbox {
    buf: Vec<u8>,
    sent: usize,
}

/// What one outbox flush accomplished.
struct FlushOutcome {
    /// The outbox is fully drained.
    empty: bool,
    /// At least one byte moved to the socket.
    wrote: bool,
}

impl ConnShared {
    fn new(poller: usize) -> Arc<ConnShared> {
        Arc::new(ConnShared {
            outbox: Mutex::new(Outbox::default()),
            dead: std::sync::atomic::AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            sent_level: AtomicU8::new(PressureLevel::Normal.as_u8()),
            poller,
        })
    }

    /// Queues one frame for the poller to write. Encoding failures mark
    /// the connection dead (nothing sensible can be written after them).
    fn push_frame(&self, frame: &Frame) {
        match frame.encode() {
            Ok(bytes) => self.outbox.lock().unwrap().buf.extend_from_slice(&bytes),
            Err(_) => self.dead.store(true, Ordering::SeqCst),
        }
    }

    /// Writes as much buffered output as the socket accepts right now.
    fn flush(&self, stream: &mut TcpStream) -> std::io::Result<FlushOutcome> {
        use std::io::Write;
        let mut o = self.outbox.lock().unwrap();
        let mut wrote = false;
        while o.sent < o.buf.len() {
            let pending = &o.buf[o.sent..];
            match stream.write(pending) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket closed",
                    ))
                }
                Ok(n) => {
                    o.sent += n;
                    wrote = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let empty = o.sent == o.buf.len();
        if empty {
            o.buf.clear();
            o.sent = 0;
        }
        Ok(FlushOutcome { empty, wrote })
    }
}

/// Connection lifecycle on a poller.
enum Phase {
    Handshake { deadline: Instant },
    Producer { port_idx: usize },
}

/// One poller-owned connection.
pub(super) struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    shared: Arc<ConnShared>,
    phase: Phase,
    last_seq: Option<u64>,
    /// Terminal frames queued: retire once the outbox is flushed and the
    /// pump has resolved every queued item.
    closing: bool,
    /// Shard of this connection's port (valid once `Phase::Producer`).
    shard: usize,
}

impl Conn {
    fn new(stream: TcpStream, poller: usize) -> Conn {
        Conn {
            stream,
            reader: FrameReader::new(),
            shared: ConnShared::new(poller),
            phase: Phase::Handshake {
                deadline: Instant::now() + HANDSHAKE_DEADLINE,
            },
            last_seq: None,
            closing: false,
            shard: 0,
        }
    }
}

/// One decoded producer frame awaiting its engine section.
pub(super) struct IngestItem {
    conn: Arc<ConnShared>,
    port_idx: usize,
    frame: Frame,
    seq: u64,
    arrival: Instant,
}

/// Bounded per-shard queues between the pollers and the pump, plus the
/// monotonic enqueue/process counters shutdown uses as a drain barrier.
pub(super) struct ShardQueues {
    qs: Vec<Mutex<VecDeque<IngestItem>>>,
    queued: AtomicU64,
    processed: AtomicU64,
    gate: Mutex<()>,
    cv: Condvar,
}

impl ShardQueues {
    pub(super) fn new(shards: usize) -> ShardQueues {
        ShardQueues {
            qs: (0..shards.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            queued: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            gate: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn shard_count(&self) -> usize {
        self.qs.len()
    }

    fn has_room(&self, shard: usize) -> bool {
        self.qs[shard].lock().unwrap().len() < SHARD_CAP
    }

    fn push(&self, shard: usize, item: IngestItem) {
        self.qs[shard].lock().unwrap().push_back(item);
        self.queued.fetch_add(1, Ordering::SeqCst);
    }

    /// Wakes the pump. The gate lock pairs with [`ShardQueues::wait`]'s
    /// pending check so a push between check and sleep cannot be missed.
    pub(super) fn notify(&self) {
        let _g = self.gate.lock().unwrap();
        self.cv.notify_one();
    }

    fn wait(&self, timeout: Duration) {
        let g = self.gate.lock().unwrap();
        if self.pending() == 0 {
            let _ = self.cv.wait_timeout(g, timeout);
        }
    }

    /// Items enqueued but not yet resolved by the pump.
    pub(super) fn pending(&self) -> u64 {
        self.queued
            .load(Ordering::SeqCst)
            .saturating_sub(self.processed.load(Ordering::SeqCst))
    }

    /// Pops up to `cap` items, visiting shards round-robin from `rotate`.
    /// Each shard drains in FIFO order, and a port always maps to the
    /// same shard, so per-port order is preserved.
    ///
    /// The first sweep takes an even quota from every shard so one deep
    /// queue cannot monopolize a section — ports in the other shards
    /// would get no frames processed, pinning the whole graph's frontier
    /// (a union releases nothing until *every* input progresses). The
    /// second sweep tops up spare capacity in rotation order.
    fn drain(&self, cap: usize, rotate: usize) -> Vec<IngestItem> {
        let n = self.qs.len();
        let mut out = Vec::new();
        let quota = cap.div_ceil(n);
        for off in 0..n {
            let mut q = self.qs[(rotate + off) % n].lock().unwrap();
            let take = quota.min(cap - out.len());
            for _ in 0..take {
                match q.pop_front() {
                    Some(item) => out.push(item),
                    None => break,
                }
            }
        }
        if out.len() < cap {
            for off in 0..n {
                let mut q = self.qs[(rotate + off) % n].lock().unwrap();
                while out.len() < cap {
                    match q.pop_front() {
                        Some(item) => out.push(item),
                        None => break,
                    }
                }
                if out.len() >= cap {
                    break;
                }
            }
        }
        out
    }

    fn mark_processed(&self, n: u64) {
        self.processed.fetch_add(n, Ordering::SeqCst);
    }
}

/// The poller pool: per-poller injection queues for fresh connections and
/// thread handles for wakeups.
pub(super) struct IoPool {
    injectors: Vec<Mutex<Vec<Conn>>>,
    wakers: Mutex<Vec<Option<Thread>>>,
    next: AtomicUsize,
}

impl IoPool {
    pub(super) fn new(threads: usize) -> IoPool {
        let threads = threads.max(1);
        IoPool {
            injectors: (0..threads).map(|_| Mutex::new(Vec::new())).collect(),
            wakers: Mutex::new(vec![None; threads]),
            next: AtomicUsize::new(0),
        }
    }

    fn len(&self) -> usize {
        self.injectors.len()
    }

    pub(super) fn register_waker(&self, idx: usize, thread: Thread) {
        self.wakers.lock().unwrap()[idx] = Some(thread);
    }

    fn next_index(&self) -> usize {
        self.next.fetch_add(1, Ordering::SeqCst) % self.injectors.len()
    }

    fn assign(&self, conn: Conn) {
        let idx = conn.shared.poller;
        self.injectors[idx].lock().unwrap().push(conn);
        self.wake(idx);
    }

    fn drain(&self, idx: usize) -> Vec<Conn> {
        std::mem::take(&mut *self.injectors[idx].lock().unwrap())
    }

    fn wake(&self, idx: usize) {
        if let Some(t) = self.wakers.lock().unwrap().get(idx).and_then(Clone::clone) {
            t.unpark();
        }
    }

    pub(super) fn wake_all(&self) {
        for t in self.wakers.lock().unwrap().iter().flatten() {
            t.unpark();
        }
    }
}

/// Joinable side-thread registry (subscriber writers). Finished handles
/// are reaped opportunistically on every adopt — the old accept loop's
/// `Vec<JoinHandle>` grew without bound until shutdown.
pub(super) struct ConnRegistry {
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl ConnRegistry {
    pub(super) fn new() -> ConnRegistry {
        ConnRegistry {
            handles: Mutex::new(Vec::new()),
        }
    }

    fn reap(&self) {
        let mut handles = self.handles.lock().unwrap();
        let mut i = 0;
        while i < handles.len() {
            if handles[i].is_finished() {
                let h = handles.swap_remove(i);
                let _ = h.join();
            } else {
                i += 1;
            }
        }
    }

    fn adopt(&self, handle: JoinHandle<()>) {
        self.reap();
        self.handles.lock().unwrap().push(handle);
    }

    pub(super) fn join_all(&self) {
        let handles = std::mem::take(&mut *self.handles.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

pub(super) fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.stats.connections.fetch_add(1, Ordering::SeqCst);
        shared.stats.conns_total.fetch_add(1, Ordering::SeqCst);
        // Opportunistic reap: finished subscriber writers are collected
        // here instead of accumulating until shutdown.
        shared.registry.reap();
        if stream.set_nodelay(true).is_err() || stream.set_nonblocking(true).is_err() {
            continue;
        }
        shared.stats.conns_active.fetch_add(1, Ordering::SeqCst);
        let idx = shared.pool.next_index();
        shared.pool.assign(Conn::new(stream, idx));
    }
}

/// What one connection step decided.
enum Step {
    Keep,
    Retire,
    /// Subscriber handshake completed: hand the socket to a dedicated
    /// blocking writer thread.
    Transfer,
}

pub(super) fn poller_loop(shared: &Arc<Shared>, idx: usize) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut park = PARK_MIN;
    loop {
        conns.extend(shared.pool.drain(idx));
        if shared.terminate.load(Ordering::SeqCst) {
            for c in conns.drain(..) {
                retire_conn(shared, &c);
            }
            for c in shared.pool.drain(idx) {
                retire_conn(shared, &c);
            }
            return;
        }
        let mut progressed = false;
        let mut i = 0;
        while i < conns.len() {
            match step_conn(shared, &mut conns[i], &mut progressed) {
                Step::Keep => i += 1,
                Step::Retire => {
                    let c = conns.swap_remove(i);
                    retire_conn(shared, &c);
                    progressed = true;
                }
                Step::Transfer => {
                    let c = conns.swap_remove(i);
                    spawn_subscriber(shared, c.stream);
                    progressed = true;
                }
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) && conns.is_empty() {
            // No new connections arrive after shutdown (the accept loop
            // has exited), so an empty poller is done.
            return;
        }
        if progressed {
            park = PARK_MIN;
        } else {
            std::thread::park_timeout(park);
            park = (park * 2).min(PARK_MAX);
        }
    }
}

/// Bookkeeping when a connection leaves its poller for good.
fn retire_conn(shared: &Arc<Shared>, c: &Conn) {
    if let Phase::Producer { port_idx } = c.phase {
        let now_us = shared.now_us();
        let mut eng = shared.lock_engine();
        let port = &mut eng.ports[port_idx];
        port.producers -= 1;
        if port.producers == 0 && !port.is_idle && !port.closed {
            // No producer attached: the source is network-starved from
            // this instant (a reconnect clears it).
            port.idle.set_idle(now_us, true);
            port.is_idle = true;
        }
        drop(eng);
        shared.active_producers.fetch_sub(1, Ordering::SeqCst);
    }
    shared.stats.conns_active.fetch_sub(1, Ordering::SeqCst);
}

fn spawn_subscriber(shared: &Arc<Shared>, stream: TcpStream) {
    // Subscriber writers are blocking threads: they wait on the queue
    // condvar and write whole pre-encoded slabs.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let shared2 = Arc::clone(shared);
    let handle = std::thread::spawn(move || {
        let _ = super::serve_subscriber(&shared2, stream);
        shared2.stats.conns_active.fetch_sub(1, Ordering::SeqCst);
    });
    shared.registry.adopt(handle);
}

fn step_conn(shared: &Arc<Shared>, c: &mut Conn, progressed: &mut bool) -> Step {
    let flushed = match c.shared.flush(&mut c.stream) {
        Ok(f) => f,
        // Peer went away mid-write; nothing left to deliver.
        Err(_) => return Step::Retire,
    };
    if flushed.wrote {
        *progressed = true;
    }
    if c.shared.dead.load(Ordering::SeqCst) || c.closing {
        // Terminal: a Bye/Error is (or will be) queued. Retire once every
        // queued frame is resolved by the pump and the outbox is drained,
        // so acks for earlier frames still reach the peer first.
        let resolved = c.shared.inflight.load(Ordering::SeqCst) == 0;
        return if resolved && flushed.empty {
            Step::Retire
        } else {
            Step::Keep
        };
    }
    match c.phase {
        Phase::Handshake { deadline } => step_handshake(shared, c, deadline, progressed),
        Phase::Producer { port_idx } => step_producer(shared, c, port_idx, progressed),
    }
}

fn step_handshake(
    shared: &Arc<Shared>,
    c: &mut Conn,
    deadline: Instant,
    progressed: &mut bool,
) -> Step {
    if shared.shutdown.load(Ordering::SeqCst) || Instant::now() > deadline {
        c.shared.push_frame(&Frame::Bye);
        c.closing = true;
        *progressed = true;
        return Step::Keep;
    }
    let frame = match c.reader.poll(&mut c.stream) {
        Ok(ReadOutcome::Frame(f)) => f,
        Ok(ReadOutcome::Timeout) => return Step::Keep,
        Ok(ReadOutcome::Eof) => return Step::Retire,
        Err(e) => {
            c.shared.push_frame(&Frame::Error {
                code: ErrorCode::Protocol,
                message: e.to_string(),
            });
            c.closing = true;
            *progressed = true;
            return Step::Keep;
        }
    };
    *progressed = true;
    let Frame::Hello {
        version,
        role,
        stream: stream_name,
        schema,
        resume_hint: _,
    } = frame
    else {
        c.shared.push_frame(&Frame::Error {
            code: ErrorCode::Protocol,
            message: "expected HELLO as the first frame".into(),
        });
        c.closing = true;
        return Step::Keep;
    };
    if version != PROTOCOL_VERSION {
        c.shared.push_frame(&Frame::Error {
            code: ErrorCode::Unsupported,
            message: format!(
                "protocol version {version} unsupported; server speaks {PROTOCOL_VERSION}"
            ),
        });
        c.closing = true;
        return Step::Keep;
    }
    match role {
        Role::Subscriber => Step::Transfer,
        Role::Producer => match attach_producer(shared, &stream_name, schema.as_ref()) {
            Ok((port_idx, hello_ack)) => {
                c.shared.push_frame(&hello_ack);
                c.phase = Phase::Producer { port_idx };
                c.shard = port_idx % shared.shards.shard_count();
                shared.active_producers.fetch_add(1, Ordering::SeqCst);
                Step::Keep
            }
            Err((code, message)) => {
                c.shared.push_frame(&Frame::Error { code, message });
                c.closing = true;
                Step::Keep
            }
        },
    }
}

/// Resolves the stream, checks the schema and attaches one producer under
/// the engine lock; returns the port index and the `HelloAck` to send.
fn attach_producer(
    shared: &Arc<Shared>,
    stream_name: &str,
    claimed_schema: Option<&Schema>,
) -> std::result::Result<(usize, Frame), (ErrorCode, String)> {
    let mut eng = shared.lock_engine();
    let Some(&idx) = eng.by_name.get(stream_name) else {
        return Err((ErrorCode::Engine, format!("unknown stream `{stream_name}`")));
    };
    if let Some(claimed) = claimed_schema {
        if *claimed != eng.ports[idx].schema {
            let server_schema = eng.ports[idx].schema.clone();
            return Err((
                ErrorCode::Unsupported,
                format!(
                    "schema mismatch on `{stream_name}`: client {claimed}, server {server_schema}"
                ),
            ));
        }
    }
    let now_us = shared.now_us();
    let port = &mut eng.ports[idx];
    port.producers += 1;
    if port.last_arrival.is_none() {
        // The silence clock starts when a producer first attaches.
        port.last_arrival = Some(Instant::now());
    }
    // A (re)connecting producer is activity: the source is no longer
    // network-starved.
    port.idle.set_idle(now_us, false);
    port.is_idle = false;
    Ok((
        idx,
        Frame::HelloAck {
            version: PROTOCOL_VERSION,
            schema: port.schema.clone(),
            resume_ts: port.data_hw.unwrap_or(0),
        },
    ))
}

fn step_producer(
    shared: &Arc<Shared>,
    c: &mut Conn,
    port_idx: usize,
    progressed: &mut bool,
) -> Step {
    let draining = shared.shutdown.load(Ordering::SeqCst);
    let mut enqueued = false;
    let mut read = 0;
    let verdict = loop {
        if read >= FRAMES_PER_STEP {
            break Step::Keep;
        }
        if !draining && !shared.shards.has_room(c.shard) {
            // Shard backpressure: stop reading so the producer's TCP
            // window (not our memory) absorbs the flood.
            break Step::Keep;
        }
        match c.reader.poll(&mut c.stream) {
            Ok(ReadOutcome::Frame(frame)) => {
                *progressed = true;
                read += 1;
                let seq = match &frame {
                    Frame::Data { seq, .. }
                    | Frame::Heartbeat { seq, .. }
                    | Frame::Close { seq } => *seq,
                    Frame::Bye => {
                        c.closing = true;
                        break Step::Keep;
                    }
                    other => {
                        c.shared.push_frame(&Frame::Error {
                            code: ErrorCode::Protocol,
                            message: format!("unexpected frame {other:?} from a producer"),
                        });
                        c.closing = true;
                        break Step::Keep;
                    }
                };
                // Frame-order validation at the socket boundary: within
                // one connection the sequence must strictly increase.
                if c.last_seq.is_some_and(|ls| seq <= ls) {
                    c.shared.push_frame(&Frame::Error {
                        code: ErrorCode::Protocol,
                        message: format!(
                            "frame order violation: seq {seq} after {} on the same connection",
                            c.last_seq.unwrap_or(0)
                        ),
                    });
                    c.closing = true;
                    break Step::Keep;
                }
                c.last_seq = Some(seq);
                c.shared.inflight.fetch_add(1, Ordering::SeqCst);
                shared.shards.push(
                    c.shard,
                    IngestItem {
                        conn: Arc::clone(&c.shared),
                        port_idx,
                        frame,
                        seq,
                        arrival: Instant::now(),
                    },
                );
                enqueued = true;
            }
            Ok(ReadOutcome::Timeout) => {
                if draining && c.shared.inflight.load(Ordering::SeqCst) == 0 {
                    // Shutdown drain complete: everything this producer
                    // sent is acked and nothing is left on the socket.
                    c.shared.push_frame(&Frame::Bye);
                    c.closing = true;
                    *progressed = true;
                }
                break Step::Keep;
            }
            Ok(ReadOutcome::Eof) => break Step::Retire,
            Err(e) => {
                c.shared.push_frame(&Frame::Error {
                    code: ErrorCode::Protocol,
                    message: e.to_string(),
                });
                c.closing = true;
                break Step::Keep;
            }
        }
    };
    if enqueued {
        shared.shards.notify();
    }
    verdict
}

pub(super) fn pump_loop(shared: &Arc<Shared>) {
    let tick = shared.cfg.read_timeout;
    let mut rotate = 0usize;
    let mut last_sweep = Instant::now();
    // Wire-arrival instants of data tuples that entered the graph but
    // have not yet been matched to a sink delivery. Sink output is
    // timestamp-ordered and producers send in timestamp order, so FIFO
    // attribution pairs each delivery with (a close approximation of)
    // its own arrival — giving true per-tuple wire→sink latency even
    // when an operator holds tuples across many sections waiting for
    // the frontier.
    let mut awaiting_delivery: VecDeque<Instant> = VecDeque::new();
    loop {
        if shared.terminate.load(Ordering::SeqCst) {
            return;
        }
        if shared.shards.pending() == 0 {
            if shared.shutdown.load(Ordering::SeqCst)
                && shared.active_producers.load(Ordering::SeqCst) == 0
            {
                return;
            }
            shared.shards.wait(tick);
        }
        let batch = shared.shards.drain(PUMP_BATCH, rotate);
        rotate = rotate.wrapping_add(1);
        if !batch.is_empty() {
            process_batch(shared, batch, &mut awaiting_delivery);
        }
        if shared.cfg.idle_timeout.is_some() && last_sweep.elapsed() >= tick {
            last_sweep = Instant::now();
            let before = shared.broadcast.delivered();
            // Synthesis failures are engine-level; they surface at the
            // next producer section, not here.
            let _ = synthesize_idle_sweep(shared);
            // A synthesized heartbeat can release held tuples too.
            record_deliveries(shared, &mut awaiting_delivery, before);
        }
    }
}

/// Matches every delivery since `before` with the oldest unmatched
/// arrival instant and records one wire→sink latency sample per tuple —
/// with the engine lock released (the recorder's thread-local depth
/// check enforces that). If the graph filtered tuples out, leftover
/// arrivals simply age out unrecorded; deliveries beyond the arrival
/// ledger (none in practice) are skipped rather than misattributed.
fn record_deliveries(shared: &Arc<Shared>, awaiting: &mut VecDeque<Instant>, before: u64) {
    let after = shared.broadcast.delivered();
    let mut remaining = after.saturating_sub(before);
    while remaining > 0 {
        let Some(arrived) = awaiting.pop_front() else {
            break;
        };
        let elapsed = TimeDelta::from_micros(arrived.elapsed().as_micros() as u64);
        shared.record_latency(1, elapsed);
        remaining -= 1;
    }
}

/// Per-connection outcome of one engine section.
struct Outcome {
    conn: Arc<ConnShared>,
    port_idx: usize,
    /// Highest seq absorbed this section — acked cumulatively.
    ack_seq: Option<u64>,
    /// Port data high-water at section end (the ack's resume mark).
    high_water: u64,
    /// Terminal error attributed to this connection.
    fatal: Option<(ErrorCode, String)>,
    /// Items of this connection resolved this section.
    items: u64,
}

/// Drains one batch through the engine in a single critical section:
/// apply every item, advance the clock once to the batch max, run to
/// quiescence once, then (outside the lock) record latency and push one
/// cumulative ack — or one attributed error — per connection.
fn process_batch(
    shared: &Arc<Shared>,
    batch: Vec<IngestItem>,
    awaiting_delivery: &mut VecDeque<Instant>,
) {
    let total = batch.len() as u64;
    let delivered_before = shared.broadcast.delivered();
    let mut outcomes: Vec<Outcome> = Vec::new();
    let mut index: HashMap<usize, usize> = HashMap::new();
    let level;
    {
        let mut eng = shared.lock_engine();
        shared.stats.ingest_sections.fetch_add(1, Ordering::SeqCst);
        let now_us = shared.now_us();
        let mut batch_max = 0u64;
        let mut need_run = false;
        for item in batch {
            let IngestItem {
                conn,
                port_idx,
                frame,
                seq,
                arrival,
            } = item;
            let key = Arc::as_ptr(&conn) as usize;
            let oidx = *index.entry(key).or_insert_with(|| {
                outcomes.push(Outcome {
                    conn: Arc::clone(&conn),
                    port_idx,
                    ack_seq: None,
                    high_water: 0,
                    fatal: None,
                    items: 0,
                });
                outcomes.len() - 1
            });
            outcomes[oidx].items += 1;
            if outcomes[oidx].fatal.is_some() || conn.dead.load(Ordering::SeqCst) {
                // The connection already failed; frames after the failing
                // one are dropped, exactly like the old synchronous close.
                continue;
            }
            shared.stats.frames_in.fetch_add(1, Ordering::SeqCst);
            {
                let port = &mut eng.ports[port_idx];
                port.last_arrival = Some(arrival);
                if port.is_idle {
                    port.idle.set_idle(now_us, false);
                    port.is_idle = false;
                }
            }
            match super::apply_item(
                &mut eng,
                &shared.stats,
                port_idx,
                frame,
                &mut batch_max,
                &mut need_run,
            ) {
                Ok(entered_graph) => {
                    outcomes[oidx].ack_seq = Some(seq);
                    if entered_graph {
                        awaiting_delivery.push_back(arrival);
                    }
                }
                Err(rej) => {
                    outcomes[oidx].fatal = Some((rej.code, rej.error.to_string()));
                    conn.dead.store(true, Ordering::SeqCst);
                }
            }
        }
        if need_run {
            let res = eng.advance_clock(batch_max).and_then(|()| eng.run());
            if let Err(e) = res {
                // A failed section is attributed to every connection that
                // contributed to it; nothing in it is acked.
                for out in &mut outcomes {
                    if out.fatal.is_none() {
                        out.fatal = Some((ErrorCode::Engine, e.to_string()));
                        out.conn.dead.store(true, Ordering::SeqCst);
                    }
                    out.ack_seq = None;
                }
            }
        }
        level = if shared.cfg.feedback.is_some() {
            eng.exec.max_pressure().max(shared.broadcast.pressure())
        } else {
            PressureLevel::Normal
        };
        for out in &mut outcomes {
            out.high_water = eng.ports[out.port_idx].data_hw.unwrap_or(0);
        }
    }
    // Wire-arrival → sink-delivery latency, one sample per tuple
    // delivered by this section's run.
    record_deliveries(shared, awaiting_delivery, delivered_before);
    // Feedback before the ack: the producer learns its new window before
    // its pump refills the pipeline.
    let mut wake = vec![false; shared.pool.len()];
    for out in outcomes {
        if out.fatal.is_none() && shared.cfg.feedback.is_some() {
            let announced = level.as_u8();
            if out.conn.sent_level.swap(announced, Ordering::SeqCst) != announced {
                shared.stats.feedback_frames.fetch_add(1, Ordering::SeqCst);
                out.conn.push_frame(&Frame::Feedback {
                    level: announced,
                    window: pacing_window(level),
                    dropped: 0,
                });
            }
        }
        if let Some(seq) = out.ack_seq {
            out.conn.push_frame(&Frame::Ack {
                seq,
                high_water: out.high_water,
            });
        }
        if let Some((code, message)) = out.fatal {
            out.conn.push_frame(&Frame::Error { code, message });
        }
        out.conn.inflight.fetch_sub(out.items, Ordering::SeqCst);
        wake[out.conn.poller] = true;
    }
    shared.shards.mark_processed(total);
    for (idx, w) in wake.iter().enumerate() {
        if *w {
            shared.pool.wake(idx);
        }
    }
}

/// One idle sweep over every shard's ports: any source with an attached
/// but silent producer past the idle timeout gets a heartbeat synthesized
/// at server stream time — all starved sources share a single engine
/// section per sweep (per-shard synthesis, not per-connection timers).
fn synthesize_idle_sweep(shared: &Arc<Shared>) -> Result<()> {
    let Some(idle_timeout) = shared.cfg.idle_timeout else {
        return Ok(());
    };
    let now_us = shared.now_us();
    let shards = shared.shards.shard_count();
    let mut eng = shared.lock_engine();
    let mut batch_max = 0u64;
    let mut synthesized_any = false;
    for shard in 0..shards {
        let mut idx = shard;
        while idx < eng.ports.len() {
            let port = &eng.ports[idx];
            if port.closed || port.producers == 0 {
                idx += shards;
                continue;
            }
            let silent_for = port
                .last_arrival
                .map(|t| t.elapsed())
                .unwrap_or(Duration::ZERO);
            if silent_for < idle_timeout {
                idx += shards;
                continue;
            }
            if !eng.ports[idx].is_idle {
                eng.ports[idx].idle.set_idle(now_us, true);
                eng.ports[idx].is_idle = true;
            }
            // Synthesize at stream time, but only if that actually
            // asserts something new for this source.
            let target = eng.max_ts;
            let port = &eng.ports[idx];
            let fresh = target > 0
                && port.data_hw.is_none_or(|hw| target >= hw)
                && port.punct_hw.is_none_or(|p| target > p);
            if !fresh {
                idx += shards;
                continue;
            }
            let source = port.source;
            eng.exec
                .ingest_heartbeat(source, Timestamp::from_micros(target))?;
            eng.ports[idx].punct_hw = Some(target);
            eng.ports[idx].synthesized += 1;
            shared
                .stats
                .synthesized_heartbeats
                .fetch_add(1, Ordering::SeqCst);
            batch_max = batch_max.max(target);
            synthesized_any = true;
            idx += shards;
        }
    }
    if synthesized_any {
        eng.advance_clock(batch_max)?;
        eng.run()?;
    }
    Ok(())
}
