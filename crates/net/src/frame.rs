//! The millstream wire format: length-prefixed binary frames.
//!
//! Every frame on the wire is `u32 length (LE) | u8 kind | body`, where
//! `length` counts the kind byte plus the body. The decoder is total: any
//! byte string either decodes to a [`Frame`] or returns a structured
//! [`Error`] — truncated, oversized and garbage inputs must never panic
//! (enforced by `tests/frame_fuzz.rs` over the checked-in seed corpus).
//!
//! ## Frame kinds
//!
//! | kind | frame        | direction           | body                                    |
//! |------|--------------|---------------------|-----------------------------------------|
//! | 1    | `Hello`      | client → server     | version, role, stream, schema?, resume  |
//! | 2    | `HelloAck`   | server → client     | version, schema, resume_ts              |
//! | 3    | `Data`       | producer → server   | seq, tuple                              |
//! | 4    | `Heartbeat`  | producer → server   | seq, ts                                 |
//! | 5    | `Close`      | producer → server   | seq                                     |
//! | 6    | `Ack`        | server → producer   | seq (cumulative), source high-water ts  |
//! | 7    | `Output`     | server → subscriber | tuple                                   |
//! | 8    | `Error`      | server → client     | code, message                           |
//! | 9    | `Bye`        | either              | —                                       |
//! | 10   | `Feedback`   | server → client     | pressure level, window, dropped count   |
//!
//! Timestamps travel as microseconds (`u64` LE), matching
//! [`Timestamp::as_micros`]. A tuple is `u64 ts | u8 flags` with bit 0 set
//! for punctuation; data tuples append `u16 n | n values`, each value a
//! one-byte tag (0 null, 1 int, 2 float, 3 bool, 4 string) and its
//! payload.

use std::io::{self, Read, Write};

use millstream_types::{DataType, Error, Field, Result, Schema, Timestamp, Tuple, Value};

/// The only protocol version this build speaks. [`Frame::Hello`] carries
/// the client's version; a server seeing any other value must answer with
/// an [`ErrorCode::Unsupported`] error frame and close.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard ceiling on `length`: one frame never exceeds 1 MiB. A larger
/// prefix is rejected before any allocation, so a hostile peer cannot
/// balloon server memory with a forged header.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// What a connecting client wants from the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Pushes tuples/heartbeats into one named source stream.
    Producer,
    /// Receives the query's sink output as [`Frame::Output`] frames.
    Subscriber,
}

/// Machine-readable reason on an [`Frame::Error`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed or out-of-contract frame (bad seq, wrong role, ...).
    Protocol,
    /// Version or schema negotiation failed.
    Unsupported,
    /// The engine rejected the operation (closed source, planning, ...).
    Engine,
    /// A strict-mode sentinel invariant tripped at the socket boundary.
    Invariant,
    /// The subscriber fell behind its bounded buffer and was dropped.
    Overflow,
}

impl ErrorCode {
    fn to_u16(self) -> u16 {
        match self {
            ErrorCode::Protocol => 1,
            ErrorCode::Unsupported => 2,
            ErrorCode::Engine => 3,
            ErrorCode::Invariant => 4,
            ErrorCode::Overflow => 5,
        }
    }

    fn from_u16(v: u16) -> Result<Self> {
        Ok(match v {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::Unsupported,
            3 => ErrorCode::Engine,
            4 => ErrorCode::Invariant,
            5 => ErrorCode::Overflow,
            other => return Err(wire(format!("unknown error code {other}"))),
        })
    }
}

/// One decoded wire frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Connection opener: negotiate version, role and schema.
    Hello {
        /// Client protocol version ([`PROTOCOL_VERSION`]).
        version: u8,
        /// Producer or subscriber.
        role: Role,
        /// Stream name (producers) — ignored for subscribers.
        stream: String,
        /// Producer's claimed schema; `None` adopts the server's schema
        /// (returned in [`Frame::HelloAck`]).
        schema: Option<Schema>,
        /// Highest timestamp the client believes was durably acked, for
        /// reconnect bookkeeping (0 on a fresh session).
        resume_hint: u64,
    },
    /// Server's accept: the authoritative schema and resume point.
    HelloAck {
        /// Server protocol version.
        version: u8,
        /// Authoritative schema of the stream (producer) or of the query
        /// output (subscriber).
        schema: Schema,
        /// The source's data high-water mark in micros; retransmitted
        /// tuples at or below it are duplicates the server will drop.
        resume_ts: u64,
    },
    /// One data tuple, sequence-numbered within the connection.
    Data {
        /// Strictly increasing per connection.
        seq: u64,
        /// The payload tuple (must be data, not punctuation).
        tuple: Tuple,
    },
    /// An explicit source heartbeat (wire form of `ingest_heartbeat`).
    Heartbeat {
        /// Strictly increasing per connection, shared with `Data`.
        seq: u64,
        /// Heartbeat timestamp.
        ts: Timestamp,
    },
    /// End-of-stream for the producer's source.
    Close {
        /// Strictly increasing per connection, shared with `Data`.
        seq: u64,
    },
    /// Cumulative acknowledgement: all frames with `seq' <= seq` are
    /// processed; `high_water` is the source's data high-water in micros.
    Ack {
        /// Highest contiguously processed sequence number.
        seq: u64,
        /// Source data high-water mark (micros) after processing.
        high_water: u64,
    },
    /// One sink-output tuple streamed to a subscriber.
    Output {
        /// The delivered tuple (punctuation marks travel too, so a
        /// subscriber can observe final-ETS propagation).
        tuple: Tuple,
    },
    /// Terminal error; the sender closes the connection after it.
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Graceful end of the connection.
    Bye,
    /// Feedback punctuation flowing *against* the data direction: the
    /// server tells a producer how hard to throttle, or a subscriber how
    /// many queued outputs were shed on its behalf. Never terminal — the
    /// connection continues after it.
    Feedback {
        /// Engine/queue pressure level (`PressureLevel::as_u8` encoding:
        /// 0 normal, 1 high, 2 critical; unknown values saturate to
        /// critical on the receiving side).
        level: u8,
        /// Requested producer send window (max unacked frames); `0` means
        /// "no limit requested" — the producer restores its own window.
        window: u64,
        /// Cumulative count of this subscriber's outputs shed server-side
        /// (always `0` on the producer path).
        dropped: u64,
    },
}

fn wire(msg: impl Into<String>) -> Error {
    Error::runtime(format!("wire: {}", msg.into()))
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) -> Result<()> {
    let bytes = s.as_bytes();
    if bytes.len() > u16::MAX as usize {
        return Err(wire(format!(
            "string of {} bytes exceeds u16 length",
            bytes.len()
        )));
    }
    put_u16(buf, bytes.len() as u16);
    buf.extend_from_slice(bytes);
    Ok(())
}

fn put_schema(buf: &mut Vec<u8>, schema: &Schema) -> Result<()> {
    if schema.len() >= u16::MAX as usize {
        return Err(wire("schema too wide"));
    }
    put_u16(buf, schema.len() as u16);
    for f in schema.fields() {
        put_str(buf, &f.name)?;
        buf.push(match f.data_type {
            DataType::Int => 1,
            DataType::Float => 2,
            DataType::Bool => 3,
            DataType::Str => 4,
        });
    }
    Ok(())
}

fn put_value(buf: &mut Vec<u8>, v: &Value) -> Result<()> {
    match v {
        Value::Null => buf.push(0),
        Value::Int(i) => {
            buf.push(1);
            put_u64(buf, *i as u64);
        }
        Value::Float(f) => {
            buf.push(2);
            put_u64(buf, f.to_bits());
        }
        Value::Bool(b) => {
            buf.push(3);
            buf.push(u8::from(*b));
        }
        Value::Str(s) => {
            buf.push(4);
            put_str(buf, s)?;
        }
    }
    Ok(())
}

fn put_tuple(buf: &mut Vec<u8>, t: &Tuple) -> Result<()> {
    put_u64(buf, t.ts.as_micros());
    match t.values() {
        None => buf.push(1), // punctuation flag
        Some(vals) => {
            buf.push(0);
            if vals.len() >= u16::MAX as usize {
                return Err(wire("row too wide"));
            }
            put_u16(buf, vals.len() as u16);
            for v in vals {
                put_value(buf, v)?;
            }
        }
    }
    Ok(())
}

impl Frame {
    /// Encodes the frame with its `u32` length prefix, ready to write.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; 4]; // length backfilled below
        match self {
            Frame::Hello {
                version,
                role,
                stream,
                schema,
                resume_hint,
            } => {
                buf.push(1);
                buf.push(*version);
                buf.push(match role {
                    Role::Producer => 0,
                    Role::Subscriber => 1,
                });
                put_str(&mut buf, stream)?;
                match schema {
                    None => buf.push(0),
                    Some(s) => {
                        buf.push(1);
                        put_schema(&mut buf, s)?;
                    }
                }
                put_u64(&mut buf, *resume_hint);
            }
            Frame::HelloAck {
                version,
                schema,
                resume_ts,
            } => {
                buf.push(2);
                buf.push(*version);
                put_schema(&mut buf, schema)?;
                put_u64(&mut buf, *resume_ts);
            }
            Frame::Data { seq, tuple } => {
                buf.push(3);
                put_u64(&mut buf, *seq);
                put_tuple(&mut buf, tuple)?;
            }
            Frame::Heartbeat { seq, ts } => {
                buf.push(4);
                put_u64(&mut buf, *seq);
                put_u64(&mut buf, ts.as_micros());
            }
            Frame::Close { seq } => {
                buf.push(5);
                put_u64(&mut buf, *seq);
            }
            Frame::Ack { seq, high_water } => {
                buf.push(6);
                put_u64(&mut buf, *seq);
                put_u64(&mut buf, *high_water);
            }
            Frame::Output { tuple } => {
                buf.push(7);
                put_tuple(&mut buf, tuple)?;
            }
            Frame::Error { code, message } => {
                buf.push(8);
                put_u16(&mut buf, code.to_u16());
                put_str(&mut buf, message)?;
            }
            Frame::Bye => buf.push(9),
            Frame::Feedback {
                level,
                window,
                dropped,
            } => {
                buf.push(10);
                buf.push(*level);
                put_u64(&mut buf, *window);
                put_u64(&mut buf, *dropped);
            }
        }
        let len = (buf.len() - 4) as u32;
        if len > MAX_FRAME_LEN {
            return Err(wire(format!("frame of {len} bytes exceeds MAX_FRAME_LEN")));
        }
        buf[0..4].copy_from_slice(&len.to_le_bytes());
        Ok(buf)
    }

    /// Decodes one frame body (`kind | body`, the length prefix already
    /// stripped). Total: every input returns `Ok` or a structured error.
    pub fn decode(body: &[u8]) -> Result<Frame> {
        let mut c = Cursor { buf: body, pos: 0 };
        let kind = c.u8()?;
        let frame = match kind {
            1 => {
                let version = c.u8()?;
                let role = match c.u8()? {
                    0 => Role::Producer,
                    1 => Role::Subscriber,
                    other => return Err(wire(format!("unknown role {other}"))),
                };
                let stream = c.string()?;
                let schema = match c.u8()? {
                    0 => None,
                    1 => Some(c.schema()?),
                    other => return Err(wire(format!("bad schema marker {other}"))),
                };
                Frame::Hello {
                    version,
                    role,
                    stream,
                    schema,
                    resume_hint: c.u64()?,
                }
            }
            2 => Frame::HelloAck {
                version: c.u8()?,
                schema: c.schema()?,
                resume_ts: c.u64()?,
            },
            3 => Frame::Data {
                seq: c.u64()?,
                tuple: c.tuple()?,
            },
            4 => Frame::Heartbeat {
                seq: c.u64()?,
                ts: Timestamp::from_micros(c.u64()?),
            },
            5 => Frame::Close { seq: c.u64()? },
            6 => Frame::Ack {
                seq: c.u64()?,
                high_water: c.u64()?,
            },
            7 => Frame::Output { tuple: c.tuple()? },
            8 => Frame::Error {
                code: ErrorCode::from_u16(c.u16()?)?,
                message: c.string()?,
            },
            9 => Frame::Bye,
            10 => Frame::Feedback {
                level: c.u8()?,
                window: c.u64()?,
                dropped: c.u64()?,
            },
            other => return Err(wire(format!("unknown frame kind {other}"))),
        };
        if c.pos != body.len() {
            return Err(wire(format!(
                "{} trailing bytes after frame kind {kind}",
                body.len() - c.pos
            )));
        }
        Ok(frame)
    }
}

/// Bounds-checked reader over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| wire("truncated frame"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| wire("string is not UTF-8"))
    }

    fn schema(&mut self) -> Result<Schema> {
        let n = self.u16()? as usize;
        // A field needs >= 3 bytes on the wire; reject absurd counts
        // before allocating.
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(wire("schema field count exceeds frame"));
        }
        let mut fields = Vec::with_capacity(n);
        for _ in 0..n {
            let name = self.string()?;
            let ty = match self.u8()? {
                1 => DataType::Int,
                2 => DataType::Float,
                3 => DataType::Bool,
                4 => DataType::Str,
                other => return Err(wire(format!("unknown data type tag {other}"))),
            };
            fields.push(Field::new(name, ty));
        }
        Ok(Schema::new(fields))
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.u64()? as i64),
            2 => Value::Float(f64::from_bits(self.u64()?)),
            3 => match self.u8()? {
                0 => Value::Bool(false),
                1 => Value::Bool(true),
                other => return Err(wire(format!("bad bool byte {other}"))),
            },
            4 => Value::str_uninterned(self.string()?),
            other => return Err(wire(format!("unknown value tag {other}"))),
        })
    }

    fn tuple(&mut self) -> Result<Tuple> {
        let ts = Timestamp::from_micros(self.u64()?);
        match self.u8()? {
            1 => Ok(Tuple::punctuation(ts)),
            0 => {
                let n = self.u16()? as usize;
                if n > self.buf.len().saturating_sub(self.pos) {
                    return Err(wire("row width exceeds frame"));
                }
                let mut vals = Vec::with_capacity(n);
                for _ in 0..n {
                    vals.push(self.value()?);
                }
                Ok(Tuple::data(ts, vals))
            }
            other => Err(wire(format!("bad tuple flags {other}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Stream I/O
// ---------------------------------------------------------------------------

/// Writes one frame, flushing so it hits the wire immediately (the
/// protocol is latency-sensitive: an unflushed heartbeat is a silent
/// connection).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<()> {
    let bytes = frame.encode()?;
    w.write_all(&bytes)
        .and_then(|()| w.flush())
        .map_err(|e| wire(format!("write failed: {e}")))
}

/// What one [`FrameReader::poll`] produced.
#[derive(Debug, PartialEq)]
pub enum ReadOutcome {
    /// A complete frame arrived.
    Frame(Frame),
    /// The peer closed the stream cleanly (EOF on a frame boundary).
    Eof,
    /// The read timed out; any partial frame is retained for the next
    /// poll, so timeouts never corrupt framing.
    Timeout,
}

/// Incremental frame reader that survives read timeouts mid-frame.
///
/// The server reads with a socket timeout so it can notice shutdown and
/// idle producers; a timeout can strike between the length prefix and the
/// body. `FrameReader` buffers partial frames across polls: [`poll`]
/// returns [`ReadOutcome::Timeout`] and the next call resumes where the
/// bytes stopped.
///
/// [`poll`]: FrameReader::poll
#[derive(Debug)]
pub struct FrameReader {
    /// Bytes of the current frame read so far (header included).
    pending: Vec<u8>,
    /// Total bytes wanted before the frame can complete: 4 until the
    /// header is in, then `4 + length`.
    need: usize,
}

impl Default for FrameReader {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameReader {
    /// A reader with no partial frame.
    pub fn new() -> Self {
        FrameReader {
            pending: Vec::new(),
            need: 4,
        }
    }

    /// Drives the reader one step against `r`.
    pub fn poll<R: Read>(&mut self, r: &mut R) -> Result<ReadOutcome> {
        loop {
            while self.pending.len() < self.need {
                let mut chunk = [0u8; 4096];
                let want = (self.need - self.pending.len()).min(chunk.len());
                match r.read(&mut chunk[..want]) {
                    Ok(0) => {
                        return if self.pending.is_empty() {
                            Ok(ReadOutcome::Eof)
                        } else {
                            Err(wire(format!(
                                "connection closed mid-frame ({} of {} bytes)",
                                self.pending.len(),
                                self.need
                            )))
                        };
                    }
                    Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        return Ok(ReadOutcome::Timeout);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(wire(format!("read failed: {e}"))),
                }
            }
            if self.need == 4 {
                let len =
                    u32::from_le_bytes(self.pending[0..4].try_into().expect("4 bytes buffered"));
                if len == 0 {
                    return Err(wire("zero-length frame"));
                }
                if len > MAX_FRAME_LEN {
                    return Err(wire(format!(
                        "frame length {len} exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})"
                    )));
                }
                self.need = 4 + len as usize;
                continue; // loop back to read the body
            }
            let frame = Frame::decode(&self.pending[4..])?;
            self.pending.clear();
            self.need = 4;
            return Ok(ReadOutcome::Frame(frame));
        }
    }

    /// Blocking convenience: polls until a frame or EOF (treats timeouts
    /// as retries). Used by the client, which sets generous socket
    /// deadlines of its own.
    pub fn read_blocking<R: Read>(&mut self, r: &mut R) -> Result<Option<Frame>> {
        loop {
            match self.poll(r)? {
                ReadOutcome::Frame(f) => return Ok(Some(f)),
                ReadOutcome::Eof => return Ok(None),
                ReadOutcome::Timeout => continue,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = f.encode().expect("encode");
        let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        assert_eq!(len + 4, bytes.len(), "length prefix covers kind+body");
        assert_eq!(Frame::decode(&bytes[4..]).expect("decode"), f);
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("v", DataType::Int),
            Field::new("label", DataType::Str),
        ])
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip(Frame::Hello {
            version: PROTOCOL_VERSION,
            role: Role::Producer,
            stream: "S1".into(),
            schema: Some(schema()),
            resume_hint: 42,
        });
        roundtrip(Frame::Hello {
            version: PROTOCOL_VERSION,
            role: Role::Subscriber,
            stream: String::new(),
            schema: None,
            resume_hint: 0,
        });
        roundtrip(Frame::HelloAck {
            version: PROTOCOL_VERSION,
            schema: schema(),
            resume_ts: 7,
        });
        roundtrip(Frame::Data {
            seq: 9,
            tuple: Tuple::data(
                Timestamp::from_micros(123),
                vec![
                    Value::Int(-5),
                    Value::Float(2.5),
                    Value::Bool(true),
                    Value::Null,
                    Value::str("hé"),
                ],
            ),
        });
        roundtrip(Frame::Heartbeat {
            seq: 10,
            ts: Timestamp::from_micros(456),
        });
        roundtrip(Frame::Close { seq: 11 });
        roundtrip(Frame::Ack {
            seq: 11,
            high_water: 123,
        });
        roundtrip(Frame::Output {
            tuple: Tuple::punctuation(Timestamp::MAX),
        });
        roundtrip(Frame::Error {
            code: ErrorCode::Overflow,
            message: "slow subscriber".into(),
        });
        roundtrip(Frame::Bye);
        roundtrip(Frame::Feedback {
            level: 2,
            window: 1,
            dropped: 37,
        });
    }

    #[test]
    fn truncated_bodies_error() {
        let full = Frame::Data {
            seq: 1,
            tuple: Tuple::data(Timestamp::from_micros(5), vec![Value::Int(1)]),
        }
        .encode()
        .unwrap();
        for cut in 1..full.len() - 4 {
            let body = &full[4..4 + cut];
            assert!(Frame::decode(body).is_err(), "cut at {cut} must error");
        }
    }

    #[test]
    fn trailing_garbage_errors() {
        let mut bytes = Frame::Bye.encode().unwrap();
        bytes.push(0xAB);
        assert!(Frame::decode(&bytes[4..]).is_err());
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // kind=3 Data, seq, ts, flags=0, claimed row width u16::MAX - 1
        // with no payload behind it.
        let mut body = vec![3u8];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&2u64.to_le_bytes());
        body.push(0);
        body.extend_from_slice(&(u16::MAX - 1).to_le_bytes());
        assert!(Frame::decode(&body).is_err());
    }

    #[test]
    fn reader_reassembles_split_frames() {
        let f = Frame::Heartbeat {
            seq: 3,
            ts: Timestamp::from_micros(99),
        };
        let bytes = f.encode().unwrap();
        // Feed the bytes one at a time through a reader that times out
        // between each byte.
        struct Drip<'a> {
            bytes: &'a [u8],
            pos: usize,
            give: bool,
        }
        impl Read for Drip<'_> {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if self.pos >= self.bytes.len() {
                    return Ok(0);
                }
                if !self.give {
                    self.give = true;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "later"));
                }
                self.give = false;
                out[0] = self.bytes[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut drip = Drip {
            bytes: &bytes,
            pos: 0,
            give: false,
        };
        let mut reader = FrameReader::new();
        let mut timeouts = 0;
        loop {
            match reader.poll(&mut drip).expect("no error") {
                ReadOutcome::Frame(got) => {
                    assert_eq!(got, f);
                    break;
                }
                ReadOutcome::Timeout => timeouts += 1,
                ReadOutcome::Eof => panic!("ended before frame completed"),
            }
        }
        assert_eq!(timeouts, bytes.len(), "one stall per byte");
        assert_eq!(reader.poll(&mut drip).unwrap(), ReadOutcome::Eof);
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut reader = FrameReader::new();
        let mut bytes: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF, 9];
        assert!(reader.poll(&mut bytes).is_err());
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let full = Frame::Close { seq: 1 }.encode().unwrap();
        let mut reader = FrameReader::new();
        let mut short: &[u8] = &full[..full.len() - 2];
        assert!(reader.poll(&mut short).is_err());
    }
}
