//! The `msq send` side: a producer client with windowed acks, retry with
//! exponential backoff, and resume-from-last-acked-timestamp — plus a
//! small blocking [`Subscription`] for `msq tail`-style consumers.
//!
//! ## Delivery contract
//!
//! [`StreamClient`] assigns every outgoing frame a sequence number and
//! keeps it in an unacked window until the server's cumulative
//! [`Frame::Ack`] covers it. When the window is full, `send` stalls until
//! acks make progress — the client never buffers unboundedly. On any I/O
//! failure the client reconnects with exponential backoff, re-handshakes,
//! prunes frames at or below the server's `resume_ts` (they were durably
//! ingested; the ack was lost), and retransmits the rest. Retransmitted
//! tuples that raced the crash are deduplicated server-side, which is
//! sound because producer data timestamps are **strictly increasing** —
//! that is this protocol's resume contract.

use std::collections::VecDeque;
use std::hash::{BuildHasher, Hasher};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

use millstream_types::{Error, Result, Schema, Timestamp, Tuple};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::frame::{write_frame, Frame, FrameReader, ReadOutcome, Role, PROTOCOL_VERSION};

/// One reconnect delay of the jittered exponential-backoff schedule.
///
/// The nominal schedule doubles from `base` per attempt and saturates at
/// `max`; `jitter` (any `u64`, typically random) then pulls the delay
/// uniformly down into `[nominal/2, nominal]`, de-synchronizing clients
/// that lost the same server at the same instant (a thundering herd of
/// lock-step retries is exactly what a recovering server does not need).
/// The result is always clamped to `[base, max]`, whatever the inputs —
/// property-tested in `tests/feedback.rs`.
pub fn backoff_delay(base: Duration, max: Duration, attempt: u32, jitter: u64) -> Duration {
    let base = base.min(max);
    let mut nominal = base;
    // Saturating doubling: `attempt` is 1-based for the first retry.
    for _ in 1..attempt.max(1) {
        nominal = nominal.checked_mul(2).unwrap_or(max).min(max);
        if nominal == max {
            break;
        }
    }
    let spread = nominal / 2;
    let pulled = nominal.saturating_sub(Duration::from_nanos(
        jitter % (spread.as_nanos().min(u64::MAX as u128) as u64 + 1),
    ));
    pulled.clamp(base, max)
}

/// A machine-random seed without any extra dependency: the std hasher's
/// per-process randomness.
fn entropy_seed() -> u64 {
    std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish()
}

/// Configuration for [`StreamClient::connect`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, e.g. `127.0.0.1:7171`.
    pub addr: String,
    /// Stream (source) name to produce into.
    pub stream: String,
    /// Schema to claim in the handshake; `None` adopts the server's.
    pub schema: Option<Schema>,
    /// Max frames in flight before `send` stalls on acks.
    pub ack_window: usize,
    /// Connection attempts per (re)connect before giving up.
    pub connect_retries: u32,
    /// First retry backoff; doubles per attempt up to `max_backoff`.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Max silence waiting for an ack before the link is declared dead
    /// and the reconnect path runs.
    pub io_timeout: Duration,
    /// Seed for the reconnect-backoff jitter; `None` (default) seeds from
    /// process randomness. Fix it for deterministic tests.
    pub backoff_seed: Option<u64>,
}

impl ClientConfig {
    /// Defaults tuned for loopback tests: small backoffs, modest window.
    pub fn new(addr: impl Into<String>, stream: impl Into<String>) -> Self {
        ClientConfig {
            addr: addr.into(),
            stream: stream.into(),
            schema: None,
            ack_window: 32,
            connect_retries: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            io_timeout: Duration::from_secs(5),
            backoff_seed: None,
        }
    }
}

/// Counters a producer session accumulates; returned by
/// [`StreamClient::close`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientReport {
    /// Frames handed to `send`/`heartbeat`/`close`.
    pub sent: u64,
    /// Frames covered by a server ack.
    pub acked: u64,
    /// Frames written more than once (reconnect retransmission).
    pub retransmitted: u64,
    /// Times the link was re-established.
    pub reconnects: u64,
    /// Unacked frames dropped on reconnect because the server's
    /// `resume_ts` proved them durably ingested.
    pub resume_skipped: u64,
    /// Feedback pacing frames received from the server.
    pub feedback_frames: u64,
}

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
}

/// A producer connection to an `msq serve` instance.
#[derive(Debug)]
pub struct StreamClient {
    cfg: ClientConfig,
    conn: Option<Conn>,
    /// Schema negotiated in the last handshake.
    schema: Option<Schema>,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Highest cumulatively acked sequence number.
    acked_seq: u64,
    /// Highest sequence written on the *current* connection; frames above
    /// it are pending (re)transmission.
    written_seq: u64,
    unacked: VecDeque<Frame>,
    /// Highest source high-water the server has acked (micros); echoed
    /// as the resume hint when re-handshaking.
    acked_ts: u64,
    report: ClientReport,
    /// Chaos hook: sever the link after this many more frame writes.
    fail_after: Option<u64>,
    /// Send window requested by the server's last [`Frame::Feedback`];
    /// `None` means no server limit (use the configured window).
    server_window: Option<usize>,
    /// Jitter source for the reconnect backoff schedule.
    rng: SmallRng,
}

fn frame_seq(f: &Frame) -> u64 {
    match f {
        Frame::Data { seq, .. } | Frame::Heartbeat { seq, .. } | Frame::Close { seq } => *seq,
        _ => unreachable!("only seq-bearing frames are buffered"),
    }
}

impl StreamClient {
    /// Connects (with retry/backoff) and completes the handshake.
    pub fn connect(cfg: ClientConfig) -> Result<StreamClient> {
        let rng = SmallRng::seed_from_u64(cfg.backoff_seed.unwrap_or_else(entropy_seed));
        let mut c = StreamClient {
            cfg,
            conn: None,
            schema: None,
            next_seq: 1,
            acked_seq: 0,
            written_seq: 0,
            unacked: VecDeque::new(),
            acked_ts: 0,
            report: ClientReport::default(),
            fail_after: None,
            server_window: None,
            rng,
        };
        c.ensure_connected()?;
        Ok(c)
    }

    /// The schema the server confirmed for this stream.
    pub fn schema(&self) -> Option<&Schema> {
        self.schema.as_ref()
    }

    /// Session counters so far.
    pub fn report(&self) -> &ClientReport {
        &self.report
    }

    /// The send window the server last requested via feedback, if any.
    pub fn server_window(&self) -> Option<usize> {
        self.server_window
    }

    /// The window `pump` actually enforces: the configured window, further
    /// narrowed by the server's last feedback request.
    fn effective_window(&self) -> usize {
        let configured = self.cfg.ack_window.max(1);
        match self.server_window {
            Some(requested) => configured.min(requested.max(1)),
            None => configured,
        }
    }

    /// Test chaos hook: after `frames` more successful frame writes, the
    /// socket is severed (as if the network dropped), exercising the
    /// reconnect + resume + retransmit path deterministically.
    pub fn fail_link_after(&mut self, frames: u64) {
        self.fail_after = Some(frames);
    }

    /// Sends one data tuple. May block while the ack window is full and
    /// may transparently reconnect; returns an error only when the server
    /// rejects the session or retries are exhausted.
    pub fn send(&mut self, tuple: Tuple) -> Result<()> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.unacked.push_back(Frame::Data { seq, tuple });
        self.report.sent += 1;
        self.pump()
    }

    /// Sends an explicit heartbeat for the stream.
    pub fn heartbeat(&mut self, ts: Timestamp) -> Result<()> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.unacked.push_back(Frame::Heartbeat { seq, ts });
        self.report.sent += 1;
        self.pump()
    }

    /// Blocks until every buffered frame is acked, surfacing any server
    /// rejection already on the wire (pipelined `send`s return before the
    /// server's verdict arrives; this is the synchronization point).
    pub fn flush(&mut self) -> Result<()> {
        self.pump()?;
        while !self.unacked.is_empty() {
            self.await_ack_progress()?;
        }
        Ok(())
    }

    /// Declares end-of-stream, waits for every frame to be acked, and
    /// returns the session report.
    pub fn close(mut self) -> Result<ClientReport> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.unacked.push_back(Frame::Close { seq });
        self.report.sent += 1;
        self.flush()?;
        if let Some(conn) = &mut self.conn {
            let _ = write_frame(&mut conn.stream, &Frame::Bye);
        }
        Ok(self.report)
    }

    /// Writes everything pending and enforces the ack window.
    fn pump(&mut self) -> Result<()> {
        loop {
            self.ensure_connected()?;
            match self.write_pending() {
                Ok(()) => {}
                Err(_io) => {
                    self.note_link_down();
                    continue;
                }
            }
            if self.unacked.len() < self.effective_window() {
                return Ok(());
            }
            // Window full: stall until the server makes ack progress.
            // (Feedback frames narrowing the window are also consumed
            // here, so pacing takes effect within one ack round-trip.)
            self.await_ack_progress()?;
            if self.unacked.len() < self.effective_window() {
                return Ok(());
            }
        }
    }

    /// Writes buffered frames not yet sent on this connection.
    fn write_pending(&mut self) -> Result<()> {
        let conn = self.conn.as_mut().expect("ensure_connected ran");
        for f in &self.unacked {
            let seq = frame_seq(f);
            if seq <= self.written_seq {
                continue;
            }
            write_frame(&mut conn.stream, f)?;
            self.written_seq = seq;
            if let Some(n) = &mut self.fail_after {
                if *n <= 1 {
                    self.fail_after = None;
                    // Simulate a dropped link: both directions die; the
                    // next operation fails over to reconnect.
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    return Err(Error::runtime("wire: link severed (chaos hook)"));
                }
                *n -= 1;
            }
        }
        Ok(())
    }

    /// Blocks until at least one ack arrives (or the link proves dead and
    /// a reconnect round is triggered).
    fn await_ack_progress(&mut self) -> Result<()> {
        loop {
            self.ensure_connected()?;
            if self.write_pending().is_err() {
                self.note_link_down();
                continue;
            }
            let before = self.acked_seq;
            let deadline = Instant::now() + self.cfg.io_timeout;
            loop {
                let outcome = {
                    let conn = self.conn.as_mut().expect("ensure_connected ran");
                    conn.reader.poll(&mut conn.stream)
                };
                match outcome {
                    Ok(ReadOutcome::Frame(f)) => {
                        self.handle_server_frame(f)?;
                        break;
                    }
                    Ok(ReadOutcome::Timeout) => {
                        if Instant::now() > deadline {
                            self.note_link_down();
                            break;
                        }
                    }
                    Ok(ReadOutcome::Eof) | Err(_) => {
                        self.note_link_down();
                        break;
                    }
                }
            }
            if self.acked_seq > before || self.unacked.is_empty() {
                return Ok(());
            }
        }
    }

    /// Processes one server-to-producer frame.
    fn handle_server_frame(&mut self, f: Frame) -> Result<()> {
        match f {
            Frame::Ack { seq, high_water } => {
                if seq > self.acked_seq {
                    self.acked_seq = seq;
                }
                self.acked_ts = self.acked_ts.max(high_water);
                while self
                    .unacked
                    .front()
                    .is_some_and(|f| frame_seq(f) <= self.acked_seq)
                {
                    self.unacked.pop_front();
                    self.report.acked += 1;
                }
                Ok(())
            }
            Frame::Feedback { window, .. } => {
                // Upstream pacing: adopt (or clear) the server-requested
                // send window. Never an error — feedback is advisory
                // punctuation, not a session verdict.
                self.server_window = if window == 0 {
                    None
                } else {
                    Some(window.min(usize::MAX as u64) as usize)
                };
                self.report.feedback_frames += 1;
                Ok(())
            }
            Frame::Error { code, message } => Err(Error::runtime(format!(
                "server rejected the session ({code:?}): {message}"
            ))),
            Frame::Bye => {
                // Server is going away; treat like a broken link so a
                // restart (tests) or final close path can proceed.
                self.note_link_down();
                Ok(())
            }
            other => Err(Error::runtime(format!(
                "unexpected frame from server: {other:?}"
            ))),
        }
    }

    fn note_link_down(&mut self) {
        if self.conn.take().is_some() {
            self.report.reconnects += 1;
        }
        self.written_seq = self.acked_seq;
    }

    /// (Re)establishes the connection, with exponential backoff, and
    /// prunes the unacked window against the server's resume point.
    fn ensure_connected(&mut self) -> Result<()> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut last_err = None;
        for attempt in 0..self.cfg.connect_retries.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff_delay(
                    self.cfg.base_backoff,
                    self.cfg.max_backoff,
                    attempt,
                    self.rng.next_u64(),
                ));
            }
            match self.try_handshake() {
                Ok(conn) => {
                    self.conn = Some(conn);
                    return Ok(());
                }
                Err(Retryable::No(e)) => return Err(e),
                Err(Retryable::Yes(e)) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| Error::runtime("wire: connect failed")))
    }

    fn try_handshake(&mut self) -> std::result::Result<Conn, Retryable> {
        let stream = TcpStream::connect(&self.cfg.addr).map_err(|e| {
            Retryable::Yes(Error::runtime(format!("connect {}: {e}", self.cfg.addr)))
        })?;
        stream
            .set_read_timeout(Some(Duration::from_millis(25)))
            .map_err(|e| Retryable::Yes(Error::runtime(format!("set_read_timeout: {e}"))))?;
        stream
            .set_nodelay(true)
            .map_err(|e| Retryable::Yes(Error::runtime(format!("set_nodelay: {e}"))))?;
        let mut conn = Conn {
            stream,
            reader: FrameReader::new(),
        };
        write_frame(
            &mut conn.stream,
            &Frame::Hello {
                version: PROTOCOL_VERSION,
                role: Role::Producer,
                stream: self.cfg.stream.clone(),
                schema: self.cfg.schema.clone(),
                resume_hint: self.acked_ts,
            },
        )
        .map_err(Retryable::Yes)?;
        let deadline = Instant::now() + self.cfg.io_timeout;
        let reply = loop {
            match conn.reader.poll(&mut conn.stream) {
                Ok(ReadOutcome::Frame(f)) => break f,
                Ok(ReadOutcome::Timeout) => {
                    if Instant::now() > deadline {
                        return Err(Retryable::Yes(Error::runtime("wire: handshake timed out")));
                    }
                }
                Ok(ReadOutcome::Eof) => {
                    return Err(Retryable::Yes(Error::runtime(
                        "wire: server closed during handshake",
                    )));
                }
                Err(e) => return Err(Retryable::Yes(e)),
            }
        };
        match reply {
            Frame::HelloAck {
                version: _,
                schema,
                resume_ts,
            } => {
                self.schema = Some(schema);
                self.prune_resumed(resume_ts);
                // Everything still buffered needs (re)transmission on
                // this fresh connection.
                self.report.retransmitted += self
                    .unacked
                    .iter()
                    .filter(|f| frame_seq(f) <= self.written_seq)
                    .count() as u64;
                self.written_seq = self.acked_seq;
                Ok(conn)
            }
            // A handshake rejection (unknown stream, schema mismatch,
            // version skew) will not improve with retries.
            Frame::Error { code, message } => Err(Retryable::No(Error::runtime(format!(
                "server refused the handshake ({code:?}): {message}"
            )))),
            other => Err(Retryable::Yes(Error::runtime(format!(
                "unexpected handshake reply: {other:?}"
            )))),
        }
    }

    /// Drops buffered data frames the server has durably ingested (their
    /// ack was lost in the crash): anything at or below `resume_ts`.
    fn prune_resumed(&mut self, resume_ts: u64) {
        if resume_ts == 0 {
            return;
        }
        let before = self.unacked.len();
        self.unacked.retain(|f| match f {
            Frame::Data { tuple, .. } => tuple.ts.as_micros() > resume_ts,
            // A heartbeat at or below the server's high-water asserts
            // nothing the server doesn't already know — retransmitting it
            // would only be dropped as stale engine-side. Prune it here
            // and count it as resumed, like the data it rode with.
            Frame::Heartbeat { ts, .. } => ts.as_micros() > resume_ts,
            // Closes are idempotent server-side; keep them.
            _ => true,
        });
        let skipped = (before - self.unacked.len()) as u64;
        self.report.resume_skipped += skipped;
        self.report.acked += skipped;
    }
}

enum Retryable {
    Yes(Error),
    No(Error),
}

/// A blocking subscriber to the server's sink output.
pub struct Subscription {
    stream: TcpStream,
    reader: FrameReader,
    schema: Schema,
    /// Cumulative outputs shed server-side for this subscriber, as
    /// declared by [`Frame::Feedback`] drop notices.
    dropped: u64,
    /// Feedback notices received.
    feedback_frames: u64,
}

impl Subscription {
    /// Connects as a subscriber and completes the handshake.
    pub fn connect(addr: &str) -> Result<Subscription> {
        let stream =
            TcpStream::connect(addr).map_err(|e| Error::runtime(format!("connect {addr}: {e}")))?;
        stream
            .set_read_timeout(Some(Duration::from_millis(25)))
            .map_err(|e| Error::runtime(format!("set_read_timeout: {e}")))?;
        let mut sub = Subscription {
            stream,
            reader: FrameReader::new(),
            schema: Schema::empty(),
            dropped: 0,
            feedback_frames: 0,
        };
        write_frame(
            &mut sub.stream,
            &Frame::Hello {
                version: PROTOCOL_VERSION,
                role: Role::Subscriber,
                stream: String::new(),
                schema: None,
                resume_hint: 0,
            },
        )?;
        match sub.read_deadline(Duration::from_secs(5))? {
            Some(Frame::HelloAck { schema, .. }) => {
                sub.schema = schema;
                Ok(sub)
            }
            Some(Frame::Error { code, message }) => Err(Error::runtime(format!(
                "server refused the subscription ({code:?}): {message}"
            ))),
            other => Err(Error::runtime(format!(
                "unexpected subscription handshake reply: {other:?}"
            ))),
        }
    }

    /// The query's output schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Cumulative outputs the server declared shed for this subscriber
    /// (via [`Frame::Feedback`] drop notices). `received + dropped()`
    /// reconciles with the server's delivered count.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Feedback drop-notice frames received so far.
    pub fn feedback_frames(&self) -> u64 {
        self.feedback_frames
    }

    /// Next output tuple (punctuation marks included, so final-ETS
    /// propagation is observable). `Ok(None)` at graceful end of stream;
    /// an error if nothing arrives within `patience`. Feedback drop
    /// notices are absorbed into [`Subscription::dropped`] — they never
    /// end the stream.
    pub fn next(&mut self, patience: Duration) -> Result<Option<Tuple>> {
        loop {
            match self.read_deadline(patience)? {
                Some(Frame::Output { tuple }) => return Ok(Some(tuple)),
                Some(Frame::Feedback { dropped, .. }) => {
                    self.dropped = self.dropped.max(dropped);
                    self.feedback_frames += 1;
                }
                Some(Frame::Bye) | None => return Ok(None),
                Some(Frame::Error { code, message }) => {
                    return Err(Error::runtime(format!(
                        "subscription ended ({code:?}): {message}"
                    )));
                }
                Some(other) => {
                    return Err(Error::runtime(format!(
                        "unexpected frame on subscription: {other:?}"
                    )));
                }
            }
        }
    }

    fn read_deadline(&mut self, patience: Duration) -> Result<Option<Frame>> {
        let deadline = Instant::now() + patience;
        loop {
            match self.reader.poll(&mut self.stream)? {
                ReadOutcome::Frame(f) => return Ok(Some(f)),
                ReadOutcome::Eof => return Ok(None),
                ReadOutcome::Timeout => {
                    if Instant::now() > deadline {
                        return Err(Error::runtime(format!(
                            "no frame within {patience:?} on subscription"
                        )));
                    }
                }
            }
        }
    }
}
