//! The `msq serve` engine host: a TCP server that runs one planned query
//! and exchanges [`Frame`]s with many concurrent clients.
//!
//! ## Threading model
//!
//! One accept thread, a **fixed pool of nonblocking poller threads**
//! ([`ServerConfig::io_threads`]), one **ingest pump** thread, and the
//! [`ParallelExecutor`]'s own component workers. Pollers own the sockets:
//! they run every producer's [`FrameReader`] across readiness events
//! (partial frames survive between polls), validate frame order at the
//! socket boundary, and push decoded frames onto per-shard ingest queues
//! ([`ServerConfig::ingest_shards`]). The pump drains whole shard batches
//! and enters the engine **once per batch** — `{ingest*, advance clock,
//! run-to-quiescence}` — instead of once per frame, so the engine critical
//! section is amortized across every frame that arrived while the previous
//! batch was running. Cumulative [`Frame::Ack`]s (one per connection per
//! batch, carrying the final `high_water`) and per-producer error
//! attribution are preserved: every queued item remembers its connection,
//! so an engine rejection is routed back to exactly the connections whose
//! frames were in the failing section.
//!
//! Subscribers get a dedicated blocking writer thread each, but fan-out is
//! shared: the sink encodes each output frame **once** into an
//! `Arc<[u8]>` slab that every subscriber queue references, so a thousand
//! tails cost one encode per tuple, not a thousand.
//!
//! ## Backpressure and feedback punctuation
//!
//! A producer's unacked window (client side,
//! [`crate::client::StreamClient`]) plus one bounded shard queue is the
//! only buffering between the socket and the engine: pollers stop reading
//! a connection whose shard queue is full, so TCP flow control pushes back
//! to the producer and the server never queues unbounded input. On top of
//! that, the server translates queue pressure into [`Frame::Feedback`]
//! punctuation flowing *against* the data direction: when the engine's
//! occupancy (or the deepest subscriber queue) crosses the configured
//! watermarks, every producer connection is told a smaller send window at
//! its next ack, and the producer client narrows its pipeline accordingly.
//!
//! Subscribers get a bounded queue each. Under the default
//! [`OverflowPolicy::Shed`], a subscriber that stalls past its queue
//! capacity has its **oldest data tuples** shed — punctuation is never
//! shed, only coalesced — and the drop count travels to the subscriber as
//! cumulative [`Frame::Feedback`] notices, so loss is always declared,
//! never silent. Under [`OverflowPolicy::Disconnect`], the subscriber is
//! cut off instead — but only after a drop-count notice, the final
//! `Timestamp::MAX` punctuation and a structured
//! [`ErrorCode::Overflow`] error, never by a bare socket close.
//!
//! ## Idle connections and on-demand heartbeats
//!
//! The paper's on-demand ETS story is triggered here by *network
//! silence*: when a source stays quiet past
//! [`ServerConfig::idle_timeout`], the pump synthesizes a source heartbeat
//! at the server's stream time (the maximum data timestamp accepted so
//! far), unblocking IWP operators starved by the silent source. Synthesis
//! is driven **per ingest shard sweep**, not per connection: the pump
//! walks each shard's ports on its poll cadence, so a thousand idle
//! connections cost one sweep, not a thousand timers. The wire contract
//! making that sound: a producer silent past the idle timeout forfeits
//! timestamps at or below the synthesized mark — later data under the
//! mark is dropped at the socket boundary (counted, and fatal under
//! `MILLSTREAM_CHECK=strict`).

use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use millstream_buffer::{CheckMode, OrderSentinel, PressureLevel, SentinelStats, Watermarks};
use millstream_exec::{
    CostModel, EtsPolicy, ExecStats, FeedbackConfig, NodeId, ParallelConfig, ParallelExecutor,
    SourceId,
};
use millstream_metrics::{IdleSummary, IdleTracker, LatencyRecorder, LatencySummary};
use millstream_ops::SinkCollector;
use millstream_query::plan_program;
use millstream_types::{Error, Result, Schema, TimeDelta, Timestamp, Tuple};

use crate::frame::{write_frame, ErrorCode, Frame, PROTOCOL_VERSION};

mod ingest;

/// Step budget per quiescence run; effectively unbounded for test-sized
/// streams while still catching a livelocked graph.
const RUN_BUDGET: u64 = 100_000_000;

/// How long connection handshakes may take before the connection is
/// dropped as dead.
const HANDSHAKE_DEADLINE: Duration = Duration::from_secs(5);

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (see [`Server::addr`]).
    pub addr: String,
    /// The query program (DDL + one query) the server hosts.
    pub program: String,
    /// Worker threads for the parallel executor.
    pub workers: usize,
    /// Nonblocking poller threads multiplexing all producer sockets.
    pub io_threads: usize,
    /// Ingest shard queues between the pollers and the engine pump; a
    /// source's frames always land in the same shard, so per-port FIFO
    /// order is preserved end to end.
    pub ingest_shards: usize,
    /// Network silence on a producer connection after which the server
    /// synthesizes a source heartbeat at stream time. `None` disables
    /// synthesis.
    pub idle_timeout: Option<Duration>,
    /// Bounded per-subscriber queue; [`ServerConfig::overflow`] decides
    /// what happens when a subscriber stalls past it.
    pub subscriber_queue: usize,
    /// Socket poll cadence — the rate at which the pump notices shutdown
    /// and idle deadlines, and subscriber writers notice new output.
    pub read_timeout: Duration,
    /// Invariant-checking override; `None` inherits `MILLSTREAM_CHECK`.
    pub check: Option<CheckMode>,
    /// Engine-side feedback punctuation. `Some` (the default) has every
    /// component executor publish queue pressure, which the server
    /// translates into producer-side pacing ([`Frame::Feedback`] frames);
    /// `None` disables the feedback path entirely.
    pub feedback: Option<FeedbackConfig>,
    /// What to do with a subscriber that overflows its bounded queue.
    pub overflow: OverflowPolicy,
}

/// How the server treats a subscriber that stalls past its bounded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Shed the subscriber's **oldest data tuples** to make room, keep the
    /// connection, and declare every drop via cumulative
    /// [`Frame::Feedback`] notices. Punctuation is never shed, only
    /// coalesced, so the subscriber's order/progress contract holds.
    #[default]
    Shed,
    /// Disconnect the subscriber — after a drop-count notice, the final
    /// `Timestamp::MAX` punctuation and a structured
    /// [`ErrorCode::Overflow`] error frame.
    Disconnect,
}

impl ServerConfig {
    /// A loopback config for `program` with test-friendly defaults.
    pub fn new(program: impl Into<String>) -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            program: program.into(),
            workers: 2,
            io_threads: 2,
            ingest_shards: 4,
            idle_timeout: None,
            subscriber_queue: 1024,
            read_timeout: Duration::from_millis(25),
            check: None,
            feedback: Some(FeedbackConfig::default()),
            overflow: OverflowPolicy::default(),
        }
    }
}

/// Aggregate counters, readable mid-run via [`Server::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted (any role, including failed handshakes).
    pub connections: u64,
    /// Connections currently open (producers, subscribers, handshakes).
    pub conns_active: u64,
    /// Connections accepted over the server's lifetime (same population
    /// as `connections`; kept distinct so the active/total pair reads as
    /// a gauge + counter).
    pub conns_total: u64,
    /// Frames received from producers after handshake.
    pub frames_in: u64,
    /// Engine critical sections entered by the ingest pump; the batching
    /// win is `frames_in / ingest_sections` frames per section.
    pub ingest_sections: u64,
    /// Data tuples ingested into the engine.
    pub tuples_ingested: u64,
    /// Explicit wire heartbeats forwarded to the engine.
    pub heartbeats_in: u64,
    /// Retransmitted duplicates dropped at the socket boundary
    /// (acked, never ingested).
    pub duplicates_dropped: u64,
    /// Data tuples dropped for violating a synthesized heartbeat's
    /// high-water mark (non-strict modes; strict kills the connection).
    pub rejected_tuples: u64,
    /// Heartbeats synthesized by the idle-timeout machinery.
    pub synthesized_heartbeats: u64,
    /// Tuples delivered by the sink (fanned out to subscribers).
    pub delivered: u64,
    /// Subscribers that overflowed their bounded queue (disconnected
    /// under [`OverflowPolicy::Disconnect`]; kept under `Shed`).
    pub subscriber_overflows: u64,
    /// Data tuples shed from subscriber queues under
    /// [`OverflowPolicy::Shed`] — every one declared to its subscriber
    /// via a [`Frame::Feedback`] drop notice.
    pub sub_shed: u64,
    /// Feedback pacing frames sent to producer connections.
    pub feedback_frames: u64,
}

/// Lock-free storage behind [`ServerStats`]: every counter the ingest
/// pump and the pollers touch lives here so [`Server::stats`] never has
/// to take the engine lock.
#[derive(Default)]
struct StatsCell {
    connections: AtomicU64,
    conns_active: AtomicU64,
    conns_total: AtomicU64,
    frames_in: AtomicU64,
    ingest_sections: AtomicU64,
    tuples_ingested: AtomicU64,
    heartbeats_in: AtomicU64,
    duplicates_dropped: AtomicU64,
    rejected_tuples: AtomicU64,
    synthesized_heartbeats: AtomicU64,
    feedback_frames: AtomicU64,
}

impl StatsCell {
    fn snapshot(&self, broadcast: &Broadcast) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::SeqCst),
            conns_active: self.conns_active.load(Ordering::SeqCst),
            conns_total: self.conns_total.load(Ordering::SeqCst),
            frames_in: self.frames_in.load(Ordering::SeqCst),
            ingest_sections: self.ingest_sections.load(Ordering::SeqCst),
            tuples_ingested: self.tuples_ingested.load(Ordering::SeqCst),
            heartbeats_in: self.heartbeats_in.load(Ordering::SeqCst),
            duplicates_dropped: self.duplicates_dropped.load(Ordering::SeqCst),
            rejected_tuples: self.rejected_tuples.load(Ordering::SeqCst),
            synthesized_heartbeats: self.synthesized_heartbeats.load(Ordering::SeqCst),
            delivered: broadcast.delivered(),
            subscriber_overflows: broadcast.overflows(),
            sub_shed: broadcast.shed_total(),
            feedback_frames: self.feedback_frames.load(Ordering::SeqCst),
        }
    }
}

/// Per-source accounting in the final [`ServerReport`].
#[derive(Debug, Clone)]
pub struct PortReport {
    /// Stream name from the program's DDL.
    pub stream: String,
    /// Data tuples ingested.
    pub ingested: u64,
    /// Duplicates dropped at the boundary.
    pub duplicates: u64,
    /// Tuples rejected below a synthesized high-water mark.
    pub rejected: u64,
    /// Heartbeats synthesized while the source was network-starved.
    pub synthesized: u64,
    /// Whether the source was closed (by a client or at shutdown).
    pub closed: bool,
    /// Network-idleness of the source over the server's wall-clock run.
    pub idle: IdleSummary,
}

/// Everything [`Server::shutdown`] hands back after the final drain.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Final aggregate counters.
    pub stats: ServerStats,
    /// Per-source accounting.
    pub ports: Vec<PortReport>,
    /// Wire-arrival → sink-delivery latency over all producer
    /// connections.
    pub latency: LatencySummary,
    /// Times the latency recorder was touched while the engine lock was
    /// held on the same thread — the recorder lives *outside* the engine
    /// critical section by design, so this must stay zero.
    pub latency_lock_violations: u64,
    /// Merged engine counters (includes `dropped_stale_heartbeats`).
    pub exec: ExecStats,
    /// Wire-level sentinel violations observed at socket boundaries.
    pub wire_sentinel_violations: u64,
    /// Deepest any subscriber queue ever got — with feedback shedding on,
    /// bounded by [`ServerConfig::subscriber_queue`] by construction.
    pub sub_peak_queue: usize,
    /// Idle-waiting fraction of the monitored IWP operator (the query's
    /// top union/join), if the plan has one.
    pub monitor_idle_fraction: Option<f64>,
}

/// Engine-side view of one planned source.
struct Port {
    source: SourceId,
    stream: String,
    schema: Schema,
    /// Wire-order sentinel for this source's socket boundary (punctuation
    /// dominance of late data against synthesized marks).
    sentinel: OrderSentinel,
    /// Highest data timestamp ingested (micros); wire-level dedup mark.
    data_hw: Option<u64>,
    /// Highest fresh heartbeat asserted (micros), synthesized or wire.
    punct_hw: Option<u64>,
    closed: bool,
    producers: usize,
    /// Wall-clock instant of the last producer frame for this source.
    last_arrival: Option<Instant>,
    /// Network-idleness over the server's wall-clock timeline.
    idle: IdleTracker,
    is_idle: bool,
    ingested: u64,
    duplicates: u64,
    rejected: u64,
    synthesized: u64,
}

/// The engine and every piece of state its lock protects.
struct Engine {
    exec: ParallelExecutor,
    ports: Vec<Port>,
    by_name: HashMap<String, usize>,
    output_schema: Schema,
    monitor: Option<NodeId>,
    /// Server stream time: max data timestamp accepted (micros).
    max_ts: u64,
    /// High-water of the engine's virtual clock (micros).
    clock_us: u64,
}

impl Engine {
    /// Advances the executor clock monotonically to `ts` micros.
    fn advance_clock(&mut self, ts: u64) -> Result<()> {
        if ts > self.clock_us {
            self.clock_us = ts;
            self.exec.advance_to(Timestamp::from_micros(ts))?;
        }
        Ok(())
    }

    fn run(&mut self) -> Result<()> {
        self.exec.run_until_quiescent(RUN_BUDGET).map(|_| ())
    }
}

thread_local! {
    /// Engine-lock nesting depth on this thread; [`Shared::record_latency`]
    /// refuses (and counts) any recording attempted while it is nonzero.
    static ENGINE_LOCK_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Engine-lock guard that tracks per-thread nesting depth, so the latency
/// recorder discipline ("never under the engine lock") is checkable.
struct EngineGuard<'a> {
    guard: MutexGuard<'a, Engine>,
}

impl Deref for EngineGuard<'_> {
    type Target = Engine;
    fn deref(&self) -> &Engine {
        &self.guard
    }
}

impl DerefMut for EngineGuard<'_> {
    fn deref_mut(&mut self) -> &mut Engine {
        &mut self.guard
    }
}

impl Drop for EngineGuard<'_> {
    fn drop(&mut self) {
        ENGINE_LOCK_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

/// One pre-encoded output frame in a subscriber queue. The slab is shared
/// (`Arc<[u8]>`) across every subscriber: the sink encodes once and each
/// tail writes the same bytes.
struct SubItem {
    bytes: Arc<[u8]>,
    /// Whether the encoded frame carries a data tuple (sheddable) or a
    /// punctuation mark (never shed, only coalesced).
    data: bool,
}

/// One subscriber's bounded output queue, shared between the delivering
/// sink (under the broadcast lock) and the subscriber's writer thread.
struct SubQueue {
    state: Mutex<SubState>,
    cv: Condvar,
    cap: usize,
}

struct SubState {
    buf: VecDeque<SubItem>,
    /// Cumulative data tuples shed for this subscriber — the figure its
    /// [`Frame::Feedback`] drop notices carry.
    dropped: u64,
    /// Deepest the queue ever got.
    peak: usize,
    /// [`OverflowPolicy::Disconnect`] tripped: no further deliveries; the
    /// writer drains what is buffered and closes with the full
    /// notice/mark/error sequence.
    overflowed: bool,
    /// End of stream: the final punctuation (if any) is already queued.
    finished: bool,
}

impl SubQueue {
    /// Makes room for one more item on a full queue without ever losing
    /// a punctuation mark: the oldest **data** item is shed (counted);
    /// if the queue is all punctuation, the oldest mark is coalesced away
    /// (dominated by every newer mark behind it — semantically lossless).
    /// Returns how many data tuples were shed (0 or 1).
    fn make_room(st: &mut SubState) -> u64 {
        match st.buf.iter().position(|it| it.data) {
            Some(pos) => {
                st.buf.remove(pos);
                st.dropped += 1;
                1
            }
            None => {
                st.buf.pop_front();
                0
            }
        }
    }
}

/// Fan-out sink: the planned query delivers here, and every subscriber
/// gets a bounded view of the shared encoded stream.
#[derive(Clone)]
struct Broadcast {
    inner: Arc<Mutex<BroadcastState>>,
    policy: OverflowPolicy,
    /// Pressure classification for subscriber queue depth, sized to
    /// [`ServerConfig::subscriber_queue`].
    marks: Watermarks,
}

struct BroadcastState {
    subs: Vec<Option<Arc<SubQueue>>>,
    delivered: u64,
    overflows: u64,
    shed: u64,
    peak: usize,
}

impl Broadcast {
    fn new(policy: OverflowPolicy, queue_cap: usize) -> Self {
        Broadcast {
            inner: Arc::new(Mutex::new(BroadcastState {
                subs: Vec::new(),
                delivered: 0,
                overflows: 0,
                shed: 0,
                peak: 0,
            })),
            policy,
            marks: Watermarks::new(queue_cap / 2, queue_cap.saturating_sub(queue_cap / 8)),
        }
    }

    fn subscribe(&self, cap: usize) -> (usize, Arc<SubQueue>) {
        let q = Arc::new(SubQueue {
            state: Mutex::new(SubState {
                buf: VecDeque::new(),
                dropped: 0,
                peak: 0,
                overflowed: false,
                finished: false,
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
        });
        let mut st = self.inner.lock().unwrap();
        let slot = st.subs.len();
        st.subs.push(Some(Arc::clone(&q)));
        (slot, q)
    }

    fn unsubscribe(&self, slot: usize) {
        let mut st = self.inner.lock().unwrap();
        if let Some(q) = st.subs[slot].take() {
            let sub = q.state.lock().unwrap();
            st.peak = st.peak.max(sub.peak);
        }
    }

    fn delivered(&self) -> u64 {
        self.inner.lock().unwrap().delivered
    }

    fn overflows(&self) -> u64 {
        self.inner.lock().unwrap().overflows
    }

    fn shed_total(&self) -> u64 {
        self.inner.lock().unwrap().shed
    }

    /// Deepest any subscriber queue ever got (departed ones included).
    fn peak(&self) -> usize {
        let st = self.inner.lock().unwrap();
        let mut peak = st.peak;
        for q in st.subs.iter().flatten() {
            peak = peak.max(q.state.lock().unwrap().peak);
        }
        peak
    }

    /// Current pressure from the deepest live subscriber queue — one of
    /// the two inputs to producer pacing (the other is engine occupancy).
    fn pressure(&self) -> PressureLevel {
        let st = self.inner.lock().unwrap();
        let mut level = PressureLevel::Normal;
        for q in st.subs.iter().flatten() {
            level = level.max(self.marks.classify(q.state.lock().unwrap().buf.len()));
        }
        level
    }

    /// Queues the final `Timestamp::MAX` punctuation to **every** live
    /// subscriber — shedding a data tuple for room if it must (counted
    /// like any other shed) — and marks their streams finished. Even an
    /// overflowed subscriber gets the final mark: its writer drains the
    /// buffer before closing.
    fn finish(&self) {
        let Some(mark) = encode_output(Tuple::punctuation(Timestamp::MAX)) else {
            return;
        };
        let mut st = self.inner.lock().unwrap();
        let mut shed = 0;
        for q in st.subs.iter().flatten() {
            let mut sub = q.state.lock().unwrap();
            // An overflowed (Disconnect-policy) subscriber synthesizes
            // its own final mark in its close sequence; queueing another
            // here would only duplicate it.
            if !sub.finished && !sub.overflowed {
                if sub.buf.len() >= q.cap {
                    shed += SubQueue::make_room(&mut sub);
                }
                sub.buf.push_back(SubItem {
                    bytes: Arc::clone(&mark),
                    data: false,
                });
                sub.peak = sub.peak.max(sub.buf.len());
            }
            sub.finished = true;
            q.cv.notify_one();
        }
        st.shed += shed;
    }
}

/// Encodes one output frame into a shared slab, ready to fan out to every
/// subscriber tail.
fn encode_output(tuple: Tuple) -> Option<Arc<[u8]>> {
    match (Frame::Output { tuple }).encode() {
        Ok(bytes) => Some(bytes.into()),
        // Unencodable output is an internal invariant failure, not a
        // subscriber's problem; never panic the sink over it.
        Err(_) => {
            debug_assert!(false, "output frame failed to encode");
            None
        }
    }
}

impl SinkCollector for Broadcast {
    fn deliver(&mut self, tuple: Tuple, _now: Timestamp) {
        let data = tuple.is_data();
        let Some(bytes) = encode_output(tuple) else {
            return;
        };
        let mut st = self.inner.lock().unwrap();
        st.delivered += 1;
        let mut overflows = 0;
        let mut shed = 0;
        for q in st.subs.iter().flatten() {
            let mut sub = q.state.lock().unwrap();
            if sub.finished {
                continue;
            }
            if sub.overflowed {
                // Disconnect policy already tripped: the writer is still
                // draining the prefix, so count what it will never see —
                // it freezes this ledger (sets `finished`) the moment it
                // reads the count for its final drop notice.
                if data {
                    sub.dropped += 1;
                }
                continue;
            }
            if sub.buf.len() >= q.cap {
                match self.policy {
                    OverflowPolicy::Shed => shed += SubQueue::make_room(&mut sub),
                    OverflowPolicy::Disconnect => {
                        sub.overflowed = true;
                        overflows += 1;
                        if data {
                            sub.dropped += 1;
                        }
                        q.cv.notify_one();
                        continue;
                    }
                }
            }
            sub.buf.push_back(SubItem {
                bytes: Arc::clone(&bytes),
                data,
            });
            sub.peak = sub.peak.max(sub.buf.len());
            q.cv.notify_one();
        }
        st.overflows += overflows;
        st.shed += shed;
    }
}

/// State shared by every server thread.
struct Shared {
    cfg: ServerConfig,
    engine: Mutex<Engine>,
    broadcast: Broadcast,
    sentinel: Arc<SentinelStats>,
    shutdown: AtomicBool,
    /// Hard stop for the IO threads, set after the final engine drain;
    /// distinct from `shutdown` (which starts the graceful drain).
    terminate: AtomicBool,
    /// Producer connections past handshake and not yet drained; shutdown
    /// waits for this to reach zero before the final source close.
    active_producers: AtomicU64,
    started: Instant,
    stats: StatsCell,
    latency: Mutex<LatencyRecorder>,
    /// Latency recordings attempted under the engine lock (must stay 0).
    latency_violations: AtomicU64,
    shards: ingest::ShardQueues,
    pool: ingest::IoPool,
    registry: ingest::ConnRegistry,
}

impl Shared {
    /// Micros since server start, the wall timeline for idle tracking.
    fn now_us(&self) -> Timestamp {
        Timestamp::from_micros(self.started.elapsed().as_micros() as u64)
    }

    /// Locks the engine, tracking per-thread nesting depth so latency
    /// recording can assert it happens outside the critical section.
    fn lock_engine(&self) -> EngineGuard<'_> {
        let guard = self.engine.lock().unwrap();
        ENGINE_LOCK_DEPTH.with(|d| d.set(d.get() + 1));
        EngineGuard { guard }
    }

    /// Records `samples` wire→sink latency observations of `elapsed`.
    /// Must be called with the engine lock released; a call under the
    /// lock is counted (and trips a debug assert) instead of recorded.
    fn record_latency(&self, samples: u64, elapsed: TimeDelta) {
        if ENGINE_LOCK_DEPTH.with(|d| d.get()) > 0 {
            self.latency_violations.fetch_add(1, Ordering::SeqCst);
            debug_assert!(false, "latency recorder touched under the engine lock");
            return;
        }
        if samples == 0 {
            return;
        }
        let mut rec = self.latency.lock().unwrap();
        for _ in 0..samples {
            rec.record(elapsed);
        }
    }
}

/// A running `msq serve` instance.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    pollers: Vec<JoinHandle<()>>,
    pump: Option<JoinHandle<()>>,
}

impl Server {
    /// Plans `cfg.program`, binds the listener and starts accepting.
    pub fn start(cfg: ServerConfig) -> Result<Server> {
        let check = cfg.check.unwrap_or_else(CheckMode::from_env);
        let broadcast = Broadcast::new(cfg.overflow, cfg.subscriber_queue);
        let planned = plan_program(&cfg.program, broadcast.clone())?;
        let mut pcfg = ParallelConfig::new(CostModel::free(), EtsPolicy::None, cfg.workers.max(1));
        pcfg.check = Some(check);
        pcfg.feedback = cfg.feedback;
        let exec = ParallelExecutor::new(planned.graph, pcfg);
        if let Some(node) = planned.monitor {
            exec.monitor_idle(node)?;
        }
        let started = Instant::now();
        let sentinel = SentinelStats::shared();
        let mut ports = Vec::new();
        let mut by_name = HashMap::new();
        for s in &planned.sources {
            by_name.insert(s.stream.clone(), ports.len());
            ports.push(Port {
                source: s.id,
                stream: s.stream.clone(),
                schema: s.schema.clone(),
                sentinel: OrderSentinel::new(
                    check,
                    format!("net:{}", s.stream),
                    Arc::clone(&sentinel),
                ),
                data_hw: None,
                punct_hw: None,
                closed: false,
                producers: 0,
                last_arrival: None,
                idle: IdleTracker::new(Timestamp::ZERO),
                is_idle: false,
                ingested: 0,
                duplicates: 0,
                rejected: 0,
                synthesized: 0,
            });
        }
        let engine = Engine {
            exec,
            ports,
            by_name,
            output_schema: planned.output_schema,
            monitor: planned.monitor,
            max_ts: 0,
            clock_us: 0,
        };
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| Error::runtime(format!("bind {}: {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::runtime(format!("local_addr: {e}")))?;
        let io_threads = cfg.io_threads.max(1);
        let ingest_shards = cfg.ingest_shards.max(1);
        let shared = Arc::new(Shared {
            cfg,
            engine: Mutex::new(engine),
            broadcast,
            sentinel,
            shutdown: AtomicBool::new(false),
            terminate: AtomicBool::new(false),
            active_producers: AtomicU64::new(0),
            started,
            stats: StatsCell::default(),
            latency: Mutex::new(LatencyRecorder::new()),
            latency_violations: AtomicU64::new(0),
            shards: ingest::ShardQueues::new(ingest_shards),
            pool: ingest::IoPool::new(io_threads),
            registry: ingest::ConnRegistry::new(),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || ingest::accept_loop(listener, shared))
        };
        let mut pollers = Vec::with_capacity(io_threads);
        for idx in 0..io_threads {
            let s = Arc::clone(&shared);
            let h = std::thread::spawn(move || ingest::poller_loop(&s, idx));
            shared.pool.register_waker(idx, h.thread().clone());
            pollers.push(h);
        }
        let pump = {
            let s = Arc::clone(&shared);
            std::thread::spawn(move || ingest::pump_loop(&s))
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            pollers,
            pump: Some(pump),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the aggregate counters. Lock-free with
    /// respect to the engine: safe to call from any thread mid-run.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats.snapshot(&self.shared.broadcast)
    }

    /// Graceful shutdown: stop accepting, let producers drain their
    /// in-flight frames, drain the shard queues, close every open source
    /// so the final ETS (`Timestamp::MAX` punctuation) propagates, flush
    /// subscribers, and report.
    pub fn shutdown(mut self) -> Result<ServerReport> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Producers notice the flag at their next poll, drain whatever is
        // already buffered on the socket, get their final acks, and
        // retire; then the pump drains whatever they queued.
        let deadline = Instant::now() + Duration::from_secs(10);
        self.shared.pool.wake_all();
        while self.shared.active_producers.load(Ordering::SeqCst) > 0 {
            if Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        while self.shared.shards.pending() > 0 {
            if Instant::now() > deadline {
                break;
            }
            self.shared.shards.notify();
            std::thread::sleep(Duration::from_millis(2));
        }
        // Final drain: close still-open sources and run the engine dry.
        let report = {
            let mut eng = self.shared.lock_engine();
            let now_us = self.shared.now_us();
            for i in 0..eng.ports.len() {
                if !eng.ports[i].closed {
                    let source = eng.ports[i].source;
                    eng.exec.close_source(source)?;
                    eng.ports[i].closed = true;
                }
                eng.ports[i].idle.finish(now_us);
            }
            eng.run()?;
            eng.exec.finish_idle()?;
            let snapshot = eng.exec.snapshot()?;
            let clock = snapshot
                .component_clocks
                .iter()
                .copied()
                .max()
                .unwrap_or(Timestamp::ZERO);
            let monitor_idle_fraction = eng.monitor.and_then(|m| {
                snapshot
                    .idle
                    .iter()
                    .find(|(n, _)| *n == m)
                    .map(|(_, t)| t.idle_fraction(clock))
            });
            let ports = eng
                .ports
                .iter()
                .map(|p| PortReport {
                    stream: p.stream.clone(),
                    ingested: p.ingested,
                    duplicates: p.duplicates,
                    rejected: p.rejected,
                    synthesized: p.synthesized,
                    closed: p.closed,
                    idle: p.idle.summarize(now_us),
                })
                .collect::<Vec<_>>();
            (ports, snapshot.stats, monitor_idle_fraction)
        };
        // End every subscriber stream (final punctuation, then EOF) —
        // *before* assembling the report, so the shed/peak totals include
        // anything the final mark had to displace.
        self.shared.broadcast.finish();
        // Hard-stop the IO threads and collect them.
        self.shared.terminate.store(true, Ordering::SeqCst);
        self.shared.shards.notify();
        self.shared.pool.wake_all();
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
        for h in self.pollers.drain(..) {
            let _ = h.join();
        }
        self.shared.registry.join_all();
        let (ports, exec, monitor_idle_fraction) = report;
        Ok(ServerReport {
            stats: self.shared.stats.snapshot(&self.shared.broadcast),
            ports,
            latency: self.shared.latency.lock().unwrap().summarize(),
            latency_lock_violations: self.shared.latency_violations.load(Ordering::SeqCst),
            exec,
            wire_sentinel_violations: self.shared.sentinel.total(),
            sub_peak_queue: self.shared.broadcast.peak(),
            monitor_idle_fraction,
        })
    }
}

/// Sends a terminal error frame; the connection closes right after.
fn send_error(stream: &mut TcpStream, code: ErrorCode, message: impl Into<String>) {
    let _ = write_frame(
        stream,
        &Frame::Error {
            code,
            message: message.into(),
        },
    );
}

/// The send window (max unacked frames) requested of a producer at each
/// pressure level; `0` means "no limit requested".
fn pacing_window(level: PressureLevel) -> u64 {
    match level {
        PressureLevel::Normal => 0,
        PressureLevel::High => 4,
        PressureLevel::Critical => 1,
    }
}

/// A frame the engine refused: what to tell the peer, and whether the
/// condition is an actual invariant failure (worth propagating) or just a
/// per-connection rejection.
struct Reject {
    code: ErrorCode,
    error: Error,
}

fn reject(code: ErrorCode, error: Error) -> Reject {
    Reject { code, error }
}

/// Applies one producer frame under the engine lock, **without** running
/// the graph: the pump batches `advance_clock` + `run` once per drained
/// shard batch. `batch_max` accumulates the clock target; `need_run` is
/// set when the engine absorbed anything worth scheduling. Returns `true`
/// iff a **data tuple entered the graph** (not a duplicate, a dominance
/// reject, a heartbeat or a close) — the pump uses this to attribute
/// wire-arrival instants to eventual sink deliveries.
fn apply_item(
    eng: &mut Engine,
    stats: &StatsCell,
    port_idx: usize,
    frame: Frame,
    batch_max: &mut u64,
    need_run: &mut bool,
) -> std::result::Result<bool, Reject> {
    match frame {
        Frame::Data { tuple, .. } => {
            if !tuple.is_data() {
                // Wire-level mirror of `Executor::ingest`'s contract.
                return Err(reject(
                    ErrorCode::Protocol,
                    Error::runtime(format!(
                        "DATA frame on `{}` carries punctuation; use a HEARTBEAT frame",
                        eng.ports[port_idx].stream
                    )),
                ));
            }
            if eng.ports[port_idx].closed {
                return Err(reject(
                    ErrorCode::Engine,
                    Error::runtime(format!("source `{}` is closed", eng.ports[port_idx].stream)),
                ));
            }
            let ts = tuple.ts.as_micros();
            if eng.ports[port_idx].data_hw.is_some_and(|hw| ts <= hw) {
                // Retransmitted duplicate (producer timestamps are
                // strictly increasing): ack without ingesting.
                eng.ports[port_idx].duplicates += 1;
                stats.duplicates_dropped.fetch_add(1, Ordering::SeqCst);
                return Ok(false);
            }
            if let Some(phw) = eng.ports[port_idx].punct_hw {
                if ts < phw {
                    // High-water dominance at the socket boundary: this
                    // data contradicts a heartbeat already asserted
                    // (possibly synthesized while the producer was
                    // silent). Count + drop; fatal under strict.
                    let port = &mut eng.ports[port_idx];
                    match port.sentinel.check_punct_dominance(
                        &format!("wire:{}", port.stream),
                        Timestamp::from_micros(ts),
                        Timestamp::from_micros(phw),
                    ) {
                        Ok(()) => {
                            port.rejected += 1;
                            stats.rejected_tuples.fetch_add(1, Ordering::SeqCst);
                            return Ok(false);
                        }
                        Err(e) => {
                            return Err(Reject {
                                code: ErrorCode::Invariant,
                                error: e,
                            });
                        }
                    }
                }
            }
            let source = eng.ports[port_idx].source;
            eng.exec
                .ingest(source, tuple)
                .map_err(|e| reject(ErrorCode::Engine, e))?;
            eng.ports[port_idx].data_hw = Some(ts);
            eng.ports[port_idx].ingested += 1;
            eng.max_ts = eng.max_ts.max(ts);
            stats.tuples_ingested.fetch_add(1, Ordering::SeqCst);
            *batch_max = (*batch_max).max(ts);
            *need_run = true;
            Ok(true)
        }
        Frame::Heartbeat { ts, .. } => {
            if eng.ports[port_idx].closed {
                return Err(reject(
                    ErrorCode::Engine,
                    Error::runtime(format!("source `{}` is closed", eng.ports[port_idx].stream)),
                ));
            }
            let us = ts.as_micros();
            let source = eng.ports[port_idx].source;
            eng.exec
                .ingest_heartbeat(source, ts)
                .map_err(|e| reject(ErrorCode::Engine, e))?;
            let port = &mut eng.ports[port_idx];
            let stale =
                port.data_hw.is_some_and(|hw| us < hw) || port.punct_hw.is_some_and(|p| us <= p);
            if !stale {
                port.punct_hw = Some(us);
            }
            stats.heartbeats_in.fetch_add(1, Ordering::SeqCst);
            *batch_max = (*batch_max).max(us);
            *need_run = true;
            Ok(false)
        }
        Frame::Close { .. } => {
            if !eng.ports[port_idx].closed {
                let source = eng.ports[port_idx].source;
                eng.exec
                    .close_source(source)
                    .map_err(|e| reject(ErrorCode::Engine, e))?;
                eng.ports[port_idx].closed = true;
                *need_run = true;
            }
            Ok(false)
        }
        _ => unreachable!("pollers forward only seq-bearing frames"),
    }
}

/// What one wait on a subscriber queue produced.
enum SubStep {
    /// An encoded frame to write, plus the cumulative drop count at pop
    /// time and the queue's pressure level (for drop-notice feedback
    /// frames).
    Item(SubItem, u64, PressureLevel),
    /// Nothing arrived within the poll timeout.
    Quiet,
    /// Stream over: `overflowed` tells graceful end from a
    /// [`OverflowPolicy::Disconnect`] cut-off; `dropped` is final.
    End { overflowed: bool, dropped: u64 },
}

fn serve_subscriber(shared: &Arc<Shared>, mut stream: TcpStream) -> Result<()> {
    let output_schema = shared.lock_engine().output_schema.clone();
    let (slot, q) = shared.broadcast.subscribe(shared.cfg.subscriber_queue);
    write_frame(
        &mut stream,
        &Frame::HelloAck {
            version: PROTOCOL_VERSION,
            schema: output_schema,
            resume_ts: 0,
        },
    )?;
    // Cumulative drops already announced to this subscriber; a change is
    // declared with a Feedback frame *before* the next Output, so the
    // subscriber can always reconcile received + dropped = delivered.
    let mut announced: u64 = 0;
    let res: Result<()> = loop {
        let step = {
            let mut sub = q.state.lock().unwrap();
            loop {
                if let Some(item) = sub.buf.pop_front() {
                    let level = shared.broadcast.marks.classify(sub.buf.len());
                    break SubStep::Item(item, sub.dropped, level);
                }
                if sub.overflowed || sub.finished {
                    // Freeze the drop ledger at the moment the verdict is
                    // announced: from here on `deliver` treats this
                    // subscriber as gone (skip, don't count), so the
                    // notice written below is exact — every tuple before
                    // the cut is delivered or declared, tuples after it
                    // are post-subscription.
                    let overflowed = sub.overflowed;
                    sub.finished = true;
                    break SubStep::End {
                        overflowed,
                        dropped: sub.dropped,
                    };
                }
                let (guard, timeout) =
                    q.cv.wait_timeout(sub, shared.cfg.read_timeout)
                        .expect("subscriber queue lock poisoned");
                sub = guard;
                if timeout.timed_out() {
                    break SubStep::Quiet;
                }
            }
        };
        match step {
            SubStep::Quiet => continue,
            SubStep::Item(item, dropped, level) => {
                if dropped > announced {
                    announced = dropped;
                    if let Err(e) = write_frame(
                        &mut stream,
                        &Frame::Feedback {
                            level: level.as_u8(),
                            window: 0,
                            dropped,
                        },
                    ) {
                        break Err(e);
                    }
                }
                // The pre-encoded shared slab: identical bytes to a
                // per-subscriber `write_frame(Output)` encode.
                if let Err(e) = stream
                    .write_all(&item.bytes)
                    .and_then(|()| stream.flush())
                    .map_err(|e| Error::runtime(format!("write output frame: {e}")))
                {
                    // Subscriber went away; not a server error.
                    break Err(e);
                }
            }
            SubStep::End {
                overflowed,
                dropped,
            } => {
                if dropped > announced {
                    let _ = write_frame(
                        &mut stream,
                        &Frame::Feedback {
                            level: PressureLevel::Critical.as_u8(),
                            window: 0,
                            dropped,
                        },
                    );
                }
                if overflowed {
                    // The fixed disconnect path: the final mark and a
                    // structured error, never a bare socket close. The
                    // buffered prefix (drained above) plus the MAX mark
                    // keep the subscriber's progress contract intact.
                    let _ = write_frame(
                        &mut stream,
                        &Frame::Output {
                            tuple: Tuple::punctuation(Timestamp::MAX),
                        },
                    );
                    send_error(
                        &mut stream,
                        ErrorCode::Overflow,
                        format!(
                            "subscriber overflowed its bounded queue ({} tuples); {dropped} dropped",
                            shared.cfg.subscriber_queue
                        ),
                    );
                } else {
                    let _ = write_frame(&mut stream, &Frame::Bye);
                }
                break Ok(());
            }
        }
    };
    shared.broadcast.unsubscribe(slot);
    match res {
        Ok(()) => Ok(()),
        // A write failure to a departed subscriber is expected churn.
        Err(_) => Ok(()),
    }
}
