//! The `msq serve` engine host: a TCP server that runs one planned query
//! and exchanges [`Frame`]s with many concurrent clients.
//!
//! ## Threading model
//!
//! One accept thread, one thread per connection, and the
//! [`ParallelExecutor`]'s own component workers. All engine access is
//! serialized through a single [`Mutex`]: a producer connection locks the
//! engine for its whole `{advance clock, ingest, run-to-quiescence}`
//! critical section, so any error the fire-and-forget parallel channel
//! stashes surfaces at *this* connection's barrier and is attributed (as
//! an [`Frame::Error`]) to the connection that caused it. Sink deliveries
//! emitted during the critical section are likewise attributable, which
//! is what makes the per-connection wire-arrival → sink-delivery
//! [`LatencyRecorder`] meaningful.
//!
//! ## Backpressure
//!
//! Producers are processed synchronously: a frame is acked only after the
//! engine has fully absorbed it, so a producer's unacked window (client
//! side, [`crate::client::StreamClient`]) is the *only* buffering between
//! the socket and the engine — the server never queues unbounded input.
//! Subscribers get a bounded queue each; a subscriber that stalls past
//! its queue capacity is disconnected with [`ErrorCode::Overflow`] rather
//! than letting the queue grow.
//!
//! ## Idle connections and on-demand heartbeats
//!
//! The paper's on-demand ETS story is triggered here by *network
//! silence*: when a producer connection stays quiet past
//! [`ServerConfig::idle_timeout`], the server synthesizes a source
//! heartbeat at the server's stream time (the maximum data timestamp
//! accepted so far), unblocking IWP operators starved by the silent
//! source. The wire contract making that sound: a producer silent past
//! the idle timeout forfeits timestamps at or below the synthesized mark
//! — later data under the mark is dropped at the socket boundary
//! (counted, and fatal under `MILLSTREAM_CHECK=strict`).

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TrySendError};

use millstream_buffer::{CheckMode, OrderSentinel, SentinelStats};
use millstream_exec::{
    CostModel, EtsPolicy, ExecStats, IngestHandle, NodeId, ParallelConfig, ParallelExecutor,
};
use millstream_metrics::{IdleSummary, IdleTracker, LatencyRecorder, LatencySummary};
use millstream_ops::SinkCollector;
use millstream_query::plan_program;
use millstream_types::{Error, Result, Schema, TimeDelta, Timestamp, Tuple};

use crate::frame::{
    write_frame, ErrorCode, Frame, FrameReader, ReadOutcome, Role, PROTOCOL_VERSION,
};

/// Step budget per quiescence run; effectively unbounded for test-sized
/// streams while still catching a livelocked graph.
const RUN_BUDGET: u64 = 100_000_000;

/// How long connection handshakes may take before the connection is
/// dropped as dead.
const HANDSHAKE_DEADLINE: Duration = Duration::from_secs(5);

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (see [`Server::addr`]).
    pub addr: String,
    /// The query program (DDL + one query) the server hosts.
    pub program: String,
    /// Worker threads for the parallel executor.
    pub workers: usize,
    /// Network silence on a producer connection after which the server
    /// synthesizes a source heartbeat at stream time. `None` disables
    /// synthesis.
    pub idle_timeout: Option<Duration>,
    /// Bounded per-subscriber queue; overflow disconnects the subscriber.
    pub subscriber_queue: usize,
    /// Socket read timeout — the cadence at which connections notice
    /// shutdown and idle deadlines.
    pub read_timeout: Duration,
    /// Invariant-checking override; `None` inherits `MILLSTREAM_CHECK`.
    pub check: Option<CheckMode>,
}

impl ServerConfig {
    /// A loopback config for `program` with test-friendly defaults.
    pub fn new(program: impl Into<String>) -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            program: program.into(),
            workers: 2,
            idle_timeout: None,
            subscriber_queue: 1024,
            read_timeout: Duration::from_millis(25),
            check: None,
        }
    }
}

/// Aggregate counters, readable mid-run via [`Server::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted (any role, including failed handshakes).
    pub connections: u64,
    /// Frames received from producers after handshake.
    pub frames_in: u64,
    /// Data tuples ingested into the engine.
    pub tuples_ingested: u64,
    /// Explicit wire heartbeats forwarded to the engine.
    pub heartbeats_in: u64,
    /// Retransmitted duplicates dropped at the socket boundary
    /// (acked, never ingested).
    pub duplicates_dropped: u64,
    /// Data tuples dropped for violating a synthesized heartbeat's
    /// high-water mark (non-strict modes; strict kills the connection).
    pub rejected_tuples: u64,
    /// Heartbeats synthesized by the idle-timeout machinery.
    pub synthesized_heartbeats: u64,
    /// Tuples delivered by the sink (fanned out to subscribers).
    pub delivered: u64,
    /// Subscribers disconnected for overflowing their bounded queue.
    pub subscriber_overflows: u64,
}

/// Per-source accounting in the final [`ServerReport`].
#[derive(Debug, Clone)]
pub struct PortReport {
    /// Stream name from the program's DDL.
    pub stream: String,
    /// Data tuples ingested.
    pub ingested: u64,
    /// Duplicates dropped at the boundary.
    pub duplicates: u64,
    /// Tuples rejected below a synthesized high-water mark.
    pub rejected: u64,
    /// Heartbeats synthesized while the source was network-starved.
    pub synthesized: u64,
    /// Whether the source was closed (by a client or at shutdown).
    pub closed: bool,
    /// Network-idleness of the source over the server's wall-clock run.
    pub idle: IdleSummary,
}

/// Everything [`Server::shutdown`] hands back after the final drain.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Final aggregate counters.
    pub stats: ServerStats,
    /// Per-source accounting.
    pub ports: Vec<PortReport>,
    /// Wire-arrival → sink-delivery latency over all producer
    /// connections.
    pub latency: LatencySummary,
    /// Merged engine counters (includes `dropped_stale_heartbeats`).
    pub exec: ExecStats,
    /// Wire-level sentinel violations observed at socket boundaries.
    pub wire_sentinel_violations: u64,
    /// Idle-waiting fraction of the monitored IWP operator (the query's
    /// top union/join), if the plan has one.
    pub monitor_idle_fraction: Option<f64>,
}

/// Engine-side view of one planned source.
struct Port {
    handle: IngestHandle,
    stream: String,
    schema: Schema,
    /// Highest data timestamp ingested (micros); wire-level dedup mark.
    data_hw: Option<u64>,
    /// Highest fresh heartbeat asserted (micros), synthesized or wire.
    punct_hw: Option<u64>,
    closed: bool,
    producers: usize,
    /// Wall-clock instant of the last producer frame for this source.
    last_arrival: Option<Instant>,
    /// Network-idleness over the server's wall-clock timeline.
    idle: IdleTracker,
    is_idle: bool,
    ingested: u64,
    duplicates: u64,
    rejected: u64,
    synthesized: u64,
}

/// The engine and every piece of state its lock protects.
struct Engine {
    exec: ParallelExecutor,
    ports: Vec<Port>,
    by_name: HashMap<String, usize>,
    output_schema: Schema,
    monitor: Option<NodeId>,
    /// Server stream time: max data timestamp accepted (micros).
    max_ts: u64,
    /// High-water of the engine's virtual clock (micros).
    clock_us: u64,
    stats: ServerStats,
}

impl Engine {
    /// Advances the executor clock monotonically to `ts` micros.
    fn advance_clock(&mut self, ts: u64) -> Result<()> {
        if ts > self.clock_us {
            self.clock_us = ts;
            self.exec.advance_to(Timestamp::from_micros(ts))?;
        }
        Ok(())
    }

    fn run(&mut self) -> Result<()> {
        self.exec.run_until_quiescent(RUN_BUDGET).map(|_| ())
    }
}

/// Fan-out sink: the planned query delivers here, and every subscriber
/// gets a bounded copy of the stream.
#[derive(Clone)]
struct Broadcast(Arc<Mutex<BroadcastState>>);

struct BroadcastState {
    subs: Vec<Option<Sender<Tuple>>>,
    delivered: u64,
    overflows: u64,
}

impl Broadcast {
    fn new() -> Self {
        Broadcast(Arc::new(Mutex::new(BroadcastState {
            subs: Vec::new(),
            delivered: 0,
            overflows: 0,
        })))
    }

    fn subscribe(&self, cap: usize) -> (usize, Receiver<Tuple>) {
        let (tx, rx) = channel::bounded(cap);
        let mut st = self.0.lock().unwrap();
        let slot = st.subs.len();
        st.subs.push(Some(tx));
        (slot, rx)
    }

    fn unsubscribe(&self, slot: usize) {
        self.0.lock().unwrap().subs[slot] = None;
    }

    fn delivered(&self) -> u64 {
        self.0.lock().unwrap().delivered
    }

    fn overflows(&self) -> u64 {
        self.0.lock().unwrap().overflows
    }

    /// Pushes a final punctuation to every live subscriber and drops the
    /// senders, ending their streams.
    fn finish(&self) {
        let mut st = self.0.lock().unwrap();
        for slot in st.subs.iter_mut() {
            if let Some(tx) = slot.take() {
                // Best effort: an overflowing subscriber misses the final
                // mark but still sees end-of-stream via the disconnect.
                let _ = tx.try_send(Tuple::punctuation(Timestamp::MAX));
            }
        }
    }
}

impl SinkCollector for Broadcast {
    fn deliver(&mut self, tuple: Tuple, _now: Timestamp) {
        let mut st = self.0.lock().unwrap();
        st.delivered += 1;
        let mut overflowed = 0;
        for slot in st.subs.iter_mut() {
            if let Some(tx) = slot {
                match tx.try_send(tuple.clone()) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        // Bounded-buffer contract: drop the subscriber,
                        // never queue unbounded.
                        *slot = None;
                        overflowed += 1;
                    }
                    Err(TrySendError::Disconnected(_)) => *slot = None,
                }
            }
        }
        st.overflows += overflowed;
    }
}

/// State shared by every server thread.
struct Shared {
    cfg: ServerConfig,
    check: CheckMode,
    engine: Mutex<Engine>,
    broadcast: Broadcast,
    sentinel: Arc<SentinelStats>,
    shutdown: AtomicBool,
    /// Producer connections past handshake and not yet drained; shutdown
    /// waits for this to reach zero before the final source close.
    active_producers: AtomicU64,
    started: Instant,
    latency: Mutex<LatencyRecorder>,
}

impl Shared {
    /// Micros since server start, the wall timeline for idle tracking.
    fn now_us(&self) -> Timestamp {
        Timestamp::from_micros(self.started.elapsed().as_micros() as u64)
    }
}

/// A running `msq serve` instance.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Plans `cfg.program`, binds the listener and starts accepting.
    pub fn start(cfg: ServerConfig) -> Result<Server> {
        let check = cfg.check.unwrap_or_else(CheckMode::from_env);
        let broadcast = Broadcast::new();
        let planned = plan_program(&cfg.program, broadcast.clone())?;
        let mut pcfg = ParallelConfig::new(CostModel::free(), EtsPolicy::None, cfg.workers.max(1));
        pcfg.check = Some(check);
        let exec = ParallelExecutor::new(planned.graph, pcfg);
        if let Some(node) = planned.monitor {
            exec.monitor_idle(node)?;
        }
        let started = Instant::now();
        let mut ports = Vec::new();
        let mut by_name = HashMap::new();
        for s in &planned.sources {
            by_name.insert(s.stream.clone(), ports.len());
            ports.push(Port {
                handle: exec.ingest_handle(s.id),
                stream: s.stream.clone(),
                schema: s.schema.clone(),
                data_hw: None,
                punct_hw: None,
                closed: false,
                producers: 0,
                last_arrival: None,
                idle: IdleTracker::new(Timestamp::ZERO),
                is_idle: false,
                ingested: 0,
                duplicates: 0,
                rejected: 0,
                synthesized: 0,
            });
        }
        let engine = Engine {
            exec,
            ports,
            by_name,
            output_schema: planned.output_schema,
            monitor: planned.monitor,
            max_ts: 0,
            clock_us: 0,
            stats: ServerStats::default(),
        };
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| Error::runtime(format!("bind {}: {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::runtime(format!("local_addr: {e}")))?;
        let shared = Arc::new(Shared {
            cfg,
            check,
            engine: Mutex::new(engine),
            broadcast,
            sentinel: SentinelStats::shared(),
            shutdown: AtomicBool::new(false),
            active_producers: AtomicU64::new(0),
            started,
            latency: Mutex::new(LatencyRecorder::new()),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || accept_loop(listener, shared, conns))
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the aggregate counters.
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.shared.engine.lock().unwrap().stats.clone();
        stats.delivered = self.shared.broadcast.delivered();
        stats.subscriber_overflows = self.shared.broadcast.overflows();
        stats
    }

    /// Graceful shutdown: stop accepting, let producers drain their
    /// in-flight frames, close every open source so the final ETS
    /// (`Timestamp::MAX` punctuation) propagates, flush subscribers, and
    /// report.
    pub fn shutdown(mut self) -> Result<ServerReport> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Producers notice the flag at their next read-timeout tick,
        // drain whatever is already buffered on the socket, and retire.
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.shared.active_producers.load(Ordering::SeqCst) > 0 {
            if Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // Final drain: close still-open sources and run the engine dry.
        let report = {
            let mut eng = self.shared.engine.lock().unwrap();
            let now_us = self.shared.now_us();
            for i in 0..eng.ports.len() {
                if !eng.ports[i].closed {
                    eng.ports[i].handle.close()?;
                    eng.ports[i].closed = true;
                }
                eng.ports[i].idle.finish(now_us);
            }
            eng.run()?;
            eng.exec.finish_idle()?;
            let snapshot = eng.exec.snapshot()?;
            let clock = snapshot
                .component_clocks
                .iter()
                .copied()
                .max()
                .unwrap_or(Timestamp::ZERO);
            let monitor_idle_fraction = eng.monitor.and_then(|m| {
                snapshot
                    .idle
                    .iter()
                    .find(|(n, _)| *n == m)
                    .map(|(_, t)| t.idle_fraction(clock))
            });
            let ports = eng
                .ports
                .iter()
                .map(|p| PortReport {
                    stream: p.stream.clone(),
                    ingested: p.ingested,
                    duplicates: p.duplicates,
                    rejected: p.rejected,
                    synthesized: p.synthesized,
                    closed: p.closed,
                    idle: p.idle.summarize(now_us),
                })
                .collect();
            let mut stats = eng.stats.clone();
            stats.delivered = self.shared.broadcast.delivered();
            stats.subscriber_overflows = self.shared.broadcast.overflows();
            ServerReport {
                stats,
                ports,
                latency: self.shared.latency.lock().unwrap().summarize(),
                exec: snapshot.stats,
                wire_sentinel_violations: self.shared.sentinel.total(),
                monitor_idle_fraction,
            }
        };
        // End every subscriber stream (final punctuation, then EOF).
        self.shared.broadcast.finish();
        let handles = std::mem::take(&mut *self.conns.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        Ok(report)
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.engine.lock().unwrap().stats.connections += 1;
        let shared = Arc::clone(&shared);
        let h = std::thread::spawn(move || {
            // A connection failing is that connection's problem, not the
            // server's: errors were already reported to the peer.
            let _ = handle_conn(&shared, stream);
        });
        conns.lock().unwrap().push(h);
    }
}

/// Sends a terminal error frame; the connection closes right after.
fn send_error(stream: &mut TcpStream, code: ErrorCode, message: impl Into<String>) {
    let _ = write_frame(
        stream,
        &Frame::Error {
            code,
            message: message.into(),
        },
    );
}

fn handle_conn(shared: &Arc<Shared>, mut stream: TcpStream) -> Result<()> {
    stream
        .set_read_timeout(Some(shared.cfg.read_timeout))
        .map_err(|e| Error::runtime(format!("set_read_timeout: {e}")))?;
    stream
        .set_nodelay(true)
        .map_err(|e| Error::runtime(format!("set_nodelay: {e}")))?;
    let mut reader = FrameReader::new();
    // Handshake.
    let hello = {
        let deadline = Instant::now() + HANDSHAKE_DEADLINE;
        loop {
            if shared.shutdown.load(Ordering::SeqCst) || Instant::now() > deadline {
                let _ = write_frame(&mut stream, &Frame::Bye);
                return Ok(());
            }
            match reader.poll(&mut stream) {
                Ok(ReadOutcome::Frame(f)) => break f,
                Ok(ReadOutcome::Timeout) => continue,
                Ok(ReadOutcome::Eof) => return Ok(()),
                Err(e) => {
                    send_error(&mut stream, ErrorCode::Protocol, e.to_string());
                    return Err(e);
                }
            }
        }
    };
    let Frame::Hello {
        version,
        role,
        stream: stream_name,
        schema,
        resume_hint: _,
    } = hello
    else {
        send_error(
            &mut stream,
            ErrorCode::Protocol,
            "expected HELLO as the first frame",
        );
        return Ok(());
    };
    if version != PROTOCOL_VERSION {
        send_error(
            &mut stream,
            ErrorCode::Unsupported,
            format!("protocol version {version} unsupported; server speaks {PROTOCOL_VERSION}"),
        );
        return Ok(());
    }
    match role {
        Role::Producer => serve_producer(shared, stream, reader, stream_name, schema),
        Role::Subscriber => serve_subscriber(shared, stream),
    }
}

fn serve_producer(
    shared: &Arc<Shared>,
    mut stream: TcpStream,
    mut reader: FrameReader,
    stream_name: String,
    claimed_schema: Option<Schema>,
) -> Result<()> {
    // Negotiate: resolve the source and check the schema.
    let port_idx = {
        let mut eng = shared.engine.lock().unwrap();
        let Some(&idx) = eng.by_name.get(&stream_name) else {
            drop(eng);
            send_error(
                &mut stream,
                ErrorCode::Engine,
                format!("unknown stream `{stream_name}`"),
            );
            return Ok(());
        };
        if let Some(claimed) = &claimed_schema {
            if *claimed != eng.ports[idx].schema {
                let server_schema = eng.ports[idx].schema.clone();
                drop(eng);
                send_error(
                    &mut stream,
                    ErrorCode::Unsupported,
                    format!(
                        "schema mismatch on `{stream_name}`: client {claimed}, server {server_schema}"
                    ),
                );
                return Ok(());
            }
        }
        let now_us = shared.now_us();
        let port = &mut eng.ports[idx];
        port.producers += 1;
        if port.last_arrival.is_none() {
            // The silence clock starts when a producer first attaches.
            port.last_arrival = Some(Instant::now());
        }
        // A (re)connecting producer is activity: the source is no longer
        // network-starved.
        port.idle.set_idle(now_us, false);
        port.is_idle = false;
        write_frame(
            &mut stream,
            &Frame::HelloAck {
                version: PROTOCOL_VERSION,
                schema: port.schema.clone(),
                resume_ts: port.data_hw.unwrap_or(0),
            },
        )?;
        idx
    };
    shared.active_producers.fetch_add(1, Ordering::SeqCst);
    let sentinel = OrderSentinel::new(
        shared.check,
        format!("net:{stream_name}"),
        Arc::clone(&shared.sentinel),
    );
    let mut latency = LatencyRecorder::new();
    let res = producer_loop(
        shared,
        &mut stream,
        &mut reader,
        port_idx,
        &sentinel,
        &mut latency,
    );
    {
        let now_us = shared.now_us();
        let mut eng = shared.engine.lock().unwrap();
        let port = &mut eng.ports[port_idx];
        port.producers -= 1;
        if port.producers == 0 && !port.is_idle && !port.closed {
            // No producer attached: the source is network-starved from
            // this instant (a reconnect clears it).
            port.idle.set_idle(now_us, true);
            port.is_idle = true;
        }
    }
    shared.latency.lock().unwrap().merge(&latency);
    shared.active_producers.fetch_sub(1, Ordering::SeqCst);
    res
}

fn producer_loop(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    reader: &mut FrameReader,
    port_idx: usize,
    sentinel: &OrderSentinel,
    latency: &mut LatencyRecorder,
) -> Result<()> {
    let mut last_seq: Option<u64> = None;
    let mut draining = false;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            // Drain mode: keep consuming frames already in flight, but
            // exit at the first quiet poll.
            draining = true;
        }
        let frame = match reader.poll(stream) {
            Ok(ReadOutcome::Frame(f)) => f,
            Ok(ReadOutcome::Eof) => return Ok(()),
            Ok(ReadOutcome::Timeout) => {
                if draining {
                    let _ = write_frame(stream, &Frame::Bye);
                    return Ok(());
                }
                maybe_synthesize_heartbeat(shared, port_idx)?;
                continue;
            }
            Err(e) => {
                send_error(stream, ErrorCode::Protocol, e.to_string());
                return Err(e);
            }
        };
        let arrival = Instant::now();
        let seq = match &frame {
            Frame::Data { seq, .. } | Frame::Heartbeat { seq, .. } | Frame::Close { seq } => *seq,
            Frame::Bye => return Ok(()),
            other => {
                send_error(
                    stream,
                    ErrorCode::Protocol,
                    format!("unexpected frame {other:?} from a producer"),
                );
                return Ok(());
            }
        };
        // Frame-order validation at the socket boundary: within one
        // connection the sequence must strictly increase.
        if last_seq.is_some_and(|ls| seq <= ls) {
            send_error(
                stream,
                ErrorCode::Protocol,
                format!(
                    "frame order violation: seq {seq} after {} on the same connection",
                    last_seq.unwrap_or(0)
                ),
            );
            return Ok(());
        }
        last_seq = Some(seq);
        let ack = {
            let now_us = shared.now_us();
            let mut eng = shared.engine.lock().unwrap();
            eng.stats.frames_in += 1;
            {
                let port = &mut eng.ports[port_idx];
                port.last_arrival = Some(arrival);
                if port.is_idle {
                    port.idle.set_idle(now_us, false);
                    port.is_idle = false;
                }
            }
            let delivered_before = shared.broadcast.delivered();
            match apply_frame(&mut eng, port_idx, frame, sentinel) {
                Ok(()) => {}
                Err(reject) => {
                    drop(eng);
                    send_error(stream, reject.code, reject.error.to_string());
                    return if reject.fatal {
                        Err(reject.error)
                    } else {
                        Ok(())
                    };
                }
            }
            let delivered_after = shared.broadcast.delivered();
            let elapsed = TimeDelta::from_micros(arrival.elapsed().as_micros() as u64);
            for _ in delivered_before..delivered_after {
                latency.record(elapsed);
            }
            Frame::Ack {
                seq,
                high_water: eng.ports[port_idx].data_hw.unwrap_or(0),
            }
        };
        write_frame(stream, &ack)?;
    }
}

/// A frame the engine refused: what to tell the peer, and whether the
/// condition is an actual invariant failure (worth propagating) or just a
/// per-connection rejection.
struct Reject {
    code: ErrorCode,
    error: Error,
    fatal: bool,
}

fn reject(code: ErrorCode, error: Error) -> Reject {
    Reject {
        code,
        error,
        fatal: false,
    }
}

/// Applies one producer frame under the engine lock.
fn apply_frame(
    eng: &mut Engine,
    port_idx: usize,
    frame: Frame,
    sentinel: &OrderSentinel,
) -> std::result::Result<(), Reject> {
    match frame {
        Frame::Data { tuple, .. } => {
            if !tuple.is_data() {
                // Wire-level mirror of `Executor::ingest`'s contract.
                return Err(reject(
                    ErrorCode::Protocol,
                    Error::runtime(format!(
                        "DATA frame on `{}` carries punctuation; use a HEARTBEAT frame",
                        eng.ports[port_idx].stream
                    )),
                ));
            }
            if eng.ports[port_idx].closed {
                return Err(reject(
                    ErrorCode::Engine,
                    Error::runtime(format!("source `{}` is closed", eng.ports[port_idx].stream)),
                ));
            }
            let ts = tuple.ts.as_micros();
            if eng.ports[port_idx].data_hw.is_some_and(|hw| ts <= hw) {
                // Retransmitted duplicate (producer timestamps are
                // strictly increasing): ack without ingesting.
                eng.ports[port_idx].duplicates += 1;
                eng.stats.duplicates_dropped += 1;
                return Ok(());
            }
            if let Some(phw) = eng.ports[port_idx].punct_hw {
                if ts < phw {
                    // High-water dominance at the socket boundary: this
                    // data contradicts a heartbeat already asserted
                    // (possibly synthesized while the producer was
                    // silent). Count + drop; fatal under strict.
                    let port = &mut eng.ports[port_idx];
                    match sentinel.check_punct_dominance(
                        &format!("wire:{}", port.stream),
                        Timestamp::from_micros(ts),
                        Timestamp::from_micros(phw),
                    ) {
                        Ok(()) => {
                            port.rejected += 1;
                            eng.stats.rejected_tuples += 1;
                            return Ok(());
                        }
                        Err(e) => {
                            return Err(Reject {
                                code: ErrorCode::Invariant,
                                error: e,
                                fatal: true,
                            });
                        }
                    }
                }
            }
            eng.advance_clock(ts)
                .map_err(|e| reject(ErrorCode::Engine, e))?;
            eng.ports[port_idx]
                .handle
                .ingest(tuple)
                .map_err(|e| reject(ErrorCode::Engine, e))?;
            eng.run().map_err(|e| reject(ErrorCode::Engine, e))?;
            eng.ports[port_idx].data_hw = Some(ts);
            eng.ports[port_idx].ingested += 1;
            eng.max_ts = eng.max_ts.max(ts);
            eng.stats.tuples_ingested += 1;
            Ok(())
        }
        Frame::Heartbeat { ts, .. } => {
            if eng.ports[port_idx].closed {
                return Err(reject(
                    ErrorCode::Engine,
                    Error::runtime(format!("source `{}` is closed", eng.ports[port_idx].stream)),
                ));
            }
            let us = ts.as_micros();
            eng.advance_clock(us)
                .map_err(|e| reject(ErrorCode::Engine, e))?;
            eng.ports[port_idx]
                .handle
                .heartbeat(ts)
                .map_err(|e| reject(ErrorCode::Engine, e))?;
            eng.run().map_err(|e| reject(ErrorCode::Engine, e))?;
            let port = &mut eng.ports[port_idx];
            let stale =
                port.data_hw.is_some_and(|hw| us < hw) || port.punct_hw.is_some_and(|p| us <= p);
            if !stale {
                port.punct_hw = Some(us);
            }
            eng.stats.heartbeats_in += 1;
            Ok(())
        }
        Frame::Close { .. } => {
            if !eng.ports[port_idx].closed {
                eng.ports[port_idx]
                    .handle
                    .close()
                    .map_err(|e| reject(ErrorCode::Engine, e))?;
                eng.run().map_err(|e| reject(ErrorCode::Engine, e))?;
                eng.ports[port_idx].closed = true;
            }
            Ok(())
        }
        _ => unreachable!("producer_loop forwards only seq-bearing frames"),
    }
}

/// On a quiet poll: if the producer has been silent past the idle
/// timeout, mark the source network-starved and synthesize a heartbeat at
/// server stream time — the on-demand ETS that unblocks IWP operators
/// starved by this connection's silence.
fn maybe_synthesize_heartbeat(shared: &Arc<Shared>, port_idx: usize) -> Result<()> {
    let Some(idle_timeout) = shared.cfg.idle_timeout else {
        return Ok(());
    };
    let now_us = shared.now_us();
    let mut eng = shared.engine.lock().unwrap();
    let port = &eng.ports[port_idx];
    if port.closed {
        return Ok(());
    }
    let silent_for = port
        .last_arrival
        .map(|t| t.elapsed())
        .unwrap_or(Duration::ZERO);
    if silent_for < idle_timeout {
        return Ok(());
    }
    if !eng.ports[port_idx].is_idle {
        eng.ports[port_idx].idle.set_idle(now_us, true);
        eng.ports[port_idx].is_idle = true;
    }
    // Synthesize at stream time, but only if that actually asserts
    // something new for this source.
    let target = eng.max_ts;
    let port = &eng.ports[port_idx];
    let fresh = target > 0
        && port.data_hw.is_none_or(|hw| target >= hw)
        && port.punct_hw.is_none_or(|p| target > p);
    if !fresh {
        return Ok(());
    }
    eng.advance_clock(target)?;
    eng.ports[port_idx]
        .handle
        .heartbeat(Timestamp::from_micros(target))?;
    eng.run()?;
    eng.ports[port_idx].punct_hw = Some(target);
    eng.ports[port_idx].synthesized += 1;
    eng.stats.synthesized_heartbeats += 1;
    Ok(())
}

fn serve_subscriber(shared: &Arc<Shared>, mut stream: TcpStream) -> Result<()> {
    let output_schema = shared.engine.lock().unwrap().output_schema.clone();
    let (slot, rx) = shared.broadcast.subscribe(shared.cfg.subscriber_queue);
    write_frame(
        &mut stream,
        &Frame::HelloAck {
            version: PROTOCOL_VERSION,
            schema: output_schema,
            resume_ts: 0,
        },
    )?;
    let res = loop {
        match rx.recv_timeout(shared.cfg.read_timeout) {
            Ok(tuple) => {
                if let Err(e) = write_frame(&mut stream, &Frame::Output { tuple }) {
                    // Subscriber went away; not a server error.
                    break Err(e);
                }
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                // Either graceful end-of-stream (shutdown dropped the
                // sender after the final punctuation) or this subscriber
                // overflowed its bounded queue and was cut off.
                if shared.shutdown.load(Ordering::SeqCst) {
                    let _ = write_frame(&mut stream, &Frame::Bye);
                } else {
                    send_error(
                        &mut stream,
                        ErrorCode::Overflow,
                        format!(
                            "subscriber overflowed its bounded queue ({} tuples)",
                            shared.cfg.subscriber_queue
                        ),
                    );
                }
                break Ok(());
            }
        }
    };
    shared.broadcast.unsubscribe(slot);
    match res {
        Ok(()) => Ok(()),
        // A write failure to a departed subscriber is expected churn.
        Err(_) => Ok(()),
    }
}
