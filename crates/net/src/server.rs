//! The `msq serve` engine host: a TCP server that runs one planned query
//! and exchanges [`Frame`]s with many concurrent clients.
//!
//! ## Threading model
//!
//! One accept thread, one thread per connection, and the
//! [`ParallelExecutor`]'s own component workers. All engine access is
//! serialized through a single [`Mutex`]: a producer connection locks the
//! engine for its whole `{advance clock, ingest, run-to-quiescence}`
//! critical section, so any error the fire-and-forget parallel channel
//! stashes surfaces at *this* connection's barrier and is attributed (as
//! an [`Frame::Error`]) to the connection that caused it. Sink deliveries
//! emitted during the critical section are likewise attributable, which
//! is what makes the per-connection wire-arrival → sink-delivery
//! [`LatencyRecorder`] meaningful.
//!
//! ## Backpressure and feedback punctuation
//!
//! Producers are processed synchronously: a frame is acked only after the
//! engine has fully absorbed it, so a producer's unacked window (client
//! side, [`crate::client::StreamClient`]) is the *only* buffering between
//! the socket and the engine — the server never queues unbounded input.
//! On top of that, the server translates queue pressure into
//! [`Frame::Feedback`] punctuation flowing *against* the data direction:
//! when the engine's occupancy (or the deepest subscriber queue) crosses
//! the configured watermarks, every producer connection is told a smaller
//! send window, and the producer client narrows its pipeline accordingly.
//!
//! Subscribers get a bounded queue each. Under the default
//! [`OverflowPolicy::Shed`], a subscriber that stalls past its queue
//! capacity has its **oldest data tuples** shed — punctuation is never
//! shed, only coalesced — and the drop count travels to the subscriber as
//! cumulative [`Frame::Feedback`] notices, so loss is always declared,
//! never silent. Under [`OverflowPolicy::Disconnect`], the subscriber is
//! cut off instead — but only after a drop-count notice, the final
//! `Timestamp::MAX` punctuation and a structured
//! [`ErrorCode::Overflow`] error, never by a bare socket close.
//!
//! ## Idle connections and on-demand heartbeats
//!
//! The paper's on-demand ETS story is triggered here by *network
//! silence*: when a producer connection stays quiet past
//! [`ServerConfig::idle_timeout`], the server synthesizes a source
//! heartbeat at the server's stream time (the maximum data timestamp
//! accepted so far), unblocking IWP operators starved by the silent
//! source. The wire contract making that sound: a producer silent past
//! the idle timeout forfeits timestamps at or below the synthesized mark
//! — later data under the mark is dropped at the socket boundary
//! (counted, and fatal under `MILLSTREAM_CHECK=strict`).

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use millstream_buffer::{CheckMode, OrderSentinel, PressureLevel, SentinelStats, Watermarks};
use millstream_exec::{
    CostModel, EtsPolicy, ExecStats, FeedbackConfig, IngestHandle, NodeId, ParallelConfig,
    ParallelExecutor,
};
use millstream_metrics::{IdleSummary, IdleTracker, LatencyRecorder, LatencySummary};
use millstream_ops::SinkCollector;
use millstream_query::plan_program;
use millstream_types::{Error, Result, Schema, TimeDelta, Timestamp, Tuple};

use crate::frame::{
    write_frame, ErrorCode, Frame, FrameReader, ReadOutcome, Role, PROTOCOL_VERSION,
};

/// Step budget per quiescence run; effectively unbounded for test-sized
/// streams while still catching a livelocked graph.
const RUN_BUDGET: u64 = 100_000_000;

/// How long connection handshakes may take before the connection is
/// dropped as dead.
const HANDSHAKE_DEADLINE: Duration = Duration::from_secs(5);

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (see [`Server::addr`]).
    pub addr: String,
    /// The query program (DDL + one query) the server hosts.
    pub program: String,
    /// Worker threads for the parallel executor.
    pub workers: usize,
    /// Network silence on a producer connection after which the server
    /// synthesizes a source heartbeat at stream time. `None` disables
    /// synthesis.
    pub idle_timeout: Option<Duration>,
    /// Bounded per-subscriber queue; [`ServerConfig::overflow`] decides
    /// what happens when a subscriber stalls past it.
    pub subscriber_queue: usize,
    /// Socket read timeout — the cadence at which connections notice
    /// shutdown and idle deadlines.
    pub read_timeout: Duration,
    /// Invariant-checking override; `None` inherits `MILLSTREAM_CHECK`.
    pub check: Option<CheckMode>,
    /// Engine-side feedback punctuation. `Some` (the default) has every
    /// component executor publish queue pressure, which the server
    /// translates into producer-side pacing ([`Frame::Feedback`] frames);
    /// `None` disables the feedback path entirely.
    pub feedback: Option<FeedbackConfig>,
    /// What to do with a subscriber that overflows its bounded queue.
    pub overflow: OverflowPolicy,
}

/// How the server treats a subscriber that stalls past its bounded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Shed the subscriber's **oldest data tuples** to make room, keep the
    /// connection, and declare every drop via cumulative
    /// [`Frame::Feedback`] notices. Punctuation is never shed, only
    /// coalesced, so the subscriber's order/progress contract holds.
    #[default]
    Shed,
    /// Disconnect the subscriber — after a drop-count notice, the final
    /// `Timestamp::MAX` punctuation and a structured
    /// [`ErrorCode::Overflow`] error frame.
    Disconnect,
}

impl ServerConfig {
    /// A loopback config for `program` with test-friendly defaults.
    pub fn new(program: impl Into<String>) -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            program: program.into(),
            workers: 2,
            idle_timeout: None,
            subscriber_queue: 1024,
            read_timeout: Duration::from_millis(25),
            check: None,
            feedback: Some(FeedbackConfig::default()),
            overflow: OverflowPolicy::default(),
        }
    }
}

/// Aggregate counters, readable mid-run via [`Server::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted (any role, including failed handshakes).
    pub connections: u64,
    /// Frames received from producers after handshake.
    pub frames_in: u64,
    /// Data tuples ingested into the engine.
    pub tuples_ingested: u64,
    /// Explicit wire heartbeats forwarded to the engine.
    pub heartbeats_in: u64,
    /// Retransmitted duplicates dropped at the socket boundary
    /// (acked, never ingested).
    pub duplicates_dropped: u64,
    /// Data tuples dropped for violating a synthesized heartbeat's
    /// high-water mark (non-strict modes; strict kills the connection).
    pub rejected_tuples: u64,
    /// Heartbeats synthesized by the idle-timeout machinery.
    pub synthesized_heartbeats: u64,
    /// Tuples delivered by the sink (fanned out to subscribers).
    pub delivered: u64,
    /// Subscribers that overflowed their bounded queue (disconnected
    /// under [`OverflowPolicy::Disconnect`]; kept under `Shed`).
    pub subscriber_overflows: u64,
    /// Data tuples shed from subscriber queues under
    /// [`OverflowPolicy::Shed`] — every one declared to its subscriber
    /// via a [`Frame::Feedback`] drop notice.
    pub sub_shed: u64,
    /// Feedback pacing frames sent to producer connections.
    pub feedback_frames: u64,
}

/// Per-source accounting in the final [`ServerReport`].
#[derive(Debug, Clone)]
pub struct PortReport {
    /// Stream name from the program's DDL.
    pub stream: String,
    /// Data tuples ingested.
    pub ingested: u64,
    /// Duplicates dropped at the boundary.
    pub duplicates: u64,
    /// Tuples rejected below a synthesized high-water mark.
    pub rejected: u64,
    /// Heartbeats synthesized while the source was network-starved.
    pub synthesized: u64,
    /// Whether the source was closed (by a client or at shutdown).
    pub closed: bool,
    /// Network-idleness of the source over the server's wall-clock run.
    pub idle: IdleSummary,
}

/// Everything [`Server::shutdown`] hands back after the final drain.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Final aggregate counters.
    pub stats: ServerStats,
    /// Per-source accounting.
    pub ports: Vec<PortReport>,
    /// Wire-arrival → sink-delivery latency over all producer
    /// connections.
    pub latency: LatencySummary,
    /// Merged engine counters (includes `dropped_stale_heartbeats`).
    pub exec: ExecStats,
    /// Wire-level sentinel violations observed at socket boundaries.
    pub wire_sentinel_violations: u64,
    /// Deepest any subscriber queue ever got — with feedback shedding on,
    /// bounded by [`ServerConfig::subscriber_queue`] by construction.
    pub sub_peak_queue: usize,
    /// Idle-waiting fraction of the monitored IWP operator (the query's
    /// top union/join), if the plan has one.
    pub monitor_idle_fraction: Option<f64>,
}

/// Engine-side view of one planned source.
struct Port {
    handle: IngestHandle,
    stream: String,
    schema: Schema,
    /// Highest data timestamp ingested (micros); wire-level dedup mark.
    data_hw: Option<u64>,
    /// Highest fresh heartbeat asserted (micros), synthesized or wire.
    punct_hw: Option<u64>,
    closed: bool,
    producers: usize,
    /// Wall-clock instant of the last producer frame for this source.
    last_arrival: Option<Instant>,
    /// Network-idleness over the server's wall-clock timeline.
    idle: IdleTracker,
    is_idle: bool,
    ingested: u64,
    duplicates: u64,
    rejected: u64,
    synthesized: u64,
}

/// The engine and every piece of state its lock protects.
struct Engine {
    exec: ParallelExecutor,
    ports: Vec<Port>,
    by_name: HashMap<String, usize>,
    output_schema: Schema,
    monitor: Option<NodeId>,
    /// Server stream time: max data timestamp accepted (micros).
    max_ts: u64,
    /// High-water of the engine's virtual clock (micros).
    clock_us: u64,
    stats: ServerStats,
}

impl Engine {
    /// Advances the executor clock monotonically to `ts` micros.
    fn advance_clock(&mut self, ts: u64) -> Result<()> {
        if ts > self.clock_us {
            self.clock_us = ts;
            self.exec.advance_to(Timestamp::from_micros(ts))?;
        }
        Ok(())
    }

    fn run(&mut self) -> Result<()> {
        self.exec.run_until_quiescent(RUN_BUDGET).map(|_| ())
    }
}

/// One subscriber's bounded output queue, shared between the delivering
/// sink (under the broadcast lock) and the subscriber's writer thread.
struct SubQueue {
    state: Mutex<SubState>,
    cv: Condvar,
    cap: usize,
}

struct SubState {
    buf: VecDeque<Tuple>,
    /// Cumulative data tuples shed for this subscriber — the figure its
    /// [`Frame::Feedback`] drop notices carry.
    dropped: u64,
    /// Deepest the queue ever got.
    peak: usize,
    /// [`OverflowPolicy::Disconnect`] tripped: no further deliveries; the
    /// writer drains what is buffered and closes with the full
    /// notice/mark/error sequence.
    overflowed: bool,
    /// End of stream: the final punctuation (if any) is already queued.
    finished: bool,
}

impl SubQueue {
    /// Makes room for one more tuple on a full queue without ever losing
    /// a punctuation mark: the oldest **data** tuple is shed (counted);
    /// if the queue is all punctuation, the oldest mark is coalesced away
    /// (dominated by every newer mark behind it — semantically lossless).
    /// Returns how many data tuples were shed (0 or 1).
    fn make_room(st: &mut SubState) -> u64 {
        match st.buf.iter().position(Tuple::is_data) {
            Some(pos) => {
                st.buf.remove(pos);
                st.dropped += 1;
                1
            }
            None => {
                st.buf.pop_front();
                0
            }
        }
    }
}

/// Fan-out sink: the planned query delivers here, and every subscriber
/// gets a bounded copy of the stream.
#[derive(Clone)]
struct Broadcast {
    inner: Arc<Mutex<BroadcastState>>,
    policy: OverflowPolicy,
    /// Pressure classification for subscriber queue depth, sized to
    /// [`ServerConfig::subscriber_queue`].
    marks: Watermarks,
}

struct BroadcastState {
    subs: Vec<Option<Arc<SubQueue>>>,
    delivered: u64,
    overflows: u64,
    shed: u64,
    peak: usize,
}

impl Broadcast {
    fn new(policy: OverflowPolicy, queue_cap: usize) -> Self {
        Broadcast {
            inner: Arc::new(Mutex::new(BroadcastState {
                subs: Vec::new(),
                delivered: 0,
                overflows: 0,
                shed: 0,
                peak: 0,
            })),
            policy,
            marks: Watermarks::new(queue_cap / 2, queue_cap.saturating_sub(queue_cap / 8)),
        }
    }

    fn subscribe(&self, cap: usize) -> (usize, Arc<SubQueue>) {
        let q = Arc::new(SubQueue {
            state: Mutex::new(SubState {
                buf: VecDeque::new(),
                dropped: 0,
                peak: 0,
                overflowed: false,
                finished: false,
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
        });
        let mut st = self.inner.lock().unwrap();
        let slot = st.subs.len();
        st.subs.push(Some(Arc::clone(&q)));
        (slot, q)
    }

    fn unsubscribe(&self, slot: usize) {
        let mut st = self.inner.lock().unwrap();
        if let Some(q) = st.subs[slot].take() {
            let sub = q.state.lock().unwrap();
            st.peak = st.peak.max(sub.peak);
        }
    }

    fn delivered(&self) -> u64 {
        self.inner.lock().unwrap().delivered
    }

    fn overflows(&self) -> u64 {
        self.inner.lock().unwrap().overflows
    }

    fn shed_total(&self) -> u64 {
        self.inner.lock().unwrap().shed
    }

    /// Deepest any subscriber queue ever got (departed ones included).
    fn peak(&self) -> usize {
        let st = self.inner.lock().unwrap();
        let mut peak = st.peak;
        for q in st.subs.iter().flatten() {
            peak = peak.max(q.state.lock().unwrap().peak);
        }
        peak
    }

    /// Current pressure from the deepest live subscriber queue — one of
    /// the two inputs to producer pacing (the other is engine occupancy).
    fn pressure(&self) -> PressureLevel {
        let st = self.inner.lock().unwrap();
        let mut level = PressureLevel::Normal;
        for q in st.subs.iter().flatten() {
            level = level.max(self.marks.classify(q.state.lock().unwrap().buf.len()));
        }
        level
    }

    /// Queues the final `Timestamp::MAX` punctuation to **every** live
    /// subscriber — shedding a data tuple for room if it must (counted
    /// like any other shed) — and marks their streams finished. Even an
    /// overflowed subscriber gets the final mark: its writer drains the
    /// buffer before closing.
    fn finish(&self) {
        let mut st = self.inner.lock().unwrap();
        let mut shed = 0;
        for q in st.subs.iter().flatten() {
            let mut sub = q.state.lock().unwrap();
            // An overflowed (Disconnect-policy) subscriber synthesizes
            // its own final mark in its close sequence; queueing another
            // here would only duplicate it.
            if !sub.finished && !sub.overflowed {
                if sub.buf.len() >= q.cap {
                    shed += SubQueue::make_room(&mut sub);
                }
                sub.buf.push_back(Tuple::punctuation(Timestamp::MAX));
                sub.peak = sub.peak.max(sub.buf.len());
            }
            sub.finished = true;
            q.cv.notify_one();
        }
        st.shed += shed;
    }
}

impl SinkCollector for Broadcast {
    fn deliver(&mut self, tuple: Tuple, _now: Timestamp) {
        let mut st = self.inner.lock().unwrap();
        st.delivered += 1;
        let mut overflows = 0;
        let mut shed = 0;
        for q in st.subs.iter().flatten() {
            let mut sub = q.state.lock().unwrap();
            if sub.finished {
                continue;
            }
            if sub.overflowed {
                // Disconnect policy already tripped: the writer is still
                // draining the prefix, so count what it will never see —
                // it freezes this ledger (sets `finished`) the moment it
                // reads the count for its final drop notice.
                if tuple.is_data() {
                    sub.dropped += 1;
                }
                continue;
            }
            if sub.buf.len() >= q.cap {
                match self.policy {
                    OverflowPolicy::Shed => shed += SubQueue::make_room(&mut sub),
                    OverflowPolicy::Disconnect => {
                        sub.overflowed = true;
                        overflows += 1;
                        if tuple.is_data() {
                            sub.dropped += 1;
                        }
                        q.cv.notify_one();
                        continue;
                    }
                }
            }
            sub.buf.push_back(tuple.clone());
            sub.peak = sub.peak.max(sub.buf.len());
            q.cv.notify_one();
        }
        st.overflows += overflows;
        st.shed += shed;
    }
}

/// State shared by every server thread.
struct Shared {
    cfg: ServerConfig,
    check: CheckMode,
    engine: Mutex<Engine>,
    broadcast: Broadcast,
    sentinel: Arc<SentinelStats>,
    shutdown: AtomicBool,
    /// Producer connections past handshake and not yet drained; shutdown
    /// waits for this to reach zero before the final source close.
    active_producers: AtomicU64,
    started: Instant,
    latency: Mutex<LatencyRecorder>,
}

impl Shared {
    /// Micros since server start, the wall timeline for idle tracking.
    fn now_us(&self) -> Timestamp {
        Timestamp::from_micros(self.started.elapsed().as_micros() as u64)
    }
}

/// A running `msq serve` instance.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Plans `cfg.program`, binds the listener and starts accepting.
    pub fn start(cfg: ServerConfig) -> Result<Server> {
        let check = cfg.check.unwrap_or_else(CheckMode::from_env);
        let broadcast = Broadcast::new(cfg.overflow, cfg.subscriber_queue);
        let planned = plan_program(&cfg.program, broadcast.clone())?;
        let mut pcfg = ParallelConfig::new(CostModel::free(), EtsPolicy::None, cfg.workers.max(1));
        pcfg.check = Some(check);
        pcfg.feedback = cfg.feedback;
        let exec = ParallelExecutor::new(planned.graph, pcfg);
        if let Some(node) = planned.monitor {
            exec.monitor_idle(node)?;
        }
        let started = Instant::now();
        let mut ports = Vec::new();
        let mut by_name = HashMap::new();
        for s in &planned.sources {
            by_name.insert(s.stream.clone(), ports.len());
            ports.push(Port {
                handle: exec.ingest_handle(s.id),
                stream: s.stream.clone(),
                schema: s.schema.clone(),
                data_hw: None,
                punct_hw: None,
                closed: false,
                producers: 0,
                last_arrival: None,
                idle: IdleTracker::new(Timestamp::ZERO),
                is_idle: false,
                ingested: 0,
                duplicates: 0,
                rejected: 0,
                synthesized: 0,
            });
        }
        let engine = Engine {
            exec,
            ports,
            by_name,
            output_schema: planned.output_schema,
            monitor: planned.monitor,
            max_ts: 0,
            clock_us: 0,
            stats: ServerStats::default(),
        };
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| Error::runtime(format!("bind {}: {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::runtime(format!("local_addr: {e}")))?;
        let shared = Arc::new(Shared {
            cfg,
            check,
            engine: Mutex::new(engine),
            broadcast,
            sentinel: SentinelStats::shared(),
            shutdown: AtomicBool::new(false),
            active_producers: AtomicU64::new(0),
            started,
            latency: Mutex::new(LatencyRecorder::new()),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || accept_loop(listener, shared, conns))
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the aggregate counters.
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.shared.engine.lock().unwrap().stats.clone();
        stats.delivered = self.shared.broadcast.delivered();
        stats.subscriber_overflows = self.shared.broadcast.overflows();
        stats.sub_shed = self.shared.broadcast.shed_total();
        stats
    }

    /// Graceful shutdown: stop accepting, let producers drain their
    /// in-flight frames, close every open source so the final ETS
    /// (`Timestamp::MAX` punctuation) propagates, flush subscribers, and
    /// report.
    pub fn shutdown(mut self) -> Result<ServerReport> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Producers notice the flag at their next read-timeout tick,
        // drain whatever is already buffered on the socket, and retire.
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.shared.active_producers.load(Ordering::SeqCst) > 0 {
            if Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // Final drain: close still-open sources and run the engine dry.
        let report = {
            let mut eng = self.shared.engine.lock().unwrap();
            let now_us = self.shared.now_us();
            for i in 0..eng.ports.len() {
                if !eng.ports[i].closed {
                    eng.ports[i].handle.close()?;
                    eng.ports[i].closed = true;
                }
                eng.ports[i].idle.finish(now_us);
            }
            eng.run()?;
            eng.exec.finish_idle()?;
            let snapshot = eng.exec.snapshot()?;
            let clock = snapshot
                .component_clocks
                .iter()
                .copied()
                .max()
                .unwrap_or(Timestamp::ZERO);
            let monitor_idle_fraction = eng.monitor.and_then(|m| {
                snapshot
                    .idle
                    .iter()
                    .find(|(n, _)| *n == m)
                    .map(|(_, t)| t.idle_fraction(clock))
            });
            let ports = eng
                .ports
                .iter()
                .map(|p| PortReport {
                    stream: p.stream.clone(),
                    ingested: p.ingested,
                    duplicates: p.duplicates,
                    rejected: p.rejected,
                    synthesized: p.synthesized,
                    closed: p.closed,
                    idle: p.idle.summarize(now_us),
                })
                .collect();
            (
                eng.stats.clone(),
                ports,
                snapshot.stats,
                monitor_idle_fraction,
            )
        };
        // End every subscriber stream (final punctuation, then EOF) —
        // *before* assembling the report, so the shed/peak totals include
        // anything the final mark had to displace.
        self.shared.broadcast.finish();
        let handles = std::mem::take(&mut *self.conns.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        let (mut stats, ports, exec, monitor_idle_fraction) = report;
        stats.delivered = self.shared.broadcast.delivered();
        stats.subscriber_overflows = self.shared.broadcast.overflows();
        stats.sub_shed = self.shared.broadcast.shed_total();
        Ok(ServerReport {
            stats,
            ports,
            latency: self.shared.latency.lock().unwrap().summarize(),
            exec,
            wire_sentinel_violations: self.shared.sentinel.total(),
            sub_peak_queue: self.shared.broadcast.peak(),
            monitor_idle_fraction,
        })
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.engine.lock().unwrap().stats.connections += 1;
        let shared = Arc::clone(&shared);
        let h = std::thread::spawn(move || {
            // A connection failing is that connection's problem, not the
            // server's: errors were already reported to the peer.
            let _ = handle_conn(&shared, stream);
        });
        conns.lock().unwrap().push(h);
    }
}

/// Sends a terminal error frame; the connection closes right after.
fn send_error(stream: &mut TcpStream, code: ErrorCode, message: impl Into<String>) {
    let _ = write_frame(
        stream,
        &Frame::Error {
            code,
            message: message.into(),
        },
    );
}

fn handle_conn(shared: &Arc<Shared>, mut stream: TcpStream) -> Result<()> {
    stream
        .set_read_timeout(Some(shared.cfg.read_timeout))
        .map_err(|e| Error::runtime(format!("set_read_timeout: {e}")))?;
    stream
        .set_nodelay(true)
        .map_err(|e| Error::runtime(format!("set_nodelay: {e}")))?;
    let mut reader = FrameReader::new();
    // Handshake.
    let hello = {
        let deadline = Instant::now() + HANDSHAKE_DEADLINE;
        loop {
            if shared.shutdown.load(Ordering::SeqCst) || Instant::now() > deadline {
                let _ = write_frame(&mut stream, &Frame::Bye);
                return Ok(());
            }
            match reader.poll(&mut stream) {
                Ok(ReadOutcome::Frame(f)) => break f,
                Ok(ReadOutcome::Timeout) => continue,
                Ok(ReadOutcome::Eof) => return Ok(()),
                Err(e) => {
                    send_error(&mut stream, ErrorCode::Protocol, e.to_string());
                    return Err(e);
                }
            }
        }
    };
    let Frame::Hello {
        version,
        role,
        stream: stream_name,
        schema,
        resume_hint: _,
    } = hello
    else {
        send_error(
            &mut stream,
            ErrorCode::Protocol,
            "expected HELLO as the first frame",
        );
        return Ok(());
    };
    if version != PROTOCOL_VERSION {
        send_error(
            &mut stream,
            ErrorCode::Unsupported,
            format!("protocol version {version} unsupported; server speaks {PROTOCOL_VERSION}"),
        );
        return Ok(());
    }
    match role {
        Role::Producer => serve_producer(shared, stream, reader, stream_name, schema),
        Role::Subscriber => serve_subscriber(shared, stream),
    }
}

fn serve_producer(
    shared: &Arc<Shared>,
    mut stream: TcpStream,
    mut reader: FrameReader,
    stream_name: String,
    claimed_schema: Option<Schema>,
) -> Result<()> {
    // Negotiate: resolve the source and check the schema.
    let port_idx = {
        let mut eng = shared.engine.lock().unwrap();
        let Some(&idx) = eng.by_name.get(&stream_name) else {
            drop(eng);
            send_error(
                &mut stream,
                ErrorCode::Engine,
                format!("unknown stream `{stream_name}`"),
            );
            return Ok(());
        };
        if let Some(claimed) = &claimed_schema {
            if *claimed != eng.ports[idx].schema {
                let server_schema = eng.ports[idx].schema.clone();
                drop(eng);
                send_error(
                    &mut stream,
                    ErrorCode::Unsupported,
                    format!(
                        "schema mismatch on `{stream_name}`: client {claimed}, server {server_schema}"
                    ),
                );
                return Ok(());
            }
        }
        let now_us = shared.now_us();
        let port = &mut eng.ports[idx];
        port.producers += 1;
        if port.last_arrival.is_none() {
            // The silence clock starts when a producer first attaches.
            port.last_arrival = Some(Instant::now());
        }
        // A (re)connecting producer is activity: the source is no longer
        // network-starved.
        port.idle.set_idle(now_us, false);
        port.is_idle = false;
        write_frame(
            &mut stream,
            &Frame::HelloAck {
                version: PROTOCOL_VERSION,
                schema: port.schema.clone(),
                resume_ts: port.data_hw.unwrap_or(0),
            },
        )?;
        idx
    };
    shared.active_producers.fetch_add(1, Ordering::SeqCst);
    let sentinel = OrderSentinel::new(
        shared.check,
        format!("net:{stream_name}"),
        Arc::clone(&shared.sentinel),
    );
    let mut latency = LatencyRecorder::new();
    let res = producer_loop(
        shared,
        &mut stream,
        &mut reader,
        port_idx,
        &sentinel,
        &mut latency,
    );
    {
        let now_us = shared.now_us();
        let mut eng = shared.engine.lock().unwrap();
        let port = &mut eng.ports[port_idx];
        port.producers -= 1;
        if port.producers == 0 && !port.is_idle && !port.closed {
            // No producer attached: the source is network-starved from
            // this instant (a reconnect clears it).
            port.idle.set_idle(now_us, true);
            port.is_idle = true;
        }
    }
    shared.latency.lock().unwrap().merge(&latency);
    shared.active_producers.fetch_sub(1, Ordering::SeqCst);
    res
}

fn producer_loop(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    reader: &mut FrameReader,
    port_idx: usize,
    sentinel: &OrderSentinel,
    latency: &mut LatencyRecorder,
) -> Result<()> {
    let mut last_seq: Option<u64> = None;
    let mut draining = false;
    // Pacing state: the last pressure level announced to this producer.
    // Feedback frames go out only on level *changes*, so a steady state
    // costs no wire traffic.
    let mut sent_level = PressureLevel::Normal;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            // Drain mode: keep consuming frames already in flight, but
            // exit at the first quiet poll.
            draining = true;
        }
        let frame = match reader.poll(stream) {
            Ok(ReadOutcome::Frame(f)) => f,
            Ok(ReadOutcome::Eof) => return Ok(()),
            Ok(ReadOutcome::Timeout) => {
                if draining {
                    let _ = write_frame(stream, &Frame::Bye);
                    return Ok(());
                }
                maybe_synthesize_heartbeat(shared, port_idx)?;
                continue;
            }
            Err(e) => {
                send_error(stream, ErrorCode::Protocol, e.to_string());
                return Err(e);
            }
        };
        let arrival = Instant::now();
        let seq = match &frame {
            Frame::Data { seq, .. } | Frame::Heartbeat { seq, .. } | Frame::Close { seq } => *seq,
            Frame::Bye => return Ok(()),
            other => {
                send_error(
                    stream,
                    ErrorCode::Protocol,
                    format!("unexpected frame {other:?} from a producer"),
                );
                return Ok(());
            }
        };
        // Frame-order validation at the socket boundary: within one
        // connection the sequence must strictly increase.
        if last_seq.is_some_and(|ls| seq <= ls) {
            send_error(
                stream,
                ErrorCode::Protocol,
                format!(
                    "frame order violation: seq {seq} after {} on the same connection",
                    last_seq.unwrap_or(0)
                ),
            );
            return Ok(());
        }
        last_seq = Some(seq);
        let (ack, feedback) = {
            let now_us = shared.now_us();
            let mut eng = shared.engine.lock().unwrap();
            eng.stats.frames_in += 1;
            {
                let port = &mut eng.ports[port_idx];
                port.last_arrival = Some(arrival);
                if port.is_idle {
                    port.idle.set_idle(now_us, false);
                    port.is_idle = false;
                }
            }
            let delivered_before = shared.broadcast.delivered();
            match apply_frame(&mut eng, port_idx, frame, sentinel) {
                Ok(()) => {}
                Err(reject) => {
                    drop(eng);
                    send_error(stream, reject.code, reject.error.to_string());
                    return if reject.fatal {
                        Err(reject.error)
                    } else {
                        Ok(())
                    };
                }
            }
            let delivered_after = shared.broadcast.delivered();
            let elapsed = TimeDelta::from_micros(arrival.elapsed().as_micros() as u64);
            for _ in delivered_before..delivered_after {
                latency.record(elapsed);
            }
            // Translate engine + subscriber queue pressure into a pacing
            // frame when the level changed since the last announcement.
            let feedback = if shared.cfg.feedback.is_some() {
                let level = eng.exec.max_pressure().max(shared.broadcast.pressure());
                if level != sent_level {
                    sent_level = level;
                    eng.stats.feedback_frames += 1;
                    Some(Frame::Feedback {
                        level: level.as_u8(),
                        window: pacing_window(level),
                        dropped: 0,
                    })
                } else {
                    None
                }
            } else {
                None
            };
            let ack = Frame::Ack {
                seq,
                high_water: eng.ports[port_idx].data_hw.unwrap_or(0),
            };
            (ack, feedback)
        };
        // Feedback before the ack: the producer learns the new window
        // before its pump refills the pipeline.
        if let Some(fb) = feedback {
            write_frame(stream, &fb)?;
        }
        write_frame(stream, &ack)?;
    }
}

/// The send window (max unacked frames) requested of a producer at each
/// pressure level; `0` means "no limit requested".
fn pacing_window(level: PressureLevel) -> u64 {
    match level {
        PressureLevel::Normal => 0,
        PressureLevel::High => 4,
        PressureLevel::Critical => 1,
    }
}

/// A frame the engine refused: what to tell the peer, and whether the
/// condition is an actual invariant failure (worth propagating) or just a
/// per-connection rejection.
struct Reject {
    code: ErrorCode,
    error: Error,
    fatal: bool,
}

fn reject(code: ErrorCode, error: Error) -> Reject {
    Reject {
        code,
        error,
        fatal: false,
    }
}

/// Applies one producer frame under the engine lock.
fn apply_frame(
    eng: &mut Engine,
    port_idx: usize,
    frame: Frame,
    sentinel: &OrderSentinel,
) -> std::result::Result<(), Reject> {
    match frame {
        Frame::Data { tuple, .. } => {
            if !tuple.is_data() {
                // Wire-level mirror of `Executor::ingest`'s contract.
                return Err(reject(
                    ErrorCode::Protocol,
                    Error::runtime(format!(
                        "DATA frame on `{}` carries punctuation; use a HEARTBEAT frame",
                        eng.ports[port_idx].stream
                    )),
                ));
            }
            if eng.ports[port_idx].closed {
                return Err(reject(
                    ErrorCode::Engine,
                    Error::runtime(format!("source `{}` is closed", eng.ports[port_idx].stream)),
                ));
            }
            let ts = tuple.ts.as_micros();
            if eng.ports[port_idx].data_hw.is_some_and(|hw| ts <= hw) {
                // Retransmitted duplicate (producer timestamps are
                // strictly increasing): ack without ingesting.
                eng.ports[port_idx].duplicates += 1;
                eng.stats.duplicates_dropped += 1;
                return Ok(());
            }
            if let Some(phw) = eng.ports[port_idx].punct_hw {
                if ts < phw {
                    // High-water dominance at the socket boundary: this
                    // data contradicts a heartbeat already asserted
                    // (possibly synthesized while the producer was
                    // silent). Count + drop; fatal under strict.
                    let port = &mut eng.ports[port_idx];
                    match sentinel.check_punct_dominance(
                        &format!("wire:{}", port.stream),
                        Timestamp::from_micros(ts),
                        Timestamp::from_micros(phw),
                    ) {
                        Ok(()) => {
                            port.rejected += 1;
                            eng.stats.rejected_tuples += 1;
                            return Ok(());
                        }
                        Err(e) => {
                            return Err(Reject {
                                code: ErrorCode::Invariant,
                                error: e,
                                fatal: true,
                            });
                        }
                    }
                }
            }
            eng.advance_clock(ts)
                .map_err(|e| reject(ErrorCode::Engine, e))?;
            eng.ports[port_idx]
                .handle
                .ingest(tuple)
                .map_err(|e| reject(ErrorCode::Engine, e))?;
            eng.run().map_err(|e| reject(ErrorCode::Engine, e))?;
            eng.ports[port_idx].data_hw = Some(ts);
            eng.ports[port_idx].ingested += 1;
            eng.max_ts = eng.max_ts.max(ts);
            eng.stats.tuples_ingested += 1;
            Ok(())
        }
        Frame::Heartbeat { ts, .. } => {
            if eng.ports[port_idx].closed {
                return Err(reject(
                    ErrorCode::Engine,
                    Error::runtime(format!("source `{}` is closed", eng.ports[port_idx].stream)),
                ));
            }
            let us = ts.as_micros();
            eng.advance_clock(us)
                .map_err(|e| reject(ErrorCode::Engine, e))?;
            eng.ports[port_idx]
                .handle
                .heartbeat(ts)
                .map_err(|e| reject(ErrorCode::Engine, e))?;
            eng.run().map_err(|e| reject(ErrorCode::Engine, e))?;
            let port = &mut eng.ports[port_idx];
            let stale =
                port.data_hw.is_some_and(|hw| us < hw) || port.punct_hw.is_some_and(|p| us <= p);
            if !stale {
                port.punct_hw = Some(us);
            }
            eng.stats.heartbeats_in += 1;
            Ok(())
        }
        Frame::Close { .. } => {
            if !eng.ports[port_idx].closed {
                eng.ports[port_idx]
                    .handle
                    .close()
                    .map_err(|e| reject(ErrorCode::Engine, e))?;
                eng.run().map_err(|e| reject(ErrorCode::Engine, e))?;
                eng.ports[port_idx].closed = true;
            }
            Ok(())
        }
        _ => unreachable!("producer_loop forwards only seq-bearing frames"),
    }
}

/// On a quiet poll: if the producer has been silent past the idle
/// timeout, mark the source network-starved and synthesize a heartbeat at
/// server stream time — the on-demand ETS that unblocks IWP operators
/// starved by this connection's silence.
fn maybe_synthesize_heartbeat(shared: &Arc<Shared>, port_idx: usize) -> Result<()> {
    let Some(idle_timeout) = shared.cfg.idle_timeout else {
        return Ok(());
    };
    let now_us = shared.now_us();
    let mut eng = shared.engine.lock().unwrap();
    let port = &eng.ports[port_idx];
    if port.closed {
        return Ok(());
    }
    let silent_for = port
        .last_arrival
        .map(|t| t.elapsed())
        .unwrap_or(Duration::ZERO);
    if silent_for < idle_timeout {
        return Ok(());
    }
    if !eng.ports[port_idx].is_idle {
        eng.ports[port_idx].idle.set_idle(now_us, true);
        eng.ports[port_idx].is_idle = true;
    }
    // Synthesize at stream time, but only if that actually asserts
    // something new for this source.
    let target = eng.max_ts;
    let port = &eng.ports[port_idx];
    let fresh = target > 0
        && port.data_hw.is_none_or(|hw| target >= hw)
        && port.punct_hw.is_none_or(|p| target > p);
    if !fresh {
        return Ok(());
    }
    eng.advance_clock(target)?;
    eng.ports[port_idx]
        .handle
        .heartbeat(Timestamp::from_micros(target))?;
    eng.run()?;
    eng.ports[port_idx].punct_hw = Some(target);
    eng.ports[port_idx].synthesized += 1;
    eng.stats.synthesized_heartbeats += 1;
    Ok(())
}

/// What one wait on a subscriber queue produced.
enum SubStep {
    /// A tuple to write, plus the cumulative drop count at pop time and
    /// the queue's pressure level (for drop-notice feedback frames).
    Tuple(Tuple, u64, PressureLevel),
    /// Nothing arrived within the poll timeout.
    Quiet,
    /// Stream over: `overflowed` tells graceful end from a
    /// [`OverflowPolicy::Disconnect`] cut-off; `dropped` is final.
    End { overflowed: bool, dropped: u64 },
}

fn serve_subscriber(shared: &Arc<Shared>, mut stream: TcpStream) -> Result<()> {
    let output_schema = shared.engine.lock().unwrap().output_schema.clone();
    let (slot, q) = shared.broadcast.subscribe(shared.cfg.subscriber_queue);
    write_frame(
        &mut stream,
        &Frame::HelloAck {
            version: PROTOCOL_VERSION,
            schema: output_schema,
            resume_ts: 0,
        },
    )?;
    // Cumulative drops already announced to this subscriber; a change is
    // declared with a Feedback frame *before* the next Output, so the
    // subscriber can always reconcile received + dropped = delivered.
    let mut announced: u64 = 0;
    let res: Result<()> = loop {
        let step = {
            let mut sub = q.state.lock().unwrap();
            loop {
                if let Some(t) = sub.buf.pop_front() {
                    let level = shared.broadcast.marks.classify(sub.buf.len());
                    break SubStep::Tuple(t, sub.dropped, level);
                }
                if sub.overflowed || sub.finished {
                    // Freeze the drop ledger at the moment the verdict is
                    // announced: from here on `deliver` treats this
                    // subscriber as gone (skip, don't count), so the
                    // notice written below is exact — every tuple before
                    // the cut is delivered or declared, tuples after it
                    // are post-subscription.
                    let overflowed = sub.overflowed;
                    sub.finished = true;
                    break SubStep::End {
                        overflowed,
                        dropped: sub.dropped,
                    };
                }
                let (guard, timeout) =
                    q.cv.wait_timeout(sub, shared.cfg.read_timeout)
                        .expect("subscriber queue lock poisoned");
                sub = guard;
                if timeout.timed_out() {
                    break SubStep::Quiet;
                }
            }
        };
        match step {
            SubStep::Quiet => continue,
            SubStep::Tuple(tuple, dropped, level) => {
                if dropped > announced {
                    announced = dropped;
                    if let Err(e) = write_frame(
                        &mut stream,
                        &Frame::Feedback {
                            level: level.as_u8(),
                            window: 0,
                            dropped,
                        },
                    ) {
                        break Err(e);
                    }
                }
                if let Err(e) = write_frame(&mut stream, &Frame::Output { tuple }) {
                    // Subscriber went away; not a server error.
                    break Err(e);
                }
            }
            SubStep::End {
                overflowed,
                dropped,
            } => {
                if dropped > announced {
                    let _ = write_frame(
                        &mut stream,
                        &Frame::Feedback {
                            level: PressureLevel::Critical.as_u8(),
                            window: 0,
                            dropped,
                        },
                    );
                }
                if overflowed {
                    // The fixed disconnect path: the final mark and a
                    // structured error, never a bare socket close. The
                    // buffered prefix (drained above) plus the MAX mark
                    // keep the subscriber's progress contract intact.
                    let _ = write_frame(
                        &mut stream,
                        &Frame::Output {
                            tuple: Tuple::punctuation(Timestamp::MAX),
                        },
                    );
                    send_error(
                        &mut stream,
                        ErrorCode::Overflow,
                        format!(
                            "subscriber overflowed its bounded queue ({} tuples); {dropped} dropped",
                            shared.cfg.subscriber_queue
                        ),
                    );
                } else {
                    let _ = write_frame(&mut stream, &Frame::Bye);
                }
                break Ok(());
            }
        }
    };
    shared.broadcast.unsubscribe(slot);
    match res {
        Ok(()) => Ok(()),
        // A write failure to a departed subscriber is expected churn.
        Err(_) => Ok(()),
    }
}
