//! # millstream-net
//!
//! Networked stream ingest/egress for millstream: a framed binary wire
//! protocol ([`frame`]), the `msq serve` TCP engine host ([`server`]),
//! and the `msq send` producer / `msq tail` subscriber clients
//! ([`client`]).
//!
//! The protocol carries the paper's timestamp discipline onto the wire:
//! data frames and heartbeat frames share one sequence space per
//! connection, acks confirm both the sequence and the source's data
//! high-water mark (the resume point after a reconnect), and a producer
//! connection going silent past the idle timeout triggers the server's
//! on-demand heartbeat synthesis — the network-age reading of the
//! paper's on-demand ETS generation at starved sources.
//!
//! Pressure flows the other way as **feedback punctuation**
//! ([`Frame::Feedback`]): the server translates engine and subscriber
//! queue occupancy into producer send-window requests, and declares any
//! subscriber-side load shedding with cumulative drop notices instead of
//! silent loss or bare disconnects.
//!
//! See `DESIGN.md` §8 for the full wire contract and §9 for the feedback
//! channel.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod frame;
pub mod server;

pub use client::{backoff_delay, ClientConfig, ClientReport, StreamClient, Subscription};
pub use frame::{
    write_frame, ErrorCode, Frame, FrameReader, ReadOutcome, Role, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use server::{OverflowPolicy, PortReport, Server, ServerConfig, ServerReport, ServerStats};
