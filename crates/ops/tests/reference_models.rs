//! Property-based tests checking the streaming operators against naive
//! batch reference models:
//!
//! * the union against a stable sort-merge;
//! * the window join against a nested-loop join over the full history;
//! * the aggregate against a batch group-by.
//!
//! Inputs are arbitrary ordered streams (with duplicates/simultaneous
//! timestamps); both inputs are closed with a final punctuation so the
//! streaming operators can flush completely.

use std::cell::RefCell;
use std::collections::BTreeMap;

use proptest::prelude::*;

use millstream_buffer::Buffer;
use millstream_ops::{
    AggExpr, AggFunc, JoinSpec, OpContext, Operator, SlidingAggregate, Union, WindowAggregate,
    WindowJoin,
};
use millstream_types::{DataType, Expr, Field, Schema, TimeDelta, Timestamp, Tuple, Value};

fn schema() -> Schema {
    Schema::new(vec![Field::new("v", DataType::Int)])
}

/// An ordered stream of (ts, value) with coarse timestamps (many ties).
fn stream(max_len: usize) -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0u64..50, any::<i8>()), 0..max_len).prop_map(|mut v| {
        // Sort by the timestamp *gaps* interpretation: accumulate gaps so
        // the stream is ordered but has ties (gap 0).
        let mut ts = 0u64;
        v.iter_mut()
            .map(|(gap, val)| {
                ts += *gap % 5; // frequent ties
                (ts, *val as i64)
            })
            .collect()
    })
}

fn data(ts: u64, v: i64) -> Tuple {
    Tuple::data(Timestamp::from_micros(ts), vec![Value::Int(v)])
}

/// Drives a 2-input operator over fully loaded inputs terminated by a
/// far-future punctuation; returns the data tuples emitted.
fn drive2(op: &mut dyn Operator, a: &[(u64, i64)], b: &[(u64, i64)]) -> Vec<Tuple> {
    let ia = RefCell::new(Buffer::new("a"));
    let ib = RefCell::new(Buffer::new("b"));
    let out = RefCell::new(Buffer::new("out"));
    for &(ts, v) in a {
        ia.borrow_mut().push(data(ts, v)).unwrap();
    }
    for &(ts, v) in b {
        ib.borrow_mut().push(data(ts, v)).unwrap();
    }
    let eos = Timestamp::from_micros(1_000_000);
    ia.borrow_mut().push(Tuple::punctuation(eos)).unwrap();
    ib.borrow_mut().push(Tuple::punctuation(eos)).unwrap();
    let inputs = [&ia, &ib];
    let outputs = [&out];
    let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
    while op.poll(&ctx).is_ready() {
        op.step(&ctx).unwrap();
    }
    let mut got = vec![];
    while let Some(t) = out.borrow_mut().pop() {
        if t.is_data() {
            got.push(t);
        }
    }
    got
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Union ≡ stable merge: same multiset of rows, timestamp-ordered.
    #[test]
    fn union_matches_sort_merge(a in stream(60), b in stream(60)) {
        let mut u = Union::new("∪", schema(), 2);
        let got = drive2(&mut u, &a, &b);

        // Reference: concatenate and stably sort by timestamp.
        let mut expect: Vec<(u64, i64)> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_by_key(|&(ts, _)| ts);

        prop_assert_eq!(got.len(), expect.len());
        // Output is ordered by timestamp.
        let ts: Vec<u64> = got.iter().map(|t| t.ts.as_micros()).collect();
        let mut sorted = ts.clone();
        sorted.sort();
        prop_assert_eq!(&ts, &sorted);
        // Same multiset of (ts, v) pairs.
        let mut got_pairs: Vec<(u64, i64)> = got
            .iter()
            .map(|t| (t.ts.as_micros(), t.values().unwrap()[0].as_int().unwrap()))
            .collect();
        got_pairs.sort();
        let mut expect_pairs = expect;
        expect_pairs.sort();
        prop_assert_eq!(got_pairs, expect_pairs);
    }

    /// Window join ≡ nested loop over the full history with the window
    /// predicate |ta − tb| ≤ w applied pairwise (per Kang et al.: a pair
    /// joins iff each tuple is within the other's window at probe time,
    /// which for symmetric windows is exactly the timestamp-distance test).
    #[test]
    fn join_matches_nested_loop(a in stream(40), b in stream(40), w in 1u64..20) {
        let out_schema = schema().join(&schema(), "a", "b");
        let window = TimeDelta::from_micros(w);
        let mut j = WindowJoin::new(
            "⋈",
            out_schema,
            JoinSpec::symmetric(window).with_key(0, 0),
        );
        let got = drive2(&mut j, &a, &b);

        // Reference nested loop.
        let mut expect = 0usize;
        for &(ta, va) in &a {
            for &(tb, vb) in &b {
                if va == vb && ta.abs_diff(tb) <= w {
                    expect += 1;
                }
            }
        }
        prop_assert_eq!(got.len(), expect, "a={:?} b={:?} w={}", a, b, w);
        // Every result's timestamp is the max of some contributing pair —
        // at minimum, results are ordered.
        let ts: Vec<u64> = got.iter().map(|t| t.ts.as_micros()).collect();
        let mut sorted = ts.clone();
        sorted.sort();
        prop_assert_eq!(ts, sorted);
    }

    /// Sliding (pane-based) aggregate ≡ batch recomputation over every
    /// overlapping window.
    #[test]
    fn sliding_matches_batch_windows(
        input in stream(60),
        k in 2u64..6,
        s_us in 3u64..15,
    ) {
        let w = k * s_us;
        let in_schema = Schema::new(vec![Field::new("v", DataType::Int)]);
        let mut agg = SlidingAggregate::new(
            "γs",
            &in_schema,
            TimeDelta::from_micros(w),
            TimeDelta::from_micros(s_us),
            vec![],
            vec![
                AggExpr { func: AggFunc::Count, arg: Expr::col(0), name: "n".into() },
                AggExpr { func: AggFunc::Sum, arg: Expr::col(0), name: "s".into() },
            ],
        ).unwrap();
        let i0 = RefCell::new(Buffer::new("in"));
        let out = RefCell::new(Buffer::new("out"));
        for &(ts, v) in &input {
            i0.borrow_mut().push(data(ts, v)).unwrap();
        }
        i0.borrow_mut().push(Tuple::punctuation(Timestamp::from_micros(1_000_000))).unwrap();
        let inputs = [&i0];
        let outputs = [&out];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        while agg.poll(&ctx).is_ready() {
            agg.step(&ctx).unwrap();
        }
        // Collect emitted windows keyed by emission boundary (= ts).
        let mut got: BTreeMap<u64, (i64, i64)> = BTreeMap::new();
        while let Some(t) = out.borrow_mut().pop() {
            if let Some(row) = t.values() {
                got.insert(
                    t.ts.as_micros(),
                    (row[1].as_int().unwrap(), row[2].as_int().unwrap()),
                );
            }
        }
        // Reference: for every slide boundary b, the batch aggregate over
        // tuples with ts ∈ [b−w, b). Only non-empty windows are emitted.
        if !input.is_empty() {
            let max_ts = input.iter().map(|&(t, _)| t).max().unwrap();
            let mut b = s_us; // first possible boundary at one slide
            let mut expect: BTreeMap<u64, (i64, i64)> = BTreeMap::new();
            while b <= max_ts + w {
                let from = b.saturating_sub(w);
                let (mut n, mut sum) = (0i64, 0i64);
                for &(ts, v) in &input {
                    if ts >= from && ts < b {
                        n += 1;
                        sum += v;
                    }
                }
                if n > 0 {
                    expect.insert(b, (n, sum));
                }
                b += s_us;
            }
            prop_assert_eq!(&got, &expect, "input={:?} w={} s={}", input, w, s_us);
        } else {
            prop_assert!(got.is_empty());
        }
    }

    /// Tumbling aggregate ≡ batch group-by per window.
    #[test]
    fn aggregate_matches_batch_group_by(input in stream(80), w in 3u64..25) {
        let in_schema = Schema::new(vec![Field::new("v", DataType::Int)]);
        let window = TimeDelta::from_micros(w);
        let mut agg = WindowAggregate::new(
            "γ",
            &in_schema,
            window,
            vec![],
            vec![
                AggExpr { func: AggFunc::Count, arg: Expr::col(0), name: "n".into() },
                AggExpr { func: AggFunc::Sum, arg: Expr::col(0), name: "s".into() },
            ],
        ).unwrap();

        // Drive single-input (reuse drive2 with an empty second input is
        // wrong arity — drive manually).
        let i0 = RefCell::new(Buffer::new("in"));
        let out = RefCell::new(Buffer::new("out"));
        for &(ts, v) in &input {
            i0.borrow_mut().push(data(ts, v)).unwrap();
        }
        i0.borrow_mut().push(Tuple::punctuation(Timestamp::from_micros(1_000_000))).unwrap();
        let inputs = [&i0];
        let outputs = [&out];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        while agg.poll(&ctx).is_ready() {
            agg.step(&ctx).unwrap();
        }
        let mut got: Vec<(i64, i64, i64)> = vec![]; // (window_start, count, sum)
        while let Some(t) = out.borrow_mut().pop() {
            if let Some(row) = t.values() {
                got.push((
                    row[0].as_int().unwrap(),
                    row[1].as_int().unwrap(),
                    row[2].as_int().unwrap(),
                ));
            }
        }

        // Reference: batch group-by on aligned windows. The operator aligns
        // its first window to floor(first_ts / w) * w.
        let mut expect: BTreeMap<i64, (i64, i64)> = BTreeMap::new();
        for &(ts, v) in &input {
            let start = (ts / w * w) as i64;
            let e = expect.entry(start).or_insert((0, 0));
            e.0 += 1;
            e.1 += v;
        }
        let expect: Vec<(i64, i64, i64)> =
            expect.into_iter().map(|(k, (n, s))| (k, n, s)).collect();
        prop_assert_eq!(got, expect, "input={:?} w={}", input, w);
    }
}
