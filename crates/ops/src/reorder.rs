//! Order restoration for disordered external streams — the "flexible time
//! management" direction the paper cites (Srivastava & Widom, PODS'04,
//! reference [12]).
//!
//! Externally timestamped tuples can arrive out of order within a bounded
//! *disorder* (network reordering, multiple upstream sources). Every other
//! millstream operator relies on the ordering contract, so a [`Reorder`]
//! operator is placed directly after such a source: it buffers tuples in a
//! min-heap and releases them once the stream's high-water mark has moved
//! `slack` past them — at that point, assuming disorder is bounded by
//! `slack`, no smaller timestamp can still arrive. Tuples that violate the
//! bound anyway (*too-late* tuples) are handled by a configurable policy.
//!
//! Punctuation at τ asserts that no future tuple is below τ regardless of
//! slack, so it flushes everything ≤ τ and is forwarded — which is how
//! on-demand ETS keeps working across a Reorder stage.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use millstream_types::{Result, Schema, TimeDelta, Timestamp, Tuple};

use crate::context::{OpContext, Operator, Poll, StepOutcome};

/// What to do with a tuple that arrives later than the slack bound allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatePolicy {
    /// Drop it and count it (load-shedding semantics; the default).
    #[default]
    Drop,
    /// Clamp its timestamp up to the already-emitted high-water mark so it
    /// is not lost, at the cost of a slightly wrong timestamp.
    Clamp,
}

/// Heap entry ordered by (ts, arrival sequence) for stable release order.
/// Identity is (ts, seq) — seq is unique, so this is a total order.
#[derive(Debug)]
struct Pending {
    ts: Timestamp,
    seq: u64,
    tuple: Tuple,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        (self.ts, self.seq) == (other.ts, other.seq)
    }
}

impl Eq for Pending {}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ts, self.seq).cmp(&(other.ts, other.seq))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The order-restoring slack buffer.
pub struct Reorder {
    name: String,
    schema: Schema,
    slack: TimeDelta,
    /// The configured slack, restored when feedback pressure subsides.
    base_slack: TimeDelta,
    late_policy: LatePolicy,
    heap: BinaryHeap<Reverse<Pending>>,
    seq: u64,
    /// Largest input timestamp observed (data or punctuation).
    max_seen: Option<Timestamp>,
    /// Largest timestamp emitted (the downstream ordering floor).
    emitted_high_water: Option<Timestamp>,
    late_tuples: u64,
    /// Optional shared mirror of `late_tuples`, for observers that only
    /// hold the built graph (the operator itself is boxed away).
    late_counter: Option<Arc<AtomicU64>>,
    /// Times the slack was tightened by degraded-mode feedback.
    slack_tightenings: u64,
}

impl Reorder {
    /// Creates a reorder stage with the given slack bound.
    pub fn new(name: impl Into<String>, schema: Schema, slack: TimeDelta) -> Self {
        Reorder {
            name: name.into(),
            schema,
            slack,
            base_slack: slack,
            late_policy: LatePolicy::default(),
            heap: BinaryHeap::new(),
            seq: 0,
            max_seen: None,
            emitted_high_water: None,
            late_tuples: 0,
            late_counter: None,
            slack_tightenings: 0,
        }
    }

    /// Sets the too-late policy (builder style).
    pub fn with_late_policy(mut self, policy: LatePolicy) -> Self {
        self.late_policy = policy;
        self
    }

    /// Mirrors the late-tuple count into a shared cell (builder style).
    pub fn with_late_counter(mut self, counter: Arc<AtomicU64>) -> Self {
        self.late_counter = Some(counter);
        self
    }

    /// Tuples currently held back.
    pub fn buffered(&self) -> usize {
        self.heap.len()
    }

    /// Tuples that violated the slack bound so far.
    pub fn late_tuples(&self) -> u64 {
        self.late_tuples
    }

    /// The slack currently in force (equal to the configured slack unless
    /// degraded-mode feedback tightened it).
    pub fn current_slack(&self) -> TimeDelta {
        self.slack
    }

    /// Times the slack was tightened by degraded-mode feedback.
    pub fn slack_tightenings(&self) -> u64 {
        self.slack_tightenings
    }

    /// The release watermark: everything at or below it may be emitted.
    fn watermark(&self) -> Option<Timestamp> {
        self.max_seen.map(|m| m.saturating_sub(self.slack))
    }

    /// The release floor: the slack watermark raised to the emitted
    /// high-water mark. Anything at or below the emitted floor is already
    /// safe to emit — it can only tie the downstream ordering floor — so a
    /// clamped tuple (ts == emitted high-water) never waits for `max_seen`
    /// to advance `slack` past it.
    fn release_floor(&self) -> Option<Timestamp> {
        match (self.watermark(), self.emitted_high_water) {
            (Some(w), Some(h)) => Some(w.max(h)),
            (w, h) => w.or(h),
        }
    }

    /// Releases every buffered tuple at or below the watermark, in order.
    fn release(&mut self, ctx: &OpContext<'_>, up_to: Timestamp) -> Result<usize> {
        let mut produced = 0;
        while self.heap.peek().is_some_and(|Reverse(p)| p.ts <= up_to) {
            let Reverse(p) = self.heap.pop().expect("peeked");
            self.emitted_high_water = Some(
                self.emitted_high_water
                    .map_or(p.tuple.ts, |h| h.max(p.tuple.ts)),
            );
            ctx.output_mut(0).push(p.tuple)?;
            produced += 1;
        }
        Ok(produced)
    }
}

impl Operator for Reorder {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_inputs(&self) -> usize {
        1
    }

    fn accepts_disorder(&self) -> bool {
        true
    }

    /// Tuples below the release floor in the slack heap may still be
    /// emitted at their own timestamps — the heap minimum is the hold.
    fn frontier_hold(&self) -> Option<Timestamp> {
        self.heap.peek().map(|Reverse(p)| p.ts)
    }

    /// Degraded-mode reaction: under pressure, tighten the slack so held
    /// tuples release sooner (halved at `High`, quartered at `Critical`);
    /// restore the configured slack when pressure subsides. Order safety is
    /// unaffected — the release floor never drops below the emitted
    /// high-water mark — but tuples straggling beyond the tightened bound
    /// become *late* and are counted by the late policy, which is why this
    /// only runs when the signal explicitly allows degraded output.
    fn on_feedback(&mut self, signal: &millstream_buffer::FeedbackSignal) {
        if !signal.allow_degraded {
            return;
        }
        use millstream_buffer::PressureLevel;
        let target = match signal.level {
            PressureLevel::Normal => self.base_slack,
            PressureLevel::High => TimeDelta::from_micros(self.base_slack.as_micros() / 2),
            PressureLevel::Critical => TimeDelta::from_micros(self.base_slack.as_micros() / 4),
        };
        if target < self.slack {
            self.slack_tightenings += 1;
        }
        self.slack = target;
    }

    fn output_schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self, ctx: &OpContext<'_>) -> Poll {
        if !ctx.input(0).is_empty() {
            return Poll::Ready;
        }
        // Input drained; anything already past the release floor can still go.
        if let Some(w) = self.release_floor() {
            if self.heap.peek().is_some_and(|Reverse(p)| p.ts <= w) {
                return Poll::Ready;
            }
        }
        Poll::starved_on(0)
    }

    fn step(&mut self, ctx: &OpContext<'_>) -> Result<StepOutcome> {
        let mut consumed = 0;
        if let Some(tuple) = ctx.input_mut(0).pop() {
            consumed = 1;
            self.max_seen = Some(self.max_seen.map_or(tuple.ts, |m| m.max(tuple.ts)));
            if tuple.is_punctuation() {
                // A punctuation is authoritative: flush ≤ τ and forward it.
                // A *stale* punctuation (τ at or below the emitted floor)
                // carries no new information, but the flush must still use
                // the full release floor so buffered ties are not stranded.
                let tau = tuple.ts;
                let flush = self.emitted_high_water.map_or(tau, |h| h.max(tau));
                let mut produced = self.release(ctx, flush)?;
                if self.emitted_high_water.is_none_or(|h| tau > h) {
                    self.emitted_high_water = Some(tau);
                    ctx.output_mut(0).push(tuple)?;
                    produced += 1;
                }
                return Ok(StepOutcome {
                    consumed,
                    produced,
                    work: produced,
                });
            }
            // Too late even for the slack bound?
            if self.emitted_high_water.is_some_and(|h| tuple.ts < h) {
                self.late_tuples += 1;
                if let Some(c) = &self.late_counter {
                    c.store(self.late_tuples, Ordering::Relaxed);
                }
                match self.late_policy {
                    LatePolicy::Drop => {
                        return Ok(StepOutcome {
                            consumed,
                            produced: 0,
                            work: 0,
                        });
                    }
                    LatePolicy::Clamp => {
                        let mut t = tuple;
                        t.ts = self.emitted_high_water.expect("checked");
                        self.seq += 1;
                        self.heap.push(Reverse(Pending {
                            ts: t.ts,
                            seq: self.seq,
                            tuple: t,
                        }));
                    }
                }
            } else {
                self.seq += 1;
                self.heap.push(Reverse(Pending {
                    ts: tuple.ts,
                    seq: self.seq,
                    tuple,
                }));
            }
        }
        let produced = match self.release_floor() {
            Some(w) => self.release(ctx, w)?,
            None => 0,
        };
        Ok(StepOutcome {
            consumed,
            produced,
            work: produced,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_buffer::{Buffer, OrderPolicy};
    use millstream_types::{DataType, Field, Value};
    use std::cell::RefCell;

    fn schema() -> Schema {
        Schema::new(vec![Field::new("v", DataType::Int)])
    }

    fn data(ts: u64, v: i64) -> Tuple {
        Tuple::data(Timestamp::from_micros(ts), vec![Value::Int(v)])
    }

    fn run(r: &mut Reorder, tuples: Vec<Tuple>) -> Vec<Tuple> {
        let input = RefCell::new(Buffer::new("in").with_order_policy(OrderPolicy::Accept));
        let output = RefCell::new(Buffer::new("out"));
        for t in tuples {
            input.borrow_mut().push(t).unwrap();
        }
        let inputs = [&input];
        let outputs = [&output];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        while r.poll(&ctx).is_ready() {
            r.step(&ctx).unwrap();
        }
        let mut got = vec![];
        while let Some(t) = output.borrow_mut().pop() {
            got.push(t);
        }
        got
    }

    #[test]
    fn restores_order_within_slack() {
        let mut r = Reorder::new("↻", schema(), TimeDelta::from_micros(10));
        let out = run(
            &mut r,
            vec![data(5, 0), data(3, 1), data(8, 2), data(6, 3), data(25, 4)],
        );
        // Watermark reaches 15 with the last tuple: 3,5,6,8 released in order.
        let ts: Vec<u64> = out.iter().map(|t| t.ts.as_micros()).collect();
        assert_eq!(ts, vec![3, 5, 6, 8]);
        assert_eq!(r.buffered(), 1, "ts 25 still held");
        assert_eq!(r.late_tuples(), 0);
    }

    #[test]
    fn punctuation_flushes_and_forwards() {
        let mut r = Reorder::new("↻", schema(), TimeDelta::from_micros(100));
        let out = run(
            &mut r,
            vec![
                data(5, 0),
                data(3, 1),
                Tuple::punctuation(Timestamp::from_micros(50)),
            ],
        );
        assert_eq!(out.len(), 3);
        assert!(out[0].is_data() && out[1].is_data());
        assert_eq!(out[0].ts.as_micros(), 3);
        assert!(out[2].is_punctuation());
        assert_eq!(out[2].ts.as_micros(), 50);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn too_late_tuple_is_dropped_by_default() {
        let mut r = Reorder::new("↻", schema(), TimeDelta::from_micros(5));
        let out = run(
            &mut r,
            vec![data(10, 0), data(20, 1), data(2, 2), data(40, 3)],
        );
        // Watermark hit 15 after ts 20 → ts 10 released; ts 2 arrives with
        // emitted high-water 10 → too late → dropped.
        assert!(out.iter().all(|t| t.ts.as_micros() != 2));
        assert_eq!(r.late_tuples(), 1);
    }

    #[test]
    fn too_late_tuple_clamped_when_configured() {
        let mut r = Reorder::new("↻", schema(), TimeDelta::from_micros(5))
            .with_late_policy(LatePolicy::Clamp);
        let out = run(
            &mut r,
            vec![data(10, 0), data(20, 1), data(2, 2), data(40, 3)],
        );
        assert_eq!(r.late_tuples(), 1);
        // The clamped tuple survives with ts raised to the emitted floor.
        let clamped: Vec<&Tuple> = out
            .iter()
            .filter(|t| t.values().unwrap()[0] == Value::Int(2))
            .collect();
        assert_eq!(clamped.len(), 1);
        assert_eq!(clamped[0].ts.as_micros(), 10);
        // Output stays ordered.
        let ts: Vec<u64> = out.iter().map(|t| t.ts.as_micros()).collect();
        let mut sorted = ts.clone();
        sorted.sort();
        assert_eq!(ts, sorted);
    }

    #[test]
    fn output_always_ordered_on_random_disorder() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // Pseudo-random but deterministic jitter.
        let mut r = Reorder::new("↻", schema(), TimeDelta::from_micros(50));
        let mut tuples = vec![];
        for i in 0..200u64 {
            let mut h = DefaultHasher::new();
            i.hash(&mut h);
            let jitter = h.finish() % 50;
            let ts = 10 * i + jitter;
            tuples.push(data(ts, i as i64));
        }
        let out = run(&mut r, tuples);
        let ts: Vec<u64> = out.iter().map(|t| t.ts.as_micros()).collect();
        let mut sorted = ts.clone();
        sorted.sort();
        assert_eq!(ts, sorted, "released stream must be ordered");
        assert_eq!(r.late_tuples(), 0, "jitter stays within slack");
        assert!(out.len() >= 190, "nearly everything released");
    }

    #[test]
    fn shared_late_counter_mirrors() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut r = Reorder::new("↻", schema(), TimeDelta::from_micros(5))
            .with_late_counter(counter.clone());
        run(
            &mut r,
            vec![data(10, 0), data(20, 1), data(2, 2), data(40, 3)],
        );
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        assert_eq!(counter.load(Ordering::Relaxed), r.late_tuples());
    }

    #[test]
    fn clamped_tuple_released_without_waiting_for_slack() {
        // Regression: a punctuation raised the emitted floor far beyond
        // max_seen − slack; a late tuple clamped to that floor used to sit
        // in the heap until max_seen advanced `slack` past it, even though
        // its (clamped) timestamp was already safe to emit.
        let mut r = Reorder::new("↻", schema(), TimeDelta::from_micros(100))
            .with_late_policy(LatePolicy::Clamp);
        let out = run(
            &mut r,
            vec![
                data(5, 0),
                Tuple::punctuation(Timestamp::from_micros(50)),
                data(10, 1),
            ],
        );
        assert_eq!(r.buffered(), 0, "clamped tuple must not be stranded");
        assert_eq!(r.late_tuples(), 1);
        let clamped: Vec<&Tuple> = out
            .iter()
            .filter(|t| t.is_data() && t.values().unwrap()[0] == Value::Int(1))
            .collect();
        assert_eq!(clamped.len(), 1);
        assert_eq!(clamped[0].ts.as_micros(), 50);
    }

    #[test]
    fn tie_with_emitted_floor_releases_immediately() {
        let mut r = Reorder::new("↻", schema(), TimeDelta::from_micros(100));
        let out = run(
            &mut r,
            vec![
                data(5, 0),
                Tuple::punctuation(Timestamp::from_micros(50)),
                data(50, 1),
            ],
        );
        // ts 50 equals the emitted floor: not late, and releasable at once
        // even though the slack watermark is far behind.
        assert_eq!(r.buffered(), 0);
        assert_eq!(out.len(), 3);
        assert_eq!(r.late_tuples(), 0);
    }

    #[test]
    fn stale_punctuation_is_suppressed_but_still_flushes() {
        let mut r = Reorder::new("↻", schema(), TimeDelta::from_micros(100))
            .with_late_policy(LatePolicy::Clamp);
        let out = run(
            &mut r,
            vec![
                data(5, 0),
                Tuple::punctuation(Timestamp::from_micros(50)),
                data(60, 1),
                // Stale: τ ≤ the emitted floor. Must not be re-forwarded,
                // must not disturb the heap.
                Tuple::punctuation(Timestamp::from_micros(30)),
                // Late → clamped to 50 — must still release at once.
                data(10, 2),
            ],
        );
        let punct_ts: Vec<u64> = out
            .iter()
            .filter(|t| t.is_punctuation())
            .map(|t| t.ts.as_micros())
            .collect();
        assert_eq!(punct_ts, vec![50], "stale punctuation is not re-forwarded");
        assert_eq!(r.buffered(), 1, "ts 60 still waits for slack");
        assert!(out.iter().any(|t| t.is_data() && t.ts.as_micros() == 50));
    }

    #[test]
    fn property_mix_punctuation_ties_and_late_under_both_policies() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        for policy in [LatePolicy::Drop, LatePolicy::Clamp] {
            let mut r =
                Reorder::new("↻", schema(), TimeDelta::from_micros(20)).with_late_policy(policy);
            let mut tuples = vec![];
            let mut data_in = 0u64;
            for i in 0..300u64 {
                let mut h = DefaultHasher::new();
                (i, 0xC0FFEE_u64).hash(&mut h);
                let jitter = h.finish() % 40; // up to 2× slack → real late tuples
                let base = 5 * i;
                tuples.push(data(base.saturating_sub(jitter), i as i64));
                data_in += 1;
                if i % 23 == 22 {
                    // Punctuation on the undithered timeline: sometimes
                    // ahead of the emitted floor, sometimes stale, and it
                    // makes tuples behind it late — exactly the mix the
                    // release floor has to survive.
                    tuples.push(Tuple::punctuation(Timestamp::from_micros(base)));
                }
                if i % 17 == 16 {
                    // Exact tie with the previous tuple's timestamp.
                    let prev = tuples.last().unwrap().ts;
                    tuples.push(Tuple::data(prev, vec![Value::Int(-1)]));
                    data_in += 1;
                }
            }
            tuples.push(Tuple::punctuation(Timestamp::MAX));
            let out = run(&mut r, tuples);

            // The output buffer (Reject policy) already enforces order;
            // assert it explicitly anyway.
            let ts: Vec<u64> = out.iter().map(|t| t.ts.as_micros()).collect();
            let mut sorted = ts.clone();
            sorted.sort();
            assert_eq!(ts, sorted, "released stream must be ordered");
            assert_eq!(r.buffered(), 0, "final punctuation flushes everything");

            let data_out = out.iter().filter(|t| t.is_data()).count() as u64;
            match policy {
                LatePolicy::Clamp => {
                    assert_eq!(data_out, data_in, "clamping never loses data");
                }
                LatePolicy::Drop => {
                    assert_eq!(
                        data_out,
                        data_in - r.late_tuples(),
                        "drops account for every missing tuple"
                    );
                    assert!(r.late_tuples() > 0, "workload must exercise lateness");
                }
            }
        }
    }

    #[test]
    fn feedback_tightens_and_restores_slack() {
        use millstream_buffer::{FeedbackSignal, PressureLevel};
        let sig = |level, allow| FeedbackSignal {
            level,
            queued: 0,
            allow_degraded: allow,
        };
        let mut r = Reorder::new("↻", schema(), TimeDelta::from_micros(100));
        // Advisory signals (pacing only) never change the slack.
        r.on_feedback(&sig(PressureLevel::Critical, false));
        assert_eq!(r.current_slack(), TimeDelta::from_micros(100));
        assert_eq!(r.slack_tightenings(), 0);
        // Degraded-mode signals tighten, then restore.
        r.on_feedback(&sig(PressureLevel::High, true));
        assert_eq!(r.current_slack(), TimeDelta::from_micros(50));
        r.on_feedback(&sig(PressureLevel::Critical, true));
        assert_eq!(r.current_slack(), TimeDelta::from_micros(25));
        r.on_feedback(&sig(PressureLevel::Normal, true));
        assert_eq!(r.current_slack(), TimeDelta::from_micros(100));
        assert_eq!(r.slack_tightenings(), 2);
    }

    #[test]
    fn tightened_slack_releases_earlier_but_stays_ordered() {
        use millstream_buffer::{FeedbackSignal, PressureLevel};
        let mut r = Reorder::new("↻", schema(), TimeDelta::from_micros(100));
        r.on_feedback(&FeedbackSignal {
            level: PressureLevel::Critical,
            queued: 9,
            allow_degraded: true,
        });
        // With slack tightened to 25, a watermark of 50-25=25 releases the
        // early tuples that the configured slack (100) would still hold.
        let out = run(&mut r, vec![data(5, 0), data(3, 1), data(50, 2)]);
        let ts: Vec<u64> = out.iter().map(|t| t.ts.as_micros()).collect();
        assert_eq!(ts, vec![3, 5], "tightened watermark releases early tuples");
        assert_eq!(r.buffered(), 1, "ts 50 still held");
    }

    #[test]
    fn simultaneous_arrivals_release_fifo() {
        let mut r = Reorder::new("↻", schema(), TimeDelta::from_micros(1));
        let out = run(
            &mut r,
            vec![data(5, 1), data(5, 2), data(5, 3), data(100, 9)],
        );
        let vs: Vec<i64> = out
            .iter()
            .take(3)
            .map(|t| t.values().unwrap()[0].as_int().unwrap())
            .collect();
        assert_eq!(vs, vec![1, 2, 3], "ties release in arrival order");
    }
}
