//! Shared join-state layer: key-partitioned hash indexes with
//! punctuation-driven purge.
//!
//! Both [`crate::WindowJoin`] and [`crate::MultiWindowJoin`] keep one
//! [`JoinState`] per input. Two storage modes:
//!
//! * **Keyed** — an equi-key column partitions the window into hash
//!   buckets (`key value → Vec<Tuple>` in timestamp order). A probe
//!   touches exactly one bucket, so probe cost is proportional to the
//!   number of *matching* tuples, not the window length. Bucket equality
//!   uses [`Value`]'s `Eq`, which is exactly the engine's SQL `=` on
//!   non-null operands (`Int(1) == Float(1.0)`, hash-consistent), and a
//!   null probe key returns no candidates — SQL three-valued logic.
//! * **Scan** — no key: one contiguous store in timestamp order, probed
//!   as a whole (the pre-existing cross-within-window behaviour).
//!
//! Expiry contract: the *logical* window floor (`max seen τ − window`)
//! advances on every probe and every punctuation, and `probe()` never
//! returns a tuple below it — correctness does not depend on physical
//! reclamation. Physical purge is amortized: scan stores trim eagerly
//! (cheap pointer bump + periodic compaction), while keyed stores sweep
//! their buckets only when the floor has advanced by at least half a
//! window since the last sweep — or immediately on punctuation
//! ([`JoinState::purge`]), which drops wholly-expired buckets in O(1)
//! per bucket. Retained state is therefore bounded by ~1.5× the window
//! between punctuations and snaps back to the exact window at each one.

use std::collections::HashMap;

use millstream_types::{TimeDelta, Timestamp, Tuple, Value};

/// Compact the scan store once this many expired tuples pile up in front.
const SCAN_COMPACT_MIN: usize = 32;

/// In keyed mode, drop empty buckets once they outnumber live ones by
/// this factor (plus a small constant floor so steady-state key churn
/// never triggers reallocation).
const EMPTY_BUCKET_SLACK: usize = 2;
const EMPTY_BUCKET_MIN: usize = 16;

/// One input's window state for a symmetric join.
pub struct JoinState {
    /// Equi-key column index within this input's row, if any.
    key: Option<usize>,
    window: TimeDelta,
    /// Keyed mode: timestamp-ordered bucket per key value. Null-keyed
    /// tuples live under `Value::Null` but are never probed.
    buckets: HashMap<Value, Vec<Tuple>>,
    /// Scan mode: timestamp-ordered store; `scan[scan_head..]` is live.
    scan: Vec<Tuple>,
    scan_head: usize,
    /// Tuples physically retained in keyed buckets.
    keyed_live: usize,
    /// Buckets currently empty (retained for their capacity).
    empties: usize,
    /// Logical expiry floor: tuples with `ts < floor` never match.
    floor: Timestamp,
    /// Floor at the last physical bucket sweep.
    swept_floor: Timestamp,
    /// High-water of stored tuples, for peak-state accounting.
    peak: usize,
}

impl JoinState {
    /// A window state; `key` is the equi-key column within this input's
    /// own row (`None` = ordered scan store).
    pub fn new(window: TimeDelta, key: Option<usize>) -> Self {
        JoinState {
            key,
            window,
            buckets: HashMap::new(),
            scan: Vec::new(),
            scan_head: 0,
            keyed_live: 0,
            empties: 0,
            floor: Timestamp::ZERO,
            swept_floor: Timestamp::ZERO,
            peak: 0,
        }
    }

    /// The equi-key column, if this state is hash-partitioned.
    pub fn key(&self) -> Option<usize> {
        self.key
    }

    /// The window length.
    pub fn window(&self) -> TimeDelta {
        self.window
    }

    /// Tuples physically retained (may lag logical expiry by up to half a
    /// window in keyed mode between punctuations).
    pub fn len(&self) -> usize {
        if self.key.is_some() {
            self.keyed_live
        } else {
            self.scan.len() - self.scan_head
        }
    }

    /// True when no tuples are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water of [`JoinState::len`] over the state's lifetime.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Expected candidates per probe — the adaptive-order cost signal.
    /// Keyed states divide stored tuples by distinct live keys (uniform
    /// bucket estimate); scan states pay the whole window.
    pub fn estimated_candidates(&self) -> usize {
        if self.key.is_some() {
            let live_buckets = self.buckets.len() - self.empties;
            self.keyed_live / live_buckets.max(1)
        } else {
            self.len()
        }
    }

    /// Stores a tuple. Timestamps must be non-decreasing across calls
    /// (guaranteed by the join's τ = TSM-minimum processing order).
    pub fn insert(&mut self, tuple: Tuple) {
        match self.key {
            Some(col) => {
                let k = tuple.values_expect()[col].clone();
                let bucket = self.buckets.entry(k).or_default();
                if bucket.is_empty() && self.empties > 0 {
                    // Reusing a drained bucket's capacity.
                    self.empties -= 1;
                }
                bucket.push(tuple);
                self.keyed_live += 1;
            }
            None => self.scan.push(tuple),
        }
        self.peak = self.peak.max(self.len());
    }

    /// Advances the logical floor for a probe at `ts` and amortizes
    /// physical reclamation (scan: eager trim; keyed: sweep only once the
    /// floor has moved at least half a window past the last sweep).
    pub fn advance(&mut self, ts: Timestamp) {
        let floor = ts.saturating_sub(self.window);
        if floor <= self.floor {
            return;
        }
        self.floor = floor;
        if self.key.is_none() {
            self.trim_scan();
        } else {
            let lag = self.floor.duration_since(self.swept_floor);
            if lag.as_micros().saturating_mul(2) >= self.window.as_micros().max(1) {
                self.sweep_buckets();
            }
        }
    }

    /// Punctuation-driven purge at `ts`: advances the floor and forces a
    /// full physical sweep, dropping wholly-expired buckets.
    pub fn purge(&mut self, ts: Timestamp) {
        self.floor = self.floor.max(ts.saturating_sub(self.window));
        if self.key.is_none() {
            self.trim_scan();
        } else {
            self.sweep_buckets();
        }
    }

    /// Candidates for a probe: the matching bucket (keyed) or the whole
    /// live store (scan), filtered to `ts ≥ floor`. A null probe key never
    /// matches. Callers of a keyed state must pass `Some(key)`.
    pub fn probe(&self, key: Option<&Value>) -> &[Tuple] {
        let candidates: &[Tuple] = match (self.key, key) {
            (Some(_), Some(k)) => {
                if k.is_null() {
                    return &[];
                }
                match self.buckets.get(k) {
                    Some(bucket) => bucket,
                    None => return &[],
                }
            }
            (None, _) => &self.scan[self.scan_head..],
            (Some(_), None) => {
                debug_assert!(false, "keyed state probed without a key");
                return &[];
            }
        };
        // Physical purge may lag the logical floor; skip the expired front.
        let start = candidates.partition_point(|t| t.ts < self.floor);
        &candidates[start..]
    }

    fn trim_scan(&mut self) {
        let live = &self.scan[self.scan_head..];
        self.scan_head += live.partition_point(|t| t.ts < self.floor);
        if self.scan_head >= SCAN_COMPACT_MIN && self.scan_head * 2 >= self.scan.len() {
            self.scan.drain(..self.scan_head);
            self.scan_head = 0;
        }
    }

    fn sweep_buckets(&mut self) {
        let floor = self.floor;
        let mut live = 0;
        let mut empties = 0;
        for bucket in self.buckets.values_mut() {
            if bucket.last().is_some_and(|t| t.ts < floor) {
                // Whole bucket expired: drop its contents in one clear,
                // keeping capacity for the next tuple of this key.
                bucket.clear();
            } else {
                let dead = bucket.partition_point(|t| t.ts < floor);
                if dead > 0 {
                    bucket.drain(..dead);
                }
            }
            if bucket.is_empty() {
                empties += 1;
            } else {
                live += bucket.len();
            }
        }
        self.keyed_live = live;
        self.empties = empties;
        self.swept_floor = floor;
        let occupied = self.buckets.len() - empties;
        if empties >= EMPTY_BUCKET_MIN && empties >= EMPTY_BUCKET_SLACK * occupied.max(1) {
            self.buckets.retain(|_, b| !b.is_empty());
            self.empties = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(ts: u64, k: i64) -> Tuple {
        Tuple::data(Timestamp::from_micros(ts), vec![Value::Int(k)])
    }

    #[test]
    fn keyed_probe_touches_one_bucket() {
        let mut s = JoinState::new(TimeDelta::from_micros(100), Some(0));
        for ts in 0..10 {
            s.insert(data(ts, (ts % 3) as i64));
        }
        let hits = s.probe(Some(&Value::Int(1)));
        assert_eq!(hits.len(), 3, "only key-1 tuples: ts 1, 4, 7");
        assert!(hits.iter().all(|t| t.values_expect()[0] == Value::Int(1)));
        assert!(s.probe(Some(&Value::Int(99))).is_empty());
    }

    #[test]
    fn null_probe_key_never_matches() {
        let mut s = JoinState::new(TimeDelta::from_micros(100), Some(0));
        s.insert(Tuple::data(Timestamp::from_micros(1), vec![Value::Null]));
        s.insert(data(2, 5));
        assert!(s.probe(Some(&Value::Null)).is_empty());
        assert_eq!(s.probe(Some(&Value::Int(5))).len(), 1);
        assert_eq!(s.len(), 2, "null-keyed tuples still count as stored");
    }

    #[test]
    fn logical_floor_filters_before_physical_sweep() {
        let mut s = JoinState::new(TimeDelta::from_micros(100), Some(0));
        s.insert(data(10, 1));
        s.insert(data(120, 1));
        // Advance by less than half a window past the last sweep: the old
        // tuple is retained physically but must not be probeable.
        s.advance(Timestamp::from_micros(130));
        assert_eq!(s.probe(Some(&Value::Int(1))).len(), 1);
        assert_eq!(s.probe(Some(&Value::Int(1)))[0].ts.as_micros(), 120);
    }

    #[test]
    fn punctuation_purge_is_exact() {
        let mut s = JoinState::new(TimeDelta::from_micros(100), Some(0));
        for ts in [1u64, 2, 3] {
            s.insert(data(ts, ts as i64));
        }
        assert_eq!(s.len(), 3);
        s.purge(Timestamp::from_micros(500));
        assert_eq!(s.len(), 0, "all buckets wholly expired");
        assert_eq!(s.peak(), 3, "peak survives the purge");
    }

    #[test]
    fn scan_mode_trims_eagerly() {
        let mut s = JoinState::new(TimeDelta::from_micros(10), None);
        for ts in 0..50 {
            s.insert(data(ts, 0));
            s.advance(Timestamp::from_micros(ts));
        }
        assert!(s.len() <= 11, "scan store bounded by the window");
        assert_eq!(s.probe(None).len(), s.len());
    }

    #[test]
    fn estimated_candidates_reflects_partitioning() {
        let mut keyed = JoinState::new(TimeDelta::from_micros(100), Some(0));
        let mut scan = JoinState::new(TimeDelta::from_micros(100), None);
        for ts in 0..40 {
            keyed.insert(data(ts, (ts % 8) as i64));
            scan.insert(data(ts, (ts % 8) as i64));
        }
        assert_eq!(keyed.estimated_candidates(), 5, "40 tuples / 8 keys");
        assert_eq!(scan.estimated_candidates(), 40);
    }
}
