//! Shared join-state layer: key-partitioned hash indexes with
//! punctuation-driven purge and a tiered cold store.
//!
//! Both [`crate::WindowJoin`] and [`crate::MultiWindowJoin`] keep one
//! [`JoinState`] per input. Two storage modes:
//!
//! * **Keyed** — an equi-key column partitions the window into hash
//!   buckets (`key value → Vec<Tuple>` in timestamp order). A probe
//!   touches exactly one bucket, so probe cost is proportional to the
//!   number of *matching* tuples, not the window length. Bucket equality
//!   uses [`Value`]'s `Eq`, which is exactly the engine's SQL `=` on
//!   non-null operands (`Int(1) == Float(1.0)`, hash-consistent), and a
//!   null probe key returns no candidates — SQL three-valued logic.
//! * **Scan** — no key: one contiguous store in timestamp order, probed
//!   as a whole (the pre-existing cross-within-window behaviour).
//!
//! Expiry contract: the *logical* window floor (`max seen τ − window`)
//! advances on every probe and every punctuation, and no probe ever
//! returns a tuple below it — correctness does not depend on physical
//! reclamation. Physical purge is amortized: scan stores trim eagerly
//! (cheap pointer bump + periodic compaction), while keyed stores sweep
//! their buckets only when the floor has advanced by at least half a
//! window since the last sweep — or immediately on punctuation
//! ([`JoinState::purge`]), which drops wholly-expired buckets in O(1)
//! per bucket. Retained state is therefore bounded by ~1.5× the window
//! between punctuations and snaps back to the exact window at each one.
//!
//! # Tiered storage ([`TierConfig`])
//!
//! Long windows (minutes–hours) exhaust memory long before CPU if every
//! live tuple stays in row format. With a tier config, each sweep moves
//! rows that have aged past `hot_fraction` of the window out of the hot
//! row buckets into an immutable columnar **run**: values column-major,
//! timestamps as a sorted `Vec<Timestamp>` so the logical floor stays a
//! `partition_point`, and (keyed mode) a key → row-range index. Once the
//! resident run payload exceeds `budget` bytes, the oldest runs spill to
//! the state's append-only temp file ([`crate::spill::SpillFile`]); only
//! the timestamp column and the key index stay resident, so punctuation
//! retires a spilled run by dropping its entry — an unlink, never a scan
//! ("Timestamp tokens"' frontier-addressing requirement). Successive
//! runs cover disjoint ascending timestamp ranges (inserts and floor
//! advances are globally τ-ordered), so a probe that chains runs oldest
//! first and the hot bucket last reproduces exactly the candidate order
//! of an untiered state — tiering is invisible in the output.

use std::collections::{HashMap, VecDeque};

use millstream_types::{Error, Result, Row, TimeDelta, Timestamp, Tuple, Value};

use crate::spill::{ts_bytes, value_bytes, SpillFile};

/// Compact the scan store once this many expired tuples pile up in front.
const SCAN_COMPACT_MIN: usize = 32;

/// In keyed mode, drop empty buckets once they outnumber live ones by
/// this factor (plus a small constant floor so steady-state key churn
/// never triggers reallocation).
const EMPTY_BUCKET_SLACK: usize = 2;
const EMPTY_BUCKET_MIN: usize = 16;

/// Coalesce the logical-live histogram once it holds this many distinct
/// timestamps (merging adjacent entries halves it; the estimate stays
/// conservative — merged counts expire at the later timestamp).
const HIST_MAX: usize = 1024;

/// Tiered-store configuration: when present, sweeps compact cold rows
/// into columnar runs and runs beyond the byte budget spill to disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierConfig {
    /// Resident byte budget for compacted run payloads. Once exceeded,
    /// the oldest runs spill to the state's temp file; `u64::MAX`
    /// compacts to columnar but never touches disk.
    pub budget: u64,
    /// Fraction of the window a row stays in the hot row tier after
    /// arrival before a sweep may compact it (`0.0 ..= 1.0`; `1.0`
    /// disables compaction entirely).
    pub hot_fraction: f64,
    /// Minimum cold rows a sweep must find before materializing a run —
    /// amortizes per-run metadata over enough rows to be worth it.
    pub min_run_rows: usize,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            budget: u64::MAX,
            hot_fraction: 0.5,
            min_run_rows: 32,
        }
    }
}

impl TierConfig {
    /// Compaction on, spill off — the `∞` budget.
    pub fn unbounded() -> Self {
        TierConfig::default()
    }

    /// Compaction on with a resident-run byte budget.
    pub fn with_budget(budget: u64) -> Self {
        TierConfig {
            budget,
            ..TierConfig::default()
        }
    }

    /// Reads the process-wide default from `MILLSTREAM_JOIN_SPILL` (the
    /// env form of the `--join-spill-budget` knob): unset/`off` → no
    /// tiering, `unbounded` → compact but never spill, otherwise a byte
    /// budget with optional `k`/`m`/`g` suffix.
    pub fn from_env() -> Option<TierConfig> {
        TierConfig::parse(&std::env::var("MILLSTREAM_JOIN_SPILL").ok()?)
    }

    /// Parses a `--join-spill-budget` argument. `None` = tiering off.
    pub fn parse(raw: &str) -> Option<TierConfig> {
        let s = raw.trim().to_ascii_lowercase();
        match s.as_str() {
            "" | "off" => None,
            "unbounded" | "inf" | "none" => Some(TierConfig::unbounded()),
            _ => {
                let (digits, mult) = match s.as_bytes().last() {
                    Some(b'k') => (&s[..s.len() - 1], 1u64 << 10),
                    Some(b'm') => (&s[..s.len() - 1], 1u64 << 20),
                    Some(b'g') => (&s[..s.len() - 1], 1u64 << 30),
                    _ => (s.as_str(), 1),
                };
                let n: u64 = digits.parse().ok()?;
                Some(TierConfig::with_budget(n.saturating_mul(mult)))
            }
        }
    }
}

/// Lifetime tier counters, sampled by the executor into `ExecStats` and
/// `OpProfile`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SpillStats {
    /// Immutable columnar runs materialized by sweeps.
    pub compacted_runs: u64,
    /// Run payload bytes written to the disk tier.
    pub spilled_bytes: u64,
    /// Wholly-expired runs retired at a floor advance (unlinked, never
    /// scanned).
    pub run_drops: u64,
}

impl SpillStats {
    /// Accumulates another state's counters.
    pub fn merge(&mut self, other: &SpillStats) {
        self.compacted_runs += other.compacted_runs;
        self.spilled_bytes += other.spilled_bytes;
        self.run_drops += other.run_drops;
    }
}

/// Where a run's value payload lives.
enum RunValues {
    /// Column-major: column `c` of row `r` is `v[c * rows + r]`.
    Resident(Vec<Value>),
    /// A blob in the state's spill file.
    Spilled { offset: u64, len: u64 },
}

/// One immutable columnar run of cold rows.
struct Run {
    max_ts: Timestamp,
    /// Per-row timestamps in run order: keyed mode groups rows by key
    /// (ascending within each group), scan mode is globally ascending.
    /// Always resident — the floor addresses a run through this column
    /// and the run header alone, even when the payload is on disk.
    ts: Vec<Timestamp>,
    /// Keyed mode: probe key → (row start, row count). Scan mode: `None`
    /// (the whole run is one ascending range).
    index: Option<HashMap<Value, (u32, u32)>>,
    width: usize,
    /// Resident payload estimate (resident runs) / exact blob length
    /// (spilled runs).
    payload_bytes: u64,
    values: RunValues,
}

/// One input's window state for a symmetric join.
pub struct JoinState {
    /// Equi-key column index within this input's row, if any.
    key: Option<usize>,
    window: TimeDelta,
    /// Keyed mode: timestamp-ordered bucket per key value. Null-keyed
    /// tuples live under `Value::Null` but are never probed.
    buckets: HashMap<Value, Vec<Tuple>>,
    /// Scan mode: timestamp-ordered store; `scan[scan_head..]` is live.
    scan: Vec<Tuple>,
    scan_head: usize,
    /// Tuples physically retained in keyed buckets (hot tier only).
    keyed_live: usize,
    /// Buckets currently empty (retained for their capacity).
    empties: usize,
    /// Logical expiry floor: tuples with `ts < floor` never match.
    floor: Timestamp,
    /// Floor at the last physical reclamation (scan trim / bucket sweep).
    swept_floor: Timestamp,
    /// Highest timestamp observed (inserts, probes, punctuation). The
    /// cold cut anchors here rather than on the floor: the two coincide
    /// once the floor unsaturates (`floor = high − window`), but during
    /// the first window's fill the floor is pinned at zero while rows
    /// still age — compaction must not wait out the warm-up.
    high: Timestamp,
    /// `high` at the last tier compaction check, for sweep batching.
    swept_high: Timestamp,
    /// High-water of stored tuples, for peak-state accounting.
    peak: usize,
    /// Full keyed-bucket sweeps performed (lifetime) — lets tests assert
    /// that a non-advancing purge is a no-op.
    sweeps: u64,
    /// Tier config; `None` = hot rows only (the pre-tier behaviour).
    tier: Option<TierConfig>,
    /// Cold runs, oldest first; their timestamp ranges are disjoint and
    /// ascending, and every `max_ts` precedes every hot row.
    runs: VecDeque<Run>,
    /// Rows held across all runs (so `len()` reports physical retention).
    run_rows: usize,
    /// Resident payload bytes across `RunValues::Resident` runs — the
    /// quantity the spill budget bounds.
    resident_run_bytes: u64,
    /// Runs currently in `RunValues::Spilled` form.
    spilled_runs: usize,
    /// Lazily created disk tier (first spill).
    spill: Option<SpillFile>,
    /// Set after a spill I/O failure: runs stay resident from then on
    /// (graceful degradation — correctness never depends on the disk).
    spill_disabled: bool,
    stats: SpillStats,
    /// Logical-live histogram: `(ts, inserts at ts)` in arrival order.
    /// Front entries expire as the floor passes them, keeping
    /// `logical_live` an O(1)-amortized estimate that — unlike the
    /// physical `keyed_live` — never counts logically-expired tuples.
    hist: VecDeque<(Timestamp, u32)>,
    /// Tuples inserted and not yet logically expired (exact until the
    /// histogram coalesces, then a slight overestimate).
    logical_live: usize,
}

impl JoinState {
    /// A window state; `key` is the equi-key column within this input's
    /// own row (`None` = ordered scan store). No tiering.
    pub fn new(window: TimeDelta, key: Option<usize>) -> Self {
        JoinState::with_tier(window, key, None)
    }

    /// A window state with an optional tiered cold store.
    pub fn with_tier(window: TimeDelta, key: Option<usize>, tier: Option<TierConfig>) -> Self {
        JoinState {
            key,
            window,
            buckets: HashMap::new(),
            scan: Vec::new(),
            scan_head: 0,
            keyed_live: 0,
            empties: 0,
            floor: Timestamp::ZERO,
            swept_floor: Timestamp::ZERO,
            high: Timestamp::ZERO,
            swept_high: Timestamp::ZERO,
            peak: 0,
            sweeps: 0,
            tier,
            runs: VecDeque::new(),
            run_rows: 0,
            resident_run_bytes: 0,
            spilled_runs: 0,
            spill: None,
            spill_disabled: false,
            stats: SpillStats::default(),
            hist: VecDeque::new(),
            logical_live: 0,
        }
    }

    /// The equi-key column, if this state is hash-partitioned.
    pub fn key(&self) -> Option<usize> {
        self.key
    }

    /// The window length.
    pub fn window(&self) -> TimeDelta {
        self.window
    }

    /// Tuples physically retained — hot rows plus compacted run rows
    /// (physical retention may lag logical expiry by up to half a window
    /// in keyed mode between punctuations).
    pub fn len(&self) -> usize {
        let hot = if self.key.is_some() {
            self.keyed_live
        } else {
            self.scan.len() - self.scan_head
        };
        hot + self.run_rows
    }

    /// True when no tuples are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water of [`JoinState::len`] over the state's lifetime.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Full keyed-bucket sweeps performed over the state's lifetime.
    pub fn sweep_count(&self) -> u64 {
        self.sweeps
    }

    /// Floor at the last physical reclamation — exposed so tests can
    /// check `advance`/`purge` bookkeeping stays consistent.
    pub fn swept_floor(&self) -> Timestamp {
        self.swept_floor
    }

    /// Lifetime tier counters (compactions, spilled bytes, run drops).
    pub fn spill_stats(&self) -> SpillStats {
        self.stats
    }

    /// Estimated resident bytes: hot rows, run metadata (timestamp
    /// column + key index — resident even for spilled runs), and
    /// resident run payloads. Spilled payloads are *not* counted — this
    /// is the quantity the spill budget bounds, sampled by the spill
    /// bench to prove peak resident state tracks `--join-spill-budget`.
    pub fn resident_bytes(&self) -> u64 {
        let mut total = self.resident_run_bytes;
        for run in &self.runs {
            total += ts_bytes(run.ts.len());
            if let Some(index) = &run.index {
                total += (index.len() * (std::mem::size_of::<Value>() + 8)) as u64;
            }
        }
        let hot_tuples = |t: &Tuple| -> u64 {
            let mut b = std::mem::size_of::<Tuple>() as u64;
            for v in t.values_expect() {
                if let Value::Str(s) = v {
                    b += s.len() as u64;
                }
            }
            if t.width() > millstream_types::INLINE_ROW_CAP {
                b += (t.width() * std::mem::size_of::<Value>()) as u64;
            }
            b
        };
        if self.key.is_some() {
            for bucket in self.buckets.values() {
                total += bucket.iter().map(&hot_tuples).sum::<u64>();
            }
        } else {
            total += self.scan[self.scan_head..]
                .iter()
                .map(&hot_tuples)
                .sum::<u64>();
        }
        total
    }

    /// Expected candidates per probe — the adaptive-order cost signal.
    /// Keyed states divide *logically live* tuples by distinct live keys
    /// (uniform bucket estimate); scan states pay the logical window.
    /// The numerator comes from the timestamp histogram, not the
    /// physical `keyed_live`: between sweeps the physical count retains
    /// logically-expired tuples, which used to let a mostly-expired
    /// input masquerade as fat and lose the probe order it should win.
    pub fn estimated_candidates(&self) -> usize {
        if self.key.is_some() {
            let run_keys: usize = self
                .runs
                .iter()
                .map(|r| r.index.as_ref().map_or(0, HashMap::len))
                .sum();
            let live_buckets = (self.buckets.len() - self.empties) + run_keys;
            self.logical_live / live_buckets.max(1)
        } else {
            self.logical_live
        }
    }

    /// Stores a tuple. Timestamps must be non-decreasing across calls
    /// (guaranteed by the join's τ = TSM-minimum processing order).
    pub fn insert(&mut self, tuple: Tuple) {
        self.high = self.high.max(tuple.ts);
        self.note_insert(tuple.ts);
        match self.key {
            Some(col) => {
                let k = tuple.values_expect()[col].clone();
                let bucket = self.buckets.entry(k).or_default();
                if bucket.is_empty() && self.empties > 0 {
                    // Reusing a drained bucket's capacity.
                    self.empties -= 1;
                }
                bucket.push(tuple);
                self.keyed_live += 1;
            }
            None => self.scan.push(tuple),
        }
        self.peak = self.peak.max(self.len());
    }

    /// Advances the logical floor for a probe at `ts` and amortizes
    /// physical reclamation (scan: eager trim; keyed: sweep only once the
    /// floor has moved at least half a window past the last sweep, or the
    /// tier's compaction hysteresis fires). Runs wholly below the floor
    /// are dropped immediately — an O(1) header check, never a scan.
    pub fn advance(&mut self, ts: Timestamp) {
        self.high = self.high.max(ts);
        let floor = ts.saturating_sub(self.window);
        let advanced = floor > self.floor;
        if advanced {
            self.floor = floor;
            self.expire_hist();
            self.drop_expired_runs();
        }
        if self.key.is_none() {
            if advanced || self.compaction_due() {
                self.trim_scan();
            }
        } else {
            let lag = self.floor.duration_since(self.swept_floor);
            if (advanced && lag.as_micros().saturating_mul(2) >= self.window.as_micros().max(1))
                || self.compaction_due()
            {
                self.sweep_buckets();
            }
        }
    }

    /// Whether enough time has passed since the last sweep for a batch of
    /// cold rows to be worth compacting. Half the hot span is the
    /// hysteresis: the hot tier holds at most ~1.5× `hot_fraction` of the
    /// window between compactions. Always false with the tier off, so the
    /// untiered sweep cadence is exactly the pre-tier one.
    fn compaction_due(&self) -> bool {
        let Some(tier) = &self.tier else { return false };
        let keep = (self.window.as_micros() as f64 * tier.hot_fraction.clamp(0.0, 1.0)) as u64;
        let since = self.high.duration_since(self.swept_high).as_micros();
        since.saturating_mul(2) >= keep.max(1)
    }

    /// Punctuation-driven purge at `ts`: advances the floor and forces a
    /// full physical reclamation at it. When the implied floor does not
    /// pass the last reclamation point the call is a no-op — repeated or
    /// non-advancing punctuation must not pay a bucket sweep.
    pub fn purge(&mut self, ts: Timestamp) {
        self.high = self.high.max(ts);
        let floor = self.floor.max(ts.saturating_sub(self.window));
        if floor <= self.swept_floor {
            return;
        }
        self.floor = floor;
        self.expire_hist();
        self.drop_expired_runs();
        if self.key.is_none() {
            self.trim_scan();
        } else {
            self.sweep_buckets();
        }
    }

    /// Candidates for a probe, oldest first: cold runs (resident then hot
    /// in *time* order — runs never interleave) rehydrated into `scratch`,
    /// chained with the hot bucket borrowed in place. The chained order is
    /// exactly an untiered state's bucket order, so callers' output is
    /// byte-identical whatever the tier does. A null probe key never
    /// matches. Callers of a keyed state must pass `Some(key)`.
    pub fn probe<'a>(
        &'a self,
        key: Option<&Value>,
        scratch: &'a mut Vec<Tuple>,
    ) -> Result<impl Iterator<Item = &'a Tuple> + 'a> {
        scratch.clear();
        self.probe_cold(key, scratch)?;
        Ok(scratch.iter().chain(self.probe_hot(key).iter()))
    }

    /// Hot-tier candidates only: the matching bucket (keyed) or the whole
    /// live store (scan), filtered to `ts ≥ floor` — a borrowed slice,
    /// no copy. The enumeration hot path stays allocation-free.
    pub fn probe_hot(&self, key: Option<&Value>) -> &[Tuple] {
        let candidates: &[Tuple] = match (self.key, key) {
            (Some(_), Some(k)) => {
                if k.is_null() {
                    return &[];
                }
                match self.buckets.get(k) {
                    Some(bucket) => bucket,
                    None => return &[],
                }
            }
            (None, _) => &self.scan[self.scan_head..],
            (Some(_), None) => {
                debug_assert!(false, "keyed state probed without a key");
                return &[];
            }
        };
        // Physical purge may lag the logical floor; skip the expired front.
        let start = candidates.partition_point(|t| t.ts < self.floor);
        &candidates[start..]
    }

    /// Rehydrates cold candidates (resident and spilled runs, oldest
    /// first, filtered by the floor) into `out`. Returns rows appended.
    pub fn probe_cold(&self, key: Option<&Value>, out: &mut Vec<Tuple>) -> Result<usize> {
        if self.runs.is_empty() {
            return Ok(0);
        }
        let before = out.len();
        match (self.key, key) {
            (Some(_), Some(k)) => {
                if k.is_null() {
                    return Ok(0);
                }
                for run in &self.runs {
                    let Some(index) = &run.index else { continue };
                    let Some(&(start, count)) = index.get(k) else {
                        continue;
                    };
                    self.thaw_range(run, start as usize, count as usize, out)?;
                }
            }
            (None, _) => {
                for run in &self.runs {
                    self.thaw_range(run, 0, run.ts.len(), out)?;
                }
            }
            (Some(_), None) => {
                debug_assert!(false, "keyed state probed without a key");
            }
        }
        Ok(out.len() - before)
    }

    /// Rehydrates run rows `[start, start + count)` — minus the expired
    /// prefix — into `out` as row-format tuples.
    fn thaw_range(
        &self,
        run: &Run,
        start: usize,
        count: usize,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        // The range is ts-ascending: the logical floor is a partition
        // point here exactly as in a hot bucket.
        let skip = run.ts[start..start + count].partition_point(|&t| t < self.floor);
        let (start, count) = (start + skip, count - skip);
        if count == 0 {
            return Ok(());
        }
        match &run.values {
            RunValues::Resident(vals) => {
                let rows = run.ts.len();
                for r in start..start + count {
                    let mut row = Row::builder(run.width);
                    for c in 0..run.width {
                        row.push(vals[c * rows + r].clone());
                    }
                    out.push(Tuple::data(run.ts[r], row.finish()));
                }
            }
            RunValues::Spilled { offset, len } => {
                let spill = self.spill.as_ref().expect("spilled run without a file");
                let mut thawed: Vec<Vec<Value>> = Vec::new();
                spill
                    .read_rows(*offset, *len, start, count, &mut thawed)
                    .map_err(|e| Error::runtime(format!("join spill read: {e}")))?;
                for (i, vals) in thawed.into_iter().enumerate() {
                    let mut row = Row::builder(run.width);
                    for v in vals {
                        row.push(v);
                    }
                    out.push(Tuple::data(run.ts[start + i], row.finish()));
                }
            }
        }
        Ok(())
    }

    /// Records an insert in the logical-live histogram.
    fn note_insert(&mut self, ts: Timestamp) {
        self.logical_live += 1;
        if let Some(back) = self.hist.back_mut() {
            if back.0 == ts {
                back.1 += 1;
                return;
            }
        }
        if self.hist.len() >= HIST_MAX {
            // Merge adjacent entries pairwise, keeping the later
            // timestamp: merged counts expire late, so the live estimate
            // errs high (never resurrects an expired-looking input).
            let mut merged = VecDeque::with_capacity(self.hist.len() / 2 + 1);
            let mut it = self.hist.drain(..);
            while let Some((ts1, c1)) = it.next() {
                match it.next() {
                    Some((ts2, c2)) => merged.push_back((ts2, c1 + c2)),
                    None => merged.push_back((ts1, c1)),
                }
            }
            drop(it);
            self.hist = merged;
        }
        self.hist.push_back((ts, 1));
    }

    /// Expires histogram entries below the floor.
    fn expire_hist(&mut self) {
        while let Some(&(ts, count)) = self.hist.front() {
            if ts >= self.floor {
                break;
            }
            self.logical_live -= count as usize;
            self.hist.pop_front();
        }
    }

    /// Drops wholly-expired runs from the front. Runs are ts-disjoint and
    /// ascending, so this is a header comparison per dropped run — the
    /// payload (resident or spilled) is never visited. Once the last
    /// spilled run is gone the spill file is reclaimed wholesale.
    fn drop_expired_runs(&mut self) {
        while self.runs.front().is_some_and(|r| r.max_ts < self.floor) {
            let run = self.runs.pop_front().expect("front checked");
            self.run_rows -= run.ts.len();
            match run.values {
                RunValues::Resident(_) => self.resident_run_bytes -= run.payload_bytes,
                RunValues::Spilled { .. } => self.spilled_runs -= 1,
            }
            self.stats.run_drops += 1;
        }
        if self.spilled_runs == 0 {
            if let Some(file) = &mut self.spill {
                if !file.is_empty() && file.reset().is_err() {
                    self.spill_disabled = true;
                }
            }
        }
    }

    /// The timestamp below which live rows are cold: rows stay hot for
    /// `hot_fraction` of the window after arrival. Anchored on the high
    /// timestamp, which equals `floor + window` once the floor
    /// unsaturates but keeps aging rows compactable during warm-up.
    fn cold_cut(&self, tier: &TierConfig) -> Timestamp {
        let window = self.window.as_micros();
        let keep = (window as f64 * tier.hot_fraction.clamp(0.0, 1.0)) as u64;
        self.high.saturating_sub(TimeDelta::from_micros(keep))
    }

    fn trim_scan(&mut self) {
        self.swept_high = self.high;
        let live = &self.scan[self.scan_head..];
        self.scan_head += live.partition_point(|t| t.ts < self.floor);
        if let Some(tier) = self.tier {
            let cut = self.cold_cut(&tier);
            let cold = self.scan[self.scan_head..].partition_point(|t| t.ts < cut);
            if cold >= tier.min_run_rows.max(1) {
                let rows = self.scan[self.scan_head..self.scan_head + cold].to_vec();
                self.scan_head += cold;
                self.push_run(rows, None);
                self.enforce_budget();
            }
        }
        if self.scan_head >= SCAN_COMPACT_MIN && self.scan_head * 2 >= self.scan.len() {
            self.scan.drain(..self.scan_head);
            self.scan_head = 0;
            // A burst must not pin its allocation for the stream
            // lifetime: release capacity down to a small multiple of
            // the surviving rows (hysteresis avoids realloc churn).
            let target = self.scan.len() * 2 + SCAN_COMPACT_MIN;
            if self.scan.capacity() > target * 2 {
                self.scan.shrink_to(target);
            }
        }
        self.swept_floor = self.floor;
    }

    fn sweep_buckets(&mut self) {
        self.sweeps += 1;
        self.swept_high = self.high;
        let floor = self.floor;
        // Decide up front whether this sweep compacts: cold rows across
        // all buckets must clear `min_run_rows` to amortize run metadata.
        let compact_cut = self.tier.and_then(|tier| {
            let cut = self.cold_cut(&tier);
            let cold: usize = self
                .buckets
                .values()
                .map(|b| {
                    let live = b.partition_point(|t| t.ts < floor);
                    b[live..].partition_point(|t| t.ts < cut)
                })
                .sum();
            (cold >= tier.min_run_rows.max(1)).then_some(cut)
        });
        let mut cold_rows: Vec<Tuple> = Vec::new();
        let mut cold_index: Vec<(Value, u32, u32)> = Vec::new();
        let mut live = 0;
        let mut empties = 0;
        for (key, bucket) in self.buckets.iter_mut() {
            if bucket.last().is_some_and(|t| t.ts < floor) {
                // Whole bucket expired: drop its contents in one clear,
                // keeping capacity for the next tuple of this key.
                bucket.clear();
            } else {
                let dead = bucket.partition_point(|t| t.ts < floor);
                if dead > 0 {
                    bucket.drain(..dead);
                }
                if let Some(cut) = compact_cut {
                    let cold = bucket.partition_point(|t| t.ts < cut);
                    if cold > 0 {
                        let start = cold_rows.len() as u32;
                        cold_rows.extend(bucket.drain(..cold));
                        cold_index.push((key.clone(), start, cold as u32));
                    }
                }
            }
            // Same leak as the scan store: a key's burst must not pin
            // its bucket capacity forever.
            if bucket.capacity() > 8 && bucket.capacity() > bucket.len() * 4 {
                bucket.shrink_to(bucket.len() * 2);
            }
            if bucket.is_empty() {
                empties += 1;
            } else {
                live += bucket.len();
            }
        }
        self.keyed_live = live;
        self.empties = empties;
        self.swept_floor = floor;
        let occupied = self.buckets.len() - empties;
        if empties >= EMPTY_BUCKET_MIN && empties >= EMPTY_BUCKET_SLACK * occupied.max(1) {
            self.buckets.retain(|_, b| !b.is_empty());
            self.empties = 0;
            let target = self.buckets.len() * 2 + EMPTY_BUCKET_MIN;
            if self.buckets.capacity() > target * 2 {
                self.buckets.shrink_to(target);
            }
        }
        if !cold_rows.is_empty() {
            let index = cold_index
                .into_iter()
                .map(|(k, start, count)| (k, (start, count)))
                .collect();
            self.push_run(cold_rows, Some(index));
            self.enforce_budget();
        }
    }

    /// Materializes one immutable columnar run from row-format tuples.
    fn push_run(&mut self, rows: Vec<Tuple>, index: Option<HashMap<Value, (u32, u32)>>) {
        debug_assert!(!rows.is_empty());
        let n = rows.len();
        let width = rows[0].width();
        let min_ts = rows.iter().map(|t| t.ts).min().expect("non-empty");
        let max_ts = rows.iter().map(|t| t.ts).max().expect("non-empty");
        debug_assert!(
            self.runs.back().is_none_or(|r| r.max_ts < min_ts),
            "runs must cover disjoint ascending timestamp ranges"
        );
        let mut ts = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n * width);
        // Column-major: all of column 0, then column 1, …
        for c in 0..width {
            for t in &rows {
                debug_assert_eq!(t.width(), width, "join input rows share one width");
                values.push(t.values_expect()[c].clone());
            }
        }
        for t in &rows {
            ts.push(t.ts);
        }
        let payload_bytes: u64 = values.iter().map(value_bytes).sum();
        self.run_rows += n;
        self.resident_run_bytes += payload_bytes;
        self.stats.compacted_runs += 1;
        self.runs.push_back(Run {
            max_ts,
            ts,
            index,
            width,
            payload_bytes,
            values: RunValues::Resident(values),
        });
    }

    /// Spills the oldest resident runs until the resident payload fits
    /// the budget. I/O failure degrades gracefully: the run stays
    /// resident and spilling is disabled for this state.
    fn enforce_budget(&mut self) {
        let Some(tier) = self.tier else { return };
        while !self.spill_disabled && self.resident_run_bytes > tier.budget {
            let Some(idx) = self
                .runs
                .iter()
                .position(|r| matches!(r.values, RunValues::Resident(_)))
            else {
                break;
            };
            if !self.spill_run(idx) {
                self.spill_disabled = true;
            }
        }
    }

    /// Moves one resident run's payload to the disk tier. Returns false
    /// on I/O failure (the run stays resident).
    fn spill_run(&mut self, idx: usize) -> bool {
        if self.spill.is_none() {
            match SpillFile::create() {
                Ok(f) => self.spill = Some(f),
                Err(_) => return false,
            }
        }
        let file = self.spill.as_mut().expect("just ensured");
        let run = &mut self.runs[idx];
        let RunValues::Resident(values) = &run.values else {
            return true;
        };
        match file.append_run(run.ts.len(), run.width, values) {
            Ok((offset, len)) => {
                self.resident_run_bytes -= run.payload_bytes;
                self.stats.spilled_bytes += len;
                run.payload_bytes = len;
                run.values = RunValues::Spilled { offset, len };
                self.spilled_runs += 1;
                true
            }
            Err(_) => false,
        }
    }

    #[cfg(test)]
    fn scan_capacity(&self) -> usize {
        self.scan.capacity()
    }

    #[cfg(test)]
    fn resident_runs(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| matches!(r.values, RunValues::Resident(_)))
            .count()
    }

    #[cfg(test)]
    fn spilled_run_count(&self) -> usize {
        self.spilled_runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(ts: u64, k: i64) -> Tuple {
        Tuple::data(Timestamp::from_micros(ts), vec![Value::Int(k)])
    }

    fn probe_all(s: &JoinState, key: Option<&Value>) -> Vec<Tuple> {
        let mut scratch = Vec::new();
        s.probe(key, &mut scratch)
            .unwrap()
            .cloned()
            .collect::<Vec<_>>()
    }

    #[test]
    fn keyed_probe_touches_one_bucket() {
        let mut s = JoinState::new(TimeDelta::from_micros(100), Some(0));
        for ts in 0..10 {
            s.insert(data(ts, (ts % 3) as i64));
        }
        let hits = s.probe_hot(Some(&Value::Int(1)));
        assert_eq!(hits.len(), 3, "only key-1 tuples: ts 1, 4, 7");
        assert!(hits.iter().all(|t| t.values_expect()[0] == Value::Int(1)));
        assert!(s.probe_hot(Some(&Value::Int(99))).is_empty());
    }

    #[test]
    fn null_probe_key_never_matches() {
        let mut s = JoinState::new(TimeDelta::from_micros(100), Some(0));
        s.insert(Tuple::data(Timestamp::from_micros(1), vec![Value::Null]));
        s.insert(data(2, 5));
        assert!(s.probe_hot(Some(&Value::Null)).is_empty());
        assert_eq!(s.probe_hot(Some(&Value::Int(5))).len(), 1);
        assert_eq!(s.len(), 2, "null-keyed tuples still count as stored");
    }

    #[test]
    fn logical_floor_filters_before_physical_sweep() {
        let mut s = JoinState::new(TimeDelta::from_micros(100), Some(0));
        s.insert(data(10, 1));
        s.insert(data(120, 1));
        // Advance by less than half a window past the last sweep: the old
        // tuple is retained physically but must not be probeable.
        s.advance(Timestamp::from_micros(130));
        assert_eq!(s.probe_hot(Some(&Value::Int(1))).len(), 1);
        assert_eq!(s.probe_hot(Some(&Value::Int(1)))[0].ts.as_micros(), 120);
    }

    #[test]
    fn punctuation_purge_is_exact() {
        let mut s = JoinState::new(TimeDelta::from_micros(100), Some(0));
        for ts in [1u64, 2, 3] {
            s.insert(data(ts, ts as i64));
        }
        assert_eq!(s.len(), 3);
        s.purge(Timestamp::from_micros(500));
        assert_eq!(s.len(), 0, "all buckets wholly expired");
        assert_eq!(s.peak(), 3, "peak survives the purge");
    }

    #[test]
    fn scan_mode_trims_eagerly() {
        let mut s = JoinState::new(TimeDelta::from_micros(10), None);
        for ts in 0..50 {
            s.insert(data(ts, 0));
            s.advance(Timestamp::from_micros(ts));
        }
        assert!(s.len() <= 11, "scan store bounded by the window");
        assert_eq!(s.probe_hot(None).len(), s.len());
    }

    #[test]
    fn estimated_candidates_reflects_partitioning() {
        let mut keyed = JoinState::new(TimeDelta::from_micros(100), Some(0));
        let mut scan = JoinState::new(TimeDelta::from_micros(100), None);
        for ts in 0..40 {
            keyed.insert(data(ts, (ts % 8) as i64));
            scan.insert(data(ts, (ts % 8) as i64));
        }
        assert_eq!(keyed.estimated_candidates(), 5, "40 tuples / 8 keys");
        assert_eq!(scan.estimated_candidates(), 40);
    }

    #[test]
    fn estimated_candidates_ignores_logically_expired_tuples() {
        // Regression: the estimate used to divide the *physical*
        // `keyed_live` by live buckets; between sweeps it counted
        // logically-expired tuples and a mostly-dead input looked fat
        // (or, probed elsewhere, a stale input looked cheap).
        let mut s = JoinState::new(TimeDelta::from_micros(100), Some(0));
        for ts in 0..90u64 {
            s.insert(data(ts, (ts % 3) as i64));
        }
        s.insert(data(110, 0));
        // Floor 45: everything below is logically dead, but the lag (45)
        // is under half a window, so no physical sweep happened.
        s.advance(Timestamp::from_micros(145));
        assert!(s.len() > 40, "physical retention still holds stale rows");
        assert!(
            s.estimated_candidates() <= 15,
            "estimate must track logical live (~15/key), got {}",
            s.estimated_candidates()
        );
        // After the forced sweep the physical and logical views agree.
        s.purge(Timestamp::from_micros(145));
        assert_eq!(s.len(), 45 + 1);
    }

    #[test]
    fn scan_burst_releases_capacity() {
        // Regression: `trim_scan` drained expired rows but kept the
        // burst-sized allocation for the stream lifetime.
        let mut s = JoinState::new(TimeDelta::from_micros(10), None);
        for ts in 0..10_000u64 {
            s.insert(data(ts, 0));
        }
        let burst_cap = s.scan_capacity();
        assert!(burst_cap >= 10_000);
        // Everything expires; steady drip keeps the store tiny.
        for ts in 20_000..20_100u64 {
            s.insert(data(ts, 0));
            s.advance(Timestamp::from_micros(ts));
        }
        assert!(s.len() <= 11);
        assert!(
            s.scan_capacity() < burst_cap / 8,
            "burst capacity released: {} -> {}",
            burst_cap,
            s.scan_capacity()
        );
    }

    #[test]
    fn keyed_burst_releases_bucket_capacity() {
        let mut s = JoinState::new(TimeDelta::from_micros(10), Some(0));
        for ts in 0..10_000u64 {
            s.insert(data(ts, 7));
        }
        s.purge(Timestamp::from_micros(20_000));
        s.insert(data(20_001, 7));
        // The sole bucket held 10k rows; after the purge-sweep its
        // capacity must have been released.
        let cap = s.buckets.get(&Value::Int(7)).unwrap().capacity();
        assert!(cap < 10_000 / 8, "bucket capacity released, got {cap}");
    }

    #[test]
    fn non_advancing_purge_is_a_noop() {
        let mut s = JoinState::new(TimeDelta::from_micros(100), Some(0));
        for ts in 0..50u64 {
            s.insert(data(ts, (ts % 4) as i64));
        }
        s.purge(Timestamp::from_micros(130));
        let sweeps = s.sweep_count();
        let swept = s.swept_floor();
        assert_eq!(swept.as_micros(), 30);
        // Same witness again, and older ones: the floor cannot advance,
        // so no bucket sweep may run.
        s.purge(Timestamp::from_micros(130));
        s.purge(Timestamp::from_micros(90));
        s.purge(Timestamp::ZERO);
        assert_eq!(s.sweep_count(), sweeps, "non-advancing purge swept");
        assert_eq!(s.swept_floor(), swept);
    }

    #[test]
    fn swept_floor_consistent_across_interleaved_advance_and_purge() {
        let mut s = JoinState::new(TimeDelta::from_micros(100), Some(0));
        for ts in 0..200u64 {
            s.insert(data(ts, (ts % 4) as i64));
            s.advance(Timestamp::from_micros(ts));
        }
        // advance() sweeps on half-window hysteresis; swept_floor tracks
        // the last sweep, never ahead of the logical floor.
        assert!(s.swept_floor() <= Timestamp::from_micros(100));
        let sweeps_before = s.sweep_count();
        s.purge(Timestamp::from_micros(200));
        assert_eq!(s.swept_floor().as_micros(), 100, "purge reconciles");
        assert_eq!(s.sweep_count(), sweeps_before + 1);
        // A purge at the same witness after the reconciling sweep: no-op.
        s.purge(Timestamp::from_micros(200));
        assert_eq!(s.sweep_count(), sweeps_before + 1);
        // advance() below the hysteresis threshold must not sweep...
        s.advance(Timestamp::from_micros(240));
        assert_eq!(s.sweep_count(), sweeps_before + 1);
        assert_eq!(s.swept_floor().as_micros(), 100);
        // ...and purge() at that same witness must (floor moved past the
        // swept point).
        s.purge(Timestamp::from_micros(240));
        assert_eq!(s.sweep_count(), sweeps_before + 2);
        assert_eq!(s.swept_floor().as_micros(), 140);
    }

    fn tiered(window: u64, key: Option<usize>, budget: u64) -> JoinState {
        JoinState::with_tier(
            TimeDelta::from_micros(window),
            key,
            Some(TierConfig {
                budget,
                hot_fraction: 0.25,
                min_run_rows: 4,
            }),
        )
    }

    /// Drives identical inserts/advances through a plain and a tiered
    /// state, asserting identical probe results throughout.
    fn differential(budget: u64, key: Option<usize>) {
        let window = 200u64;
        let mut plain = JoinState::new(TimeDelta::from_micros(window), key);
        let mut tier = tiered(window, key, budget);
        for step in 0..2_000u64 {
            let ts = step;
            let k = (step % 16) as i64;
            plain.insert(data(ts, k));
            tier.insert(data(ts, k));
            plain.advance(Timestamp::from_micros(ts));
            tier.advance(Timestamp::from_micros(ts));
            if step % 97 == 0 {
                let probe_key = Value::Int(((step / 97) % 16) as i64);
                let pk = key.map(|_| &probe_key);
                let a: Vec<(u64, Vec<Value>)> = probe_all(&plain, pk)
                    .iter()
                    .map(|t| (t.ts.as_micros(), t.values_expect().to_vec()))
                    .collect();
                let b: Vec<(u64, Vec<Value>)> = probe_all(&tier, pk)
                    .iter()
                    .map(|t| (t.ts.as_micros(), t.values_expect().to_vec()))
                    .collect();
                assert_eq!(a, b, "tiering changed probe results at step {step}");
            }
            if step % 500 == 499 {
                plain.purge(Timestamp::from_micros(ts));
                tier.purge(Timestamp::from_micros(ts));
            }
        }
        assert!(
            tier.spill_stats().compacted_runs > 0,
            "workload must exercise compaction"
        );
        if budget == 0 {
            assert!(tier.spill_stats().spilled_bytes > 0, "tiny budget must spill");
        }
        assert!(tier.spill_stats().run_drops > 0, "purges must drop runs");
    }

    #[test]
    fn tiered_keyed_probe_equals_untiered_unbounded() {
        differential(u64::MAX, Some(0));
    }

    #[test]
    fn tiered_keyed_probe_equals_untiered_tiny_budget() {
        differential(0, Some(0));
    }

    #[test]
    fn tiered_scan_probe_equals_untiered() {
        differential(u64::MAX, None);
        differential(0, None);
    }

    #[test]
    fn runs_spill_and_drop_wholesale() {
        let mut s = tiered(100, Some(0), 0);
        for ts in 0..400u64 {
            s.insert(data(ts, (ts % 8) as i64));
            s.advance(Timestamp::from_micros(ts));
        }
        // Punctuation sweeps force compaction; budget 0 spills every run.
        s.purge(Timestamp::from_micros(399));
        assert!(s.spilled_run_count() > 0, "budget 0 must spill runs");
        assert_eq!(s.resident_runs(), 0);
        let drops_before = s.spill_stats().run_drops;
        // Jump far ahead: every run expires and is dropped by header
        // comparison; the spill file is reclaimed wholesale.
        s.purge(Timestamp::from_micros(10_000));
        assert!(s.spill_stats().run_drops > drops_before);
        assert_eq!(s.len(), 0);
        assert_eq!(s.spilled_run_count(), 0);
        assert!(s.spill.as_ref().unwrap().is_empty(), "file reclaimed");
    }

    #[test]
    fn resident_bytes_tracks_budget() {
        // String-heavy rows: the value payload (what the budget bounds)
        // dominates the per-row timestamp/index metadata that must stay
        // resident for frontier addressing.
        let run_state = |budget: u64| -> (u64, SpillStats) {
            let mut s = JoinState::with_tier(
                TimeDelta::from_micros(2_000),
                Some(0),
                Some(TierConfig {
                    budget,
                    hot_fraction: 0.1,
                    min_run_rows: 16,
                }),
            );
            let mut peak = 0u64;
            for ts in 0..8_000u64 {
                let row = vec![
                    Value::Int((ts % 32) as i64),
                    Value::str(format!("payload-{ts:-<120}")),
                ];
                s.insert(Tuple::data(Timestamp::from_micros(ts), row));
                s.advance(Timestamp::from_micros(ts));
                if ts % 250 == 249 {
                    s.purge(Timestamp::from_micros(ts));
                }
                if ts % 50 == 49 {
                    peak = peak.max(s.resident_bytes());
                }
            }
            (peak, s.spill_stats())
        };
        let (unbounded_peak, _) = run_state(u64::MAX);
        let (tiny_peak, tiny_stats) = run_state(4096);
        assert!(tiny_stats.spilled_bytes > 0);
        assert!(
            tiny_peak * 2 < unbounded_peak,
            "budgeted peak {tiny_peak} must sit well below unbounded {unbounded_peak}"
        );
    }

    #[test]
    fn tier_config_parses_budget_forms() {
        assert_eq!(TierConfig::parse("off"), None);
        assert_eq!(TierConfig::parse(""), None);
        assert_eq!(
            TierConfig::parse("unbounded").unwrap().budget,
            u64::MAX
        );
        assert_eq!(TierConfig::parse("4096").unwrap().budget, 4096);
        assert_eq!(TierConfig::parse("64k").unwrap().budget, 64 << 10);
        assert_eq!(TierConfig::parse("2m").unwrap().budget, 2 << 20);
        assert_eq!(TierConfig::parse("1g").unwrap().budget, 1 << 30);
        assert_eq!(TierConfig::parse("garbage"), None);
    }
}
