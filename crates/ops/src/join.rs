//! Symmetric window join (⋈) — the second IWP operator of the paper.
//!
//! Implements the widely accepted semantics of Kang, Naughton and Viglas
//! (ICDE'03) adopted by the paper (Fig. 1), revised with TSM registers and
//! punctuation handling per Fig. 6:
//!
//! * when `more` holds and input A's head is a **data** tuple at τ, join it
//!   against the stored window W(B), emit the results (timestamped from the
//!   A tuple), then slide the tuple into W(A) and expire W(A)'s old tuples;
//! * when the τ-witness is **punctuation**, consume it and forward a
//!   punctuation at τ — "when we cannot generate a data tuple, we simply
//!   produce a punctuation tuple for the benefit of the IWP operators down
//!   the path";
//! * punctuation also expires window contents, bounding memory.
//!
//! Window storage lives in the shared [`JoinState`] layer: an equality key
//! turns each window into a hash-partitioned index (a probe touches only
//! its own key's bucket), while keyless joins keep the ordered scan store.
//! An optional residual predicate over the concatenated row runs on the
//! surviving candidates. Forwarded punctuation is deduplicated against a
//! *punctuation* high-water only — data emissions at τ must not swallow a
//! later punctuation witness at τ, or downstream IWP operators never learn
//! τ is closed (Fig. 6 forwards them unconditionally).

use millstream_buffer::TsmBank;
use millstream_types::{Expr, Result, Schema, TimeDelta, Timestamp, Tuple};

use crate::context::{OpContext, Operator, Poll, StepOutcome};
use crate::join_state::{JoinState, SpillStats, TierConfig};

/// Configuration of one binary symmetric window join.
#[derive(Debug, Clone)]
pub struct JoinSpec {
    /// Window length for input 0 (W(A)).
    pub window_a: TimeDelta,
    /// Window length for input 1 (W(B)). Asymmetric windows are allowed
    /// (the paper notes asymmetric joins are treated like binary ones).
    pub window_b: TimeDelta,
    /// Optional equality key: (column in A, column in B).
    pub key: Option<(usize, usize)>,
    /// Optional residual predicate over the concatenated row
    /// `A-columns ++ B-columns`.
    pub residual: Option<Expr>,
    /// When a data tuple joins with zero window tuples, emit a punctuation
    /// at its timestamp so downstream IWP operators still observe time
    /// progress. Off by default (strict Fig. 6 behaviour).
    pub progress_punctuation: bool,
}

impl JoinSpec {
    /// A symmetric-window join spec with no key and no residual (cross
    /// within window).
    pub fn symmetric(window: TimeDelta) -> Self {
        JoinSpec {
            window_a: window,
            window_b: window,
            key: None,
            residual: None,
            progress_punctuation: false,
        }
    }

    /// Sets an equality key (builder style).
    pub fn with_key(mut self, left: usize, right: usize) -> Self {
        self.key = Some((left, right));
        self
    }

    /// Sets a residual predicate (builder style).
    pub fn with_residual(mut self, residual: Expr) -> Self {
        self.residual = Some(residual);
        self
    }

    /// Enables progress punctuation (builder style).
    pub fn with_progress_punctuation(mut self) -> Self {
        self.progress_punctuation = true;
        self
    }
}

/// The binary symmetric window join operator.
pub struct WindowJoin {
    name: String,
    spec: JoinSpec,
    schema: Schema,
    tsm: TsmBank,
    /// Window state per input; hash-partitioned when `spec.key` is set.
    state: [JoinState; 2],
    /// High-water of *forwarded punctuation* only. Data emissions do not
    /// advance it: a punctuation witness at τ after a data emit at τ must
    /// still be forwarded.
    punct_high_water: Option<Timestamp>,
    probes: u64,
    matches: u64,
    /// Reused rehydration buffer for cold-tier candidates (empty and
    /// never touched while the tier is off).
    cold_scratch: Vec<Tuple>,
}

impl WindowJoin {
    /// Creates a window join. `schema` is the concatenated output schema
    /// (see [`Schema::join`]).
    pub fn new(name: impl Into<String>, schema: Schema, spec: JoinSpec) -> Self {
        let (key_a, key_b) = match spec.key {
            Some((a, b)) => (Some(a), Some(b)),
            None => (None, None),
        };
        let state = [
            JoinState::new(spec.window_a, key_a),
            JoinState::new(spec.window_b, key_b),
        ];
        WindowJoin {
            name: name.into(),
            spec,
            schema,
            tsm: TsmBank::new(2),
            state,
            punct_high_water: None,
            probes: 0,
            matches: 0,
            cold_scratch: Vec::new(),
        }
    }

    /// Enables the tiered cold store on both window states (builder
    /// style). `None` keeps hot rows only.
    pub fn with_tier(mut self, tier: Option<TierConfig>) -> Self {
        let (key_a, key_b) = match self.spec.key {
            Some((a, b)) => (Some(a), Some(b)),
            None => (None, None),
        };
        self.state = [
            JoinState::with_tier(self.spec.window_a, key_a, tier),
            JoinState::with_tier(self.spec.window_b, key_b, tier),
        ];
        self
    }

    /// Estimated resident bytes across both window states (hot rows +
    /// run metadata + resident run payloads; spilled payloads excluded).
    pub fn resident_state_bytes(&self) -> u64 {
        self.state[0].resident_bytes() + self.state[1].resident_bytes()
    }

    /// Current number of tuples stored in W(A).
    pub fn window_a_len(&self) -> usize {
        self.state[0].len()
    }

    /// Current number of tuples stored in W(B).
    pub fn window_b_len(&self) -> usize {
        self.state[1].len()
    }

    /// Lifetime window probes (candidate pairs examined). With an equality
    /// key this counts only the probe key's bucket — the hash-partitioned
    /// probe never touches the rest of the window.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Lifetime matches emitted.
    pub fn matches(&self) -> u64 {
        self.matches
    }

    fn observe_heads(&mut self, ctx: &OpContext<'_>) {
        for i in 0..2 {
            if let Some(ts) = ctx.input(i).front_ts() {
                self.tsm.observe(i, ts);
            }
        }
    }

    /// Whether a candidate pair passes the residual predicate (key
    /// equality is already guaranteed by the hash bucket, or absent).
    fn residual_ok(
        spec: &JoinSpec,
        probe: &Tuple,
        stored: &Tuple,
        probe_side: usize,
    ) -> Result<bool> {
        let Some(residual) = &spec.residual else {
            return Ok(true);
        };
        let (a, b) = if probe_side == 0 {
            (probe, stored)
        } else {
            (stored, probe)
        };
        // Scratch row for the predicate only; stays on the stack for
        // narrow join widths.
        let mut row = millstream_types::Row::builder(a.width() + b.width());
        row.extend_from_slice(a.values_expect());
        row.extend_from_slice(b.values_expect());
        residual.eval_predicate(&row.finish())
    }

    /// Builds the output tuple for a matched pair with the A ++ B layout.
    fn emit_pair(probe: &Tuple, stored: &Tuple, probe_side: usize) -> Tuple {
        if probe_side == 0 {
            Tuple::join(probe, stored)
        } else {
            // The output row is A ++ B but the timestamp and entry come
            // from the probe (the newly arrived tuple), per Fig. 1: the
            // result exists only once the probe arrives.
            let mut t = Tuple::join(stored, probe);
            t.ts = probe.ts;
            t.entry = probe.entry;
            t
        }
    }

    /// Pushes a punctuation at `ts` if it advances the punctuation
    /// high-water.
    fn push_punctuation(&mut self, ctx: &OpContext<'_>, ts: Timestamp) -> Result<usize> {
        if self.punct_high_water.is_some_and(|hw| ts <= hw) {
            return Ok(0);
        }
        self.punct_high_water = Some(ts);
        ctx.output_mut(0).push(Tuple::punctuation(ts))?;
        Ok(1)
    }
}

impl Operator for WindowJoin {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_iwp(&self) -> bool {
        true
    }

    fn tsm_min(&self) -> Option<Timestamp> {
        self.tsm.min_tau()
    }

    fn num_inputs(&self) -> usize {
        2
    }

    fn state_tuples(&self) -> usize {
        self.state[0].len() + self.state[1].len()
    }

    fn spill_stats(&self) -> SpillStats {
        let mut s = self.state[0].spill_stats();
        s.merge(&self.state[1].spill_stats());
        s
    }

    fn output_schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self, ctx: &OpContext<'_>) -> Poll {
        self.observe_heads(ctx);
        match self.tsm.min_tau() {
            None => Poll::Starved {
                starving: self.tsm.argmin(),
            },
            Some(tau) => {
                if (0..2).any(|i| ctx.input(i).front_ts() == Some(tau)) {
                    Poll::Ready
                } else {
                    Poll::Starved {
                        starving: self.tsm.argmin(),
                    }
                }
            }
        }
    }

    fn step(&mut self, ctx: &OpContext<'_>) -> Result<StepOutcome> {
        self.observe_heads(ctx);
        let Some(tau) = self.tsm.min_tau() else {
            return Ok(StepOutcome::default());
        };

        // Prefer a data tuple at τ (Fig. 6: the punctuation-only production
        // applies when *neither* input holds a data tuple at τ).
        let mut side = None;
        for i in 0..2 {
            let input = ctx.input(i);
            if let Some(head) = input.front() {
                if head.ts == tau && head.is_data() {
                    side = Some(i);
                    break;
                }
            }
        }

        match side {
            Some(i) => {
                let probe = ctx.input_mut(i).pop().expect("head checked");
                let other = 1 - i;
                // Advance the opposite window's expiry floor to the probe
                // timestamp, then probe in place — candidates are borrowed
                // straight from the store, no snapshot.
                self.state[other].advance(probe.ts);
                let probe_key = self.spec.key.map(|(ka, kb)| {
                    let col = if i == 0 { ka } else { kb };
                    &probe.values_expect()[col]
                });
                // Candidates chain cold runs (oldest first) before the
                // hot bucket — the same timestamp order an untiered
                // window stores, so emission order is tier-invariant.
                let candidates = self.state[other].probe(probe_key, &mut self.cold_scratch)?;
                let mut probes = 0u64;
                let mut matches = 0u64;
                let mut produced = 0usize;
                for stored in candidates {
                    probes += 1;
                    if Self::residual_ok(&self.spec, &probe, stored, i)? {
                        matches += 1;
                        // Join results share the probe's timestamp; emit
                        // in stable window order.
                        ctx.output_mut(0).push(Self::emit_pair(&probe, stored, i))?;
                        produced += 1;
                    }
                }
                let work = probes as usize;
                self.probes += probes;
                self.matches += matches;
                if produced == 0 && self.spec.progress_punctuation {
                    produced += self.push_punctuation(ctx, probe.ts)?;
                }
                // Consumption: slide the probe into its own window and
                // advance that window's floor too.
                let probe_ts = probe.ts;
                self.state[i].advance(probe_ts);
                self.state[i].insert(probe);
                Ok(StepOutcome {
                    consumed: 1,
                    produced,
                    work,
                })
            }
            None => {
                // Neither input holds a data tuple at τ: the witness is a
                // punctuation. Consume it and forward a punctuation at τ.
                let mut consumed = 0;
                for i in 0..2 {
                    let is_tau_punct = {
                        let input = ctx.input(i);
                        input
                            .front()
                            .is_some_and(|h| h.ts == tau && h.is_punctuation())
                    };
                    if is_tau_punct {
                        ctx.input_mut(i).pop();
                        consumed = 1;
                        break;
                    }
                }
                if consumed == 0 {
                    return Ok(StepOutcome::default());
                }
                // Punctuation drives the full physical purge of both
                // windows (the amortized data-path sweep only trims).
                self.state[0].purge(tau);
                self.state[1].purge(tau);
                let produced = self.push_punctuation(ctx, tau)?;
                Ok(StepOutcome {
                    consumed,
                    produced,
                    work: 0,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_buffer::Buffer;
    use millstream_types::{DataType, Field, Value};
    use std::cell::RefCell;

    fn out_schema() -> Schema {
        let a = Schema::new(vec![Field::new("x", DataType::Int)]);
        let b = Schema::new(vec![Field::new("y", DataType::Int)]);
        a.join(&b, "a", "b")
    }

    fn data(ts: u64, v: i64) -> Tuple {
        Tuple::data(Timestamp::from_micros(ts), vec![Value::Int(v)])
    }

    struct Rig {
        a: RefCell<Buffer>,
        b: RefCell<Buffer>,
        out: RefCell<Buffer>,
    }

    impl Rig {
        fn new() -> Self {
            Rig {
                a: RefCell::new(Buffer::new("a")),
                b: RefCell::new(Buffer::new("b")),
                out: RefCell::new(Buffer::new("out")),
            }
        }

        fn drain(&self, j: &mut WindowJoin) -> Vec<Tuple> {
            let inputs = [&self.a, &self.b];
            let outputs = [&self.out];
            let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
            while j.poll(&ctx).is_ready() {
                j.step(&ctx).unwrap();
            }
            let mut got = vec![];
            while let Some(t) = self.out.borrow_mut().pop() {
                got.push(t);
            }
            got
        }
    }

    #[test]
    fn joins_within_window() {
        let rig = Rig::new();
        let mut j = WindowJoin::new(
            "⋈",
            out_schema(),
            JoinSpec::symmetric(TimeDelta::from_micros(10)).with_key(0, 0),
        );
        rig.a.borrow_mut().push(data(1, 7)).unwrap();
        rig.b.borrow_mut().push(data(5, 7)).unwrap();
        // Advance A past B's tuple so B's probe is enabled (without this
        // ETS the join idle-waits on A — the paper's core observation).
        rig.a
            .borrow_mut()
            .push(Tuple::punctuation(Timestamp::from_micros(10)))
            .unwrap();
        let out = rig.drain(&mut j);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ts.as_micros(), 5, "result takes probe timestamp");
        assert_eq!(
            out[0].values().unwrap(),
            &[Value::Int(7), Value::Int(7)],
            "row layout is A ++ B regardless of probe side"
        );
        assert_eq!(j.matches(), 1);
    }

    #[test]
    fn window_expiry_prevents_stale_matches() {
        let rig = Rig::new();
        let mut j = WindowJoin::new(
            "⋈",
            out_schema(),
            JoinSpec::symmetric(TimeDelta::from_micros(10)).with_key(0, 0),
        );
        rig.a.borrow_mut().push(data(1, 7)).unwrap();
        rig.b.borrow_mut().push(data(50, 7)).unwrap();
        // Give A a second tuple so τ reaches 50.
        rig.a.borrow_mut().push(data(60, 8)).unwrap();
        let out = rig.drain(&mut j);
        assert!(out.is_empty(), "ts 1 expired before probe at 50");
        assert_eq!(j.window_b_len(), 1);
    }

    #[test]
    fn cross_join_without_key() {
        let rig = Rig::new();
        let mut j = WindowJoin::new(
            "⋈",
            out_schema(),
            JoinSpec::symmetric(TimeDelta::from_micros(100)),
        );
        rig.a.borrow_mut().push(data(1, 1)).unwrap();
        rig.a.borrow_mut().push(data(2, 2)).unwrap();
        rig.a
            .borrow_mut()
            .push(Tuple::punctuation(Timestamp::from_micros(10)))
            .unwrap();
        rig.b.borrow_mut().push(data(3, 3)).unwrap();
        let out = rig.drain(&mut j);
        let datas: Vec<&Tuple> = out.iter().filter(|t| t.is_data()).collect();
        // B's tuple at 3 probes W(A) = {1, 2} → two results.
        assert_eq!(datas.len(), 2);
        assert!(datas.iter().all(|t| t.ts.as_micros() == 3));
    }

    #[test]
    fn residual_predicate_filters_pairs() {
        let rig = Rig::new();
        // Join where a.x < b.y (columns 0 and 1 of the concatenated row).
        let mut j = WindowJoin::new(
            "⋈",
            out_schema(),
            JoinSpec::symmetric(TimeDelta::from_micros(100))
                .with_residual(Expr::col(0).lt(Expr::col(1))),
        );
        rig.a.borrow_mut().push(data(1, 5)).unwrap();
        rig.a
            .borrow_mut()
            .push(Tuple::punctuation(Timestamp::from_micros(5)))
            .unwrap();
        rig.b.borrow_mut().push(data(2, 3)).unwrap();
        rig.b.borrow_mut().push(data(2, 9)).unwrap();
        let out = rig.drain(&mut j);
        let datas: Vec<&Tuple> = out.iter().filter(|t| t.is_data()).collect();
        assert_eq!(datas.len(), 1);
        assert_eq!(datas[0].values().unwrap(), &[Value::Int(5), Value::Int(9)]);
    }

    #[test]
    fn punctuation_witness_is_forwarded() {
        let rig = Rig::new();
        let mut j = WindowJoin::new(
            "⋈",
            out_schema(),
            JoinSpec::symmetric(TimeDelta::from_micros(10)),
        );
        rig.a.borrow_mut().push(data(20, 1)).unwrap();
        rig.b
            .borrow_mut()
            .push(Tuple::punctuation(Timestamp::from_micros(5)))
            .unwrap();
        let out = rig.drain(&mut j);
        // τ=5 witnessed only by punctuation → forward punct(5). Then τ=20
        // on A but B's register is 5 < 20 and B is empty → starve.
        assert_eq!(out.len(), 1);
        assert!(out[0].is_punctuation());
        assert_eq!(out[0].ts.as_micros(), 5);
        // The data tuple was *not* consumed.
        assert_eq!(rig.a.borrow().len(), 1);
    }

    #[test]
    fn punctuation_expires_windows() {
        let rig = Rig::new();
        let mut j = WindowJoin::new(
            "⋈",
            out_schema(),
            JoinSpec::symmetric(TimeDelta::from_micros(10)),
        );
        rig.a.borrow_mut().push(data(1, 1)).unwrap();
        rig.a
            .borrow_mut()
            .push(Tuple::punctuation(Timestamp::from_micros(3)))
            .unwrap();
        rig.b.borrow_mut().push(data(2, 2)).unwrap();
        rig.drain(&mut j);
        assert_eq!(j.window_a_len(), 1);
        assert_eq!(j.window_b_len(), 1);
        // ETS far in the future on both inputs expires everything.
        rig.a
            .borrow_mut()
            .push(Tuple::punctuation(Timestamp::from_micros(1_000)))
            .unwrap();
        rig.b
            .borrow_mut()
            .push(Tuple::punctuation(Timestamp::from_micros(1_000)))
            .unwrap();
        rig.drain(&mut j);
        assert_eq!(j.window_a_len(), 0);
        assert_eq!(j.window_b_len(), 0);
    }

    #[test]
    fn progress_punctuation_mode() {
        let rig = Rig::new();
        let mut j = WindowJoin::new(
            "⋈",
            out_schema(),
            JoinSpec::symmetric(TimeDelta::from_micros(10))
                .with_key(0, 0)
                .with_progress_punctuation(),
        );
        rig.a.borrow_mut().push(data(1, 7)).unwrap();
        rig.a
            .borrow_mut()
            .push(Tuple::punctuation(Timestamp::from_micros(9)))
            .unwrap();
        rig.b.borrow_mut().push(data(2, 999)).unwrap(); // no match
        let out = rig.drain(&mut j);
        // Probe at τ=1 finds empty W(B) → punct(1); probe at 2 misses → punct(2).
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|t| t.is_punctuation()));
        assert_eq!(out[1].ts.as_micros(), 2);
    }

    #[test]
    fn nulls_never_join_on_key() {
        let rig = Rig::new();
        let mut j = WindowJoin::new(
            "⋈",
            out_schema(),
            JoinSpec::symmetric(TimeDelta::from_micros(100)).with_key(0, 0),
        );
        rig.a
            .borrow_mut()
            .push(Tuple::data(Timestamp::from_micros(1), vec![Value::Null]))
            .unwrap();
        rig.b
            .borrow_mut()
            .push(Tuple::data(Timestamp::from_micros(2), vec![Value::Null]))
            .unwrap();
        let out = rig.drain(&mut j);
        assert!(out.is_empty());
    }

    #[test]
    fn starves_without_second_input() {
        let rig = Rig::new();
        let mut j = WindowJoin::new(
            "⋈",
            out_schema(),
            JoinSpec::symmetric(TimeDelta::from_micros(10)),
        );
        rig.a.borrow_mut().push(data(1, 1)).unwrap();
        let inputs = [&rig.a, &rig.b];
        let outputs = [&rig.out];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        assert_eq!(j.poll(&ctx), Poll::starved_on(1));
    }

    #[test]
    fn simultaneous_tuples_join_both_ways() {
        let rig = Rig::new();
        let mut j = WindowJoin::new(
            "⋈",
            out_schema(),
            JoinSpec::symmetric(TimeDelta::from_micros(100)),
        );
        rig.a.borrow_mut().push(data(5, 1)).unwrap();
        rig.b.borrow_mut().push(data(5, 2)).unwrap();
        let out = rig.drain(&mut j);
        // One of the two orders: first probe sees an empty opposite window,
        // second probe matches — exactly one result either way.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ts.as_micros(), 5);
    }

    #[test]
    fn punctuation_after_same_ts_data_is_forwarded() {
        // Regression: a data emission at τ used to advance the shared
        // high-water, swallowing a punctuation witness at the same τ —
        // downstream IWP operators never learned τ was closed.
        let rig = Rig::new();
        let mut j = WindowJoin::new(
            "⋈",
            out_schema(),
            JoinSpec::symmetric(TimeDelta::from_micros(10)).with_key(0, 0),
        );
        rig.a.borrow_mut().push(data(1, 7)).unwrap();
        rig.a
            .borrow_mut()
            .push(Tuple::punctuation(Timestamp::from_micros(5)))
            .unwrap();
        rig.b.borrow_mut().push(data(5, 7)).unwrap();
        rig.b
            .borrow_mut()
            .push(Tuple::punctuation(Timestamp::from_micros(5)))
            .unwrap();
        let out = rig.drain(&mut j);
        // B's probe at τ=5 emits the join result, then the punctuation
        // witnesses at τ=5 must still be forwarded (once).
        assert_eq!(out.len(), 2, "data result then forwarded punct: {out:?}");
        assert!(out[0].is_data());
        assert_eq!(out[0].ts.as_micros(), 5);
        assert!(
            out[1].is_punctuation(),
            "punct at τ after data at τ forwarded"
        );
        assert_eq!(out[1].ts.as_micros(), 5);
    }

    #[test]
    fn keyed_probe_touches_only_its_bucket() {
        let rig = Rig::new();
        let mut j = WindowJoin::new(
            "⋈",
            out_schema(),
            JoinSpec::symmetric(TimeDelta::from_micros(1_000)).with_key(0, 0),
        );
        // 20 tuples across 4 keys in W(A), then one probe for key 2.
        for ts in 0..20u64 {
            rig.a.borrow_mut().push(data(ts, (ts % 4) as i64)).unwrap();
        }
        rig.a
            .borrow_mut()
            .push(Tuple::punctuation(Timestamp::from_micros(50)))
            .unwrap();
        rig.b.borrow_mut().push(data(30, 2)).unwrap();
        let out = rig.drain(&mut j);
        let datas: Vec<&Tuple> = out.iter().filter(|t| t.is_data()).collect();
        assert_eq!(datas.len(), 5, "keys {{2, 6, 10, 14, 18}} match");
        assert_eq!(j.probes(), 5, "hash probe examined only the key-2 bucket");
    }
}
