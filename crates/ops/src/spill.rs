//! Disk tier for compacted join-state runs.
//!
//! One [`SpillFile`] per [`crate::JoinState`]: an anonymous temp file
//! (created then immediately unlinked on unix, so the OS reclaims it the
//! moment the state drops) holding append-only run blobs. Each blob stores
//! one immutable columnar run — value columns back to back, each column
//! either a fixed 9-byte-per-row block or a var-length block with a row
//! offset table — closed by a footer index of column offsets and kinds, so
//! a reader can address any (column, row range) without scanning.
//!
//! Reads go through positioned `pread`s (`std::os::unix::fs::FileExt::
//! read_exact_at`) against the OS page cache. A true `mmap` mapping would
//! need the `libc`/`memmap2` crates, which the offline vendor set does not
//! carry; the access pattern — shared, page-granular reads of an
//! append-only file — is the same, and `pread` keeps the reader `&self`
//! (no seek cursor), which the probe path requires.
//!
//! Timestamps are *not* written here: the in-memory run keeps its sorted
//! `Vec<Timestamp>` resident so punctuation can retire a spilled run — and
//! the floor can `partition_point` into it — without touching the disk
//! tier at all (the frontier-addressing requirement).

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use millstream_types::{Timestamp, Value};

/// Blob footer magic ("MSRN").
const MAGIC: u32 = 0x4D53_524E;

/// Column block kinds.
const KIND_FIXED: u8 = 0;
const KIND_VAR: u8 = 1;

/// Fixed-block cell: 1 tag byte + 8 payload bytes.
const FIXED_CELL: usize = 9;

/// Value tags shared by both block kinds.
const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_STR: u8 = 4;

/// Distinguishes concurrently-created spill files of one process.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Positioned read: `pread` on unix (no cursor, works through `&File`),
/// a cloned-handle seek+read elsewhere.
fn read_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, offset)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = file.try_clone()?;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }
}

/// The append-only disk tier of one join state.
pub struct SpillFile {
    file: File,
    /// Bytes appended so far (= offset of the next blob).
    len: u64,
    /// Retained only on platforms where the open file cannot be unlinked;
    /// deleted on drop.
    cleanup_path: Option<PathBuf>,
}

impl SpillFile {
    /// Creates the state's temp file. On unix the path is unlinked
    /// immediately, so the file is anonymous and cannot leak.
    pub fn create() -> io::Result<SpillFile> {
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "millstream-join-spill-{}-{}.run",
            std::process::id(),
            seq
        ));
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create_new(true)
            .open(&path)?;
        let cleanup_path = if cfg!(unix) {
            std::fs::remove_file(&path)?;
            None
        } else {
            Some(path)
        };
        Ok(SpillFile {
            file,
            len: 0,
            cleanup_path,
        })
    }

    /// True when no blob is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reclaims the file once every spilled run has been dropped by
    /// punctuation — the wholesale analogue of a run drop.
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.len = 0;
        Ok(())
    }

    /// Appends one run blob. `values` is column-major (`values[c * rows +
    /// r]` is column `c` of row `r`, `values.len() == rows * width`).
    /// Returns the blob's `(offset, length)`.
    pub fn append_run(&mut self, rows: usize, width: usize, values: &[Value]) -> io::Result<(u64, u64)> {
        debug_assert_eq!(values.len(), rows * width);
        let offset = self.len;
        let mut blob: Vec<u8> = Vec::with_capacity(values.len() * FIXED_CELL + width * 9 + 12);
        let mut col_offs = Vec::with_capacity(width);
        let mut col_kinds = Vec::with_capacity(width);
        for c in 0..width {
            col_offs.push(blob.len() as u64);
            let col = &values[c * rows..(c + 1) * rows];
            let kind = if col.iter().any(|v| matches!(v, Value::Str(_))) {
                KIND_VAR
            } else {
                KIND_FIXED
            };
            col_kinds.push(kind);
            blob.push(kind);
            match kind {
                KIND_FIXED => {
                    for v in col {
                        let mut cell = [0u8; FIXED_CELL];
                        encode_fixed(v, &mut cell);
                        blob.extend_from_slice(&cell);
                    }
                }
                _ => {
                    // Row offset table (rows + 1 entries, relative to the
                    // byte stream that follows it), then the byte stream.
                    let table_at = blob.len();
                    blob.resize(table_at + 4 * (rows + 1), 0);
                    let mut bytes: Vec<u8> = Vec::new();
                    for (r, v) in col.iter().enumerate() {
                        let off = bytes.len() as u32;
                        blob[table_at + 4 * r..table_at + 4 * (r + 1)]
                            .copy_from_slice(&off.to_le_bytes());
                        encode_var(v, &mut bytes);
                    }
                    let end = bytes.len() as u32;
                    blob[table_at + 4 * rows..table_at + 4 * (rows + 1)]
                        .copy_from_slice(&end.to_le_bytes());
                    blob.extend_from_slice(&bytes);
                }
            }
        }
        // Footer index: column offsets, column kinds, geometry, magic.
        for off in &col_offs {
            blob.extend_from_slice(&off.to_le_bytes());
        }
        blob.extend_from_slice(&col_kinds);
        blob.extend_from_slice(&(rows as u32).to_le_bytes());
        blob.extend_from_slice(&(width as u32).to_le_bytes());
        blob.extend_from_slice(&MAGIC.to_le_bytes());
        self.file.write_all(&blob)?;
        self.len += blob.len() as u64;
        Ok((offset, blob.len() as u64))
    }

    /// Reads rows `[start, start + count)` of a spilled blob back into
    /// row-major value vectors. Only the footer, the needed slice of each
    /// fixed column, and the needed offset/byte ranges of var columns are
    /// read — never the whole file and never rows outside the range.
    pub fn read_rows(
        &self,
        offset: u64,
        blob_len: u64,
        start: usize,
        count: usize,
        out: &mut Vec<Vec<Value>>,
    ) -> io::Result<()> {
        // Footer first: it is the blob's index.
        let mut tail = [0u8; 12];
        read_at(&self.file, &mut tail, offset + blob_len - 12)?;
        let rows = u32::from_le_bytes(tail[0..4].try_into().unwrap()) as usize;
        let width = u32::from_le_bytes(tail[4..8].try_into().unwrap()) as usize;
        let magic = u32::from_le_bytes(tail[8..12].try_into().unwrap());
        if magic != MAGIC || start + count > rows {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "spill blob footer corrupt",
            ));
        }
        let footer_len = (8 + 1) * width + 12;
        let mut footer = vec![0u8; footer_len - 12];
        read_at(&self.file, &mut footer, offset + blob_len - footer_len as u64)?;
        let col_off = |c: usize| -> u64 {
            u64::from_le_bytes(footer[8 * c..8 * (c + 1)].try_into().unwrap())
        };
        let col_kind = |c: usize| -> u8 { footer[8 * width + c] };

        out.clear();
        out.resize_with(count, || Vec::with_capacity(width));
        let mut buf: Vec<u8> = Vec::new();
        for c in 0..width {
            let block = offset + col_off(c);
            match col_kind(c) {
                KIND_FIXED => {
                    buf.resize(FIXED_CELL * count, 0);
                    read_at(
                        &self.file,
                        &mut buf,
                        block + 1 + (FIXED_CELL * start) as u64,
                    )?;
                    for (r, cell) in buf.chunks_exact(FIXED_CELL).enumerate() {
                        out[r].push(decode_fixed(cell)?);
                    }
                }
                KIND_VAR => {
                    // Row offsets for [start, start + count], then exactly
                    // the byte range those offsets span.
                    let mut offs = vec![0u8; 4 * (count + 1)];
                    read_at(&self.file, &mut offs, block + 1 + (4 * start) as u64)?;
                    let off_at = |i: usize| -> usize {
                        u32::from_le_bytes(offs[4 * i..4 * (i + 1)].try_into().unwrap()) as usize
                    };
                    let bytes_base = block + 1 + (4 * (rows + 1)) as u64;
                    let (lo, hi) = (off_at(0), off_at(count));
                    if hi < lo {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "spill blob offsets corrupt",
                        ));
                    }
                    buf.resize(hi - lo, 0);
                    read_at(&self.file, &mut buf, bytes_base + lo as u64)?;
                    for r in 0..count {
                        let cell = &buf[off_at(r) - lo..off_at(r + 1) - lo];
                        out[r].push(decode_var(cell)?);
                    }
                }
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "spill blob column kind corrupt",
                    ))
                }
            }
        }
        Ok(())
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        if let Some(path) = self.cleanup_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn encode_fixed(v: &Value, cell: &mut [u8; FIXED_CELL]) {
    match v {
        Value::Null => cell[0] = TAG_NULL,
        Value::Int(i) => {
            cell[0] = TAG_INT;
            cell[1..9].copy_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            cell[0] = TAG_FLOAT;
            cell[1..9].copy_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Bool(b) => {
            cell[0] = TAG_BOOL;
            cell[1] = *b as u8;
        }
        Value::Str(_) => unreachable!("var column routed to KIND_VAR"),
    }
}

fn decode_fixed(cell: &[u8]) -> io::Result<Value> {
    let payload = |hi: usize| -> [u8; 8] { cell[1..1 + hi].try_into().unwrap() };
    match cell[0] {
        TAG_NULL => Ok(Value::Null),
        TAG_INT => Ok(Value::Int(i64::from_le_bytes(payload(8)))),
        TAG_FLOAT => Ok(Value::Float(f64::from_bits(u64::from_le_bytes(payload(8))))),
        TAG_BOOL => Ok(Value::Bool(cell[1] != 0)),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "spill cell tag corrupt",
        )),
    }
}

fn encode_var(v: &Value, bytes: &mut Vec<u8>) {
    match v {
        Value::Str(s) => {
            bytes.push(TAG_STR);
            bytes.extend_from_slice(s.as_bytes());
        }
        other => {
            let mut cell = [0u8; FIXED_CELL];
            encode_fixed(other, &mut cell);
            let used = match other {
                Value::Null => 1,
                Value::Bool(_) => 2,
                _ => FIXED_CELL,
            };
            bytes.extend_from_slice(&cell[..used]);
        }
    }
}

fn decode_var(cell: &[u8]) -> io::Result<Value> {
    if cell.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "spill var cell empty",
        ));
    }
    if cell[0] == TAG_STR {
        let s = std::str::from_utf8(&cell[1..])
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "spill string not utf-8"))?;
        // Interned: repeated spilled payloads rehydrate to one shared Arc.
        Ok(Value::str(s))
    } else {
        decode_fixed(cell)
    }
}

/// Resident-footprint estimate of one value (enum slot + string payload;
/// shared `Arc<str>` payloads are charged per reference, an upper bound).
pub fn value_bytes(v: &Value) -> u64 {
    let base = std::mem::size_of::<Value>() as u64;
    match v {
        Value::Str(s) => base + s.len() as u64,
        _ => base,
    }
}

/// Resident-footprint estimate of a run's timestamp column.
pub fn ts_bytes(rows: usize) -> u64 {
    (rows * std::mem::size_of::<Timestamp>()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rows: usize, width: usize, values: Vec<Value>, start: usize, count: usize) {
        let mut f = SpillFile::create().expect("temp spill file");
        let (off, len) = f.append_run(rows, width, &values).unwrap();
        let mut got = Vec::new();
        f.read_rows(off, len, start, count, &mut got).unwrap();
        assert_eq!(got.len(), count);
        for (i, row) in got.iter().enumerate() {
            let r = start + i;
            for c in 0..width {
                assert_eq!(row[c], values[c * rows + r], "row {r} col {c}");
            }
        }
    }

    #[test]
    fn fixed_columns_roundtrip() {
        let rows = 7;
        let mut values = Vec::new();
        // col 0: ints; col 1: mixed null/float/bool (still fixed-width).
        for r in 0..rows {
            values.push(Value::Int(r as i64 * 3 - 5));
        }
        for r in 0..rows {
            values.push(match r % 3 {
                0 => Value::Null,
                1 => Value::Float(r as f64 / 2.0),
                _ => Value::Bool(r % 2 == 0),
            });
        }
        roundtrip(rows, 2, values.clone(), 0, rows);
        roundtrip(rows, 2, values, 3, 2);
    }

    #[test]
    fn var_columns_roundtrip() {
        let rows = 5;
        let mut values = Vec::new();
        for r in 0..rows {
            values.push(if r % 2 == 0 {
                Value::str(format!("payload-{r}"))
            } else {
                Value::Int(r as i64)
            });
        }
        roundtrip(rows, 1, values.clone(), 0, rows);
        roundtrip(rows, 1, values, 2, 2);
    }

    #[test]
    fn multiple_runs_are_independent_and_reset_reclaims() {
        let mut f = SpillFile::create().unwrap();
        let a = vec![Value::Int(1), Value::Int(2)];
        let b = vec![Value::str("x"), Value::str("y"), Value::str("z")];
        let (oa, la) = f.append_run(2, 1, &a).unwrap();
        let (ob, lb) = f.append_run(3, 1, &b).unwrap();
        assert_eq!(ob, la, "append-only: second blob starts where the first ends");
        let mut got = Vec::new();
        f.read_rows(oa, la, 0, 2, &mut got).unwrap();
        assert_eq!(got[1][0], Value::Int(2));
        f.read_rows(ob, lb, 1, 2, &mut got).unwrap();
        assert_eq!(got[0][0], Value::str("y"));
        f.reset().unwrap();
        assert!(f.is_empty());
        let (oc, _) = f.append_run(2, 1, &a).unwrap();
        assert_eq!(oc, 0, "reset reclaims the file wholesale");
    }
}
