//! Union (∪) — the paper's canonical idle-waiting-prone operator.
//!
//! Union is "a sort-merge operation that combines its input data streams
//! into a single output stream where tuples are ordered by their timestamp
//! values" (paper §1). This implementation follows the *revised* rules of
//! Fig. 6:
//!
//! * each input has a TSM register updated with the timestamp of its
//!   current head tuple (data or punctuation);
//! * the **relaxed `more` condition** (Fig. 5) holds iff some input holds a
//!   tuple whose timestamp equals τ, the minimum over the TSM registers;
//! * one step delivers one τ-tuple to the output — punctuation included,
//!   since downstream IWP operators need the ETS too.
//!
//! When constructed in **latent mode** ([`Union::latent`]) the operator
//! implements §5's latent-timestamp discipline: tuples are forwarded the
//! moment they arrive and are timestamped on the fly, so idle-waiting is
//! impossible. This is experimental line **D**, the latency lower bound.

use millstream_buffer::TsmBank;
use millstream_types::{Result, Schema, Timestamp};

use crate::context::{BatchOutcome, OpContext, Operator, Poll, StepOutcome};

/// The n-ary merging union operator.
pub struct Union {
    name: String,
    schema: Schema,
    inputs: usize,
    tsm: TsmBank,
    /// Latent-timestamp mode: forward immediately, no ordering checks.
    latent: bool,
    /// Round-robin pointer for fairness in latent mode and among ties.
    next_input: usize,
    /// Highest timestamp emitted (used to monotonize latent stamps and to
    /// suppress duplicate punctuation).
    emitted_high_water: Option<Timestamp>,
    forwarded_data: u64,
    forwarded_punct: u64,
    suppressed_punct: u64,
}

impl Union {
    /// Creates an n-ary ordered (timestamp-merging) union.
    pub fn new(name: impl Into<String>, schema: Schema, inputs: usize) -> Self {
        assert!(inputs >= 2, "union needs at least two inputs");
        Union {
            name: name.into(),
            schema,
            inputs,
            tsm: TsmBank::new(inputs),
            latent: false,
            next_input: 0,
            emitted_high_water: None,
            forwarded_data: 0,
            forwarded_punct: 0,
            suppressed_punct: 0,
        }
    }

    /// Creates a latent-timestamp union (paper §5, experiment line D):
    /// tuples are forwarded as soon as they arrive and stamped with the
    /// current clock on the way out.
    pub fn latent(name: impl Into<String>, schema: Schema, inputs: usize) -> Self {
        let mut u = Union::new(name, schema, inputs);
        u.latent = true;
        u
    }

    /// Number of data tuples forwarded.
    pub fn forwarded_data(&self) -> u64 {
        self.forwarded_data
    }

    /// Number of punctuation tuples forwarded.
    pub fn forwarded_punctuation(&self) -> u64 {
        self.forwarded_punct
    }

    /// Number of punctuation tuples consumed without forwarding (their ETS
    /// did not advance the output high-water mark).
    pub fn suppressed_punctuation(&self) -> u64 {
        self.suppressed_punct
    }

    /// Current τ (minimum over TSM registers), if all inputs were seen.
    pub fn tau(&self) -> Option<Timestamp> {
        self.tsm.min_tau()
    }

    /// Folds current head timestamps into the TSM bank.
    fn observe_heads(&mut self, ctx: &OpContext<'_>) {
        for i in 0..self.inputs {
            if let Some(ts) = ctx.input(i).front_ts() {
                self.tsm.observe(i, ts);
            }
        }
    }

    /// Picks the input to consume from: among inputs whose head carries τ,
    /// prefer data tuples (lower latency than forwarding punctuation
    /// first), then rotate for fairness.
    fn pick_tau_input(&self, ctx: &OpContext<'_>, tau: Timestamp) -> Option<usize> {
        let mut punct_candidate = None;
        for k in 0..self.inputs {
            let i = (self.next_input + k) % self.inputs;
            let input = ctx.input(i);
            if let Some(head) = input.front() {
                if head.ts == tau {
                    if head.is_data() {
                        return Some(i);
                    }
                    punct_candidate.get_or_insert(i);
                }
            }
        }
        punct_candidate
    }
}

impl Operator for Union {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_iwp(&self) -> bool {
        // In latent mode idle-waiting is impossible by construction.
        !self.latent
    }

    fn tsm_min(&self) -> Option<Timestamp> {
        if self.latent {
            // Latent mode stamps from the clock, unconstrained by registers.
            None
        } else {
            self.tau()
        }
    }

    fn num_inputs(&self) -> usize {
        self.inputs
    }

    fn output_schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self, ctx: &OpContext<'_>) -> Poll {
        if self.latent {
            // Any queued tuple is processable immediately.
            return if (0..self.inputs).any(|i| !ctx.input(i).is_empty()) {
                Poll::Ready
            } else {
                Poll::Starved {
                    starving: (0..self.inputs).collect(),
                }
            };
        }
        self.observe_heads(ctx);
        match self.tsm.min_tau() {
            None => Poll::Starved {
                starving: self.tsm.argmin(),
            },
            Some(tau) => {
                let witnessed = (0..self.inputs).any(|i| ctx.input(i).front_ts() == Some(tau));
                if witnessed {
                    Poll::Ready
                } else {
                    // τ's inputs are necessarily empty (a non-empty input's
                    // register equals its head timestamp).
                    Poll::Starved {
                        starving: self.tsm.argmin(),
                    }
                }
            }
        }
    }

    fn step(&mut self, ctx: &OpContext<'_>) -> Result<StepOutcome> {
        if self.latent {
            // Forward the first available tuple, stamping it now.
            for k in 0..self.inputs {
                let i = (self.next_input + k) % self.inputs;
                let popped = ctx.input_mut(i).pop();
                if let Some(mut tuple) = popped {
                    self.next_input = (i + 1) % self.inputs;
                    if tuple.is_punctuation() {
                        // Latent streams carry no timestamps; punctuation is
                        // meaningless and simply discarded.
                        self.suppressed_punct += 1;
                        return Ok(StepOutcome::consumed_one(0));
                    }
                    // Timestamp on the fly, monotonized.
                    let stamped = match self.emitted_high_water {
                        Some(hw) => ctx.now.max(hw),
                        None => ctx.now,
                    };
                    tuple.ts = stamped;
                    self.emitted_high_water = Some(stamped);
                    self.forwarded_data += 1;
                    ctx.output_mut(0).push(tuple)?;
                    return Ok(StepOutcome::consumed_one(1));
                }
            }
            return Ok(StepOutcome::default());
        }

        self.observe_heads(ctx);
        let Some(tau) = self.tsm.min_tau() else {
            return Ok(StepOutcome::default());
        };
        let Some(i) = self.pick_tau_input(ctx, tau) else {
            return Ok(StepOutcome::default());
        };
        let tuple = ctx.input_mut(i).pop().expect("head checked by pick");
        self.next_input = (i + 1) % self.inputs;

        if tuple.is_punctuation() {
            // Forward the ETS only if it advances the output's high-water
            // mark: a second punctuation at the same τ (e.g. one per input)
            // adds no information downstream.
            if self.emitted_high_water.is_some_and(|hw| tuple.ts <= hw) {
                self.suppressed_punct += 1;
                return Ok(StepOutcome::consumed_one(0));
            }
            self.emitted_high_water = Some(tuple.ts);
            self.forwarded_punct += 1;
            ctx.output_mut(0).push(tuple)?;
            return Ok(StepOutcome::consumed_one(1));
        }

        self.emitted_high_water = Some(
            self.emitted_high_water
                .map_or(tuple.ts, |hw| hw.max(tuple.ts)),
        );
        self.forwarded_data += 1;
        ctx.output_mut(0).push(tuple)?;
        Ok(StepOutcome::consumed_one(1))
    }

    fn batch_safe(&self) -> bool {
        // The merging union reads only buffer heads and TSM registers. The
        // latent union stamps `ctx.now` onto every tuple — fusing its steps
        // would collapse distinct stamps into one, so it must stay on the
        // per-tuple path.
        !self.latent
    }

    /// The merging union's Encore run: suppressed duplicate punctuation
    /// consumes input without producing output, so a run of duplicates
    /// (e.g. one heartbeat per input at the same τ) fuses into one
    /// scheduling decision. Folding the poll's TSM observation into the
    /// step loop also halves the head scans of the default path.
    fn step_batch(&mut self, ctx: &OpContext<'_>, max_steps: usize) -> Result<BatchOutcome> {
        let mut batch = BatchOutcome::default();
        if self.latent {
            // Not batch-safe; behave exactly like one per-tuple step.
            batch.record(self.step(ctx)?);
            return Ok(batch);
        }
        loop {
            self.observe_heads(ctx);
            let picked = self
                .tsm
                .min_tau()
                .and_then(|tau| self.pick_tau_input(ctx, tau));
            let Some(i) = picked else {
                // Mirrors `step`'s defensive empty outcome when poll and
                // step observe different states.
                if batch.steps == 0 {
                    batch.record(StepOutcome::default());
                }
                break;
            };
            let tuple = ctx.input_mut(i).pop().expect("head checked by pick");
            self.next_input = (i + 1) % self.inputs;

            if tuple.is_punctuation() {
                if self.emitted_high_water.is_some_and(|hw| tuple.ts <= hw) {
                    self.suppressed_punct += 1;
                    batch.record(StepOutcome::consumed_one(0));
                    if batch.steps >= max_steps || ctx.yielded() {
                        break;
                    }
                    continue; // silent consumption: Encore again
                }
                self.emitted_high_water = Some(tuple.ts);
                self.forwarded_punct += 1;
            } else {
                self.emitted_high_water = Some(
                    self.emitted_high_water
                        .map_or(tuple.ts, |hw| hw.max(tuple.ts)),
                );
                self.forwarded_data += 1;
            }
            ctx.output_mut(0).push(tuple)?;
            batch.record(StepOutcome::consumed_one(1));
            break; // yield
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_buffer::Buffer;
    use millstream_types::{DataType, Field, Tuple, Value};
    use std::cell::RefCell;

    fn schema() -> Schema {
        Schema::new(vec![Field::new("v", DataType::Int)])
    }

    fn data(ts: u64, v: i64) -> Tuple {
        Tuple::data(Timestamp::from_micros(ts), vec![Value::Int(v)])
    }

    fn punct(ts: u64) -> Tuple {
        Tuple::punctuation(Timestamp::from_micros(ts))
    }

    struct Rig {
        a: RefCell<Buffer>,
        b: RefCell<Buffer>,
        out: RefCell<Buffer>,
    }

    impl Rig {
        fn new() -> Self {
            Rig {
                a: RefCell::new(Buffer::new("a")),
                b: RefCell::new(Buffer::new("b")),
                out: RefCell::new(Buffer::new("out")),
            }
        }

        fn drain(&self, u: &mut Union, now: u64) -> Vec<Tuple> {
            let inputs = [&self.a, &self.b];
            let outputs = [&self.out];
            let ctx = OpContext::new(&inputs, &outputs, Timestamp::from_micros(now));
            while u.poll(&ctx).is_ready() {
                u.step(&ctx).unwrap();
            }
            let mut got = vec![];
            while let Some(t) = self.out.borrow_mut().pop() {
                got.push(t);
            }
            got
        }

        fn poll(&self, u: &mut Union) -> Poll {
            let inputs = [&self.a, &self.b];
            let outputs = [&self.out];
            let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
            u.poll(&ctx)
        }
    }

    #[test]
    fn merges_by_timestamp() {
        let rig = Rig::new();
        let mut u = Union::new("∪", schema(), 2);
        for t in [data(1, 10), data(4, 11), data(6, 12)] {
            rig.a.borrow_mut().push(t).unwrap();
        }
        for t in [data(2, 20), data(3, 21), data(7, 22)] {
            rig.b.borrow_mut().push(t).unwrap();
        }
        let out = rig.drain(&mut u, 100);
        // Can emit everything except ts=6 and ts=7: after consuming ts 4
        // from A, A's head is 6 and B's head is 7 — min register is 6 on A
        // and A holds it, emit 6; then B head 7, A empty with register 6,
        // starve. So 1,2,3,4,6 emitted.
        let ts: Vec<u64> = out.iter().map(|t| t.ts.as_micros()).collect();
        assert_eq!(ts, vec![1, 2, 3, 4, 6]);
        assert_eq!(u.forwarded_data(), 5);
        // Starved on A (register 6 < B head 7).
        assert_eq!(rig.poll(&mut u), Poll::starved_on(0));
    }

    #[test]
    fn idle_waits_until_both_inputs_known() {
        let rig = Rig::new();
        let mut u = Union::new("∪", schema(), 2);
        rig.a.borrow_mut().push(data(5, 1)).unwrap();
        // B never seen: cannot emit A's tuple.
        assert_eq!(rig.poll(&mut u), Poll::starved_on(1));
        assert!(rig.drain(&mut u, 100).is_empty());
    }

    #[test]
    fn punctuation_unblocks_and_is_forwarded() {
        let rig = Rig::new();
        let mut u = Union::new("∪", schema(), 2);
        rig.a.borrow_mut().push(data(5, 1)).unwrap();
        rig.b.borrow_mut().push(punct(9)).unwrap();
        let out = rig.drain(&mut u, 100);
        // The ETS at 9 on B makes τ = 5, unblocking A's data tuple. The
        // punctuation itself stays queued: A (register 5) may still send
        // tuples with timestamps in [5, 9).
        assert_eq!(out.len(), 1);
        assert!(out[0].is_data());
        assert_eq!(out[0].ts.as_micros(), 5);
        // Once A also reaches 9, the ETS is forwarded downstream.
        rig.a.borrow_mut().push(punct(9)).unwrap();
        let out = rig.drain(&mut u, 100);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_punctuation());
        assert_eq!(out[0].ts.as_micros(), 9);
    }

    #[test]
    fn simultaneous_tuples_all_flow() {
        // The §4.1 scenario: both inputs hold tuples with the same
        // timestamp; naive Fig. 1 rules would strand one side.
        let rig = Rig::new();
        let mut u = Union::new("∪", schema(), 2);
        rig.a.borrow_mut().push(data(5, 1)).unwrap();
        rig.a.borrow_mut().push(data(5, 2)).unwrap();
        rig.b.borrow_mut().push(data(5, 3)).unwrap();
        let out = rig.drain(&mut u, 100);
        assert_eq!(out.len(), 3, "all simultaneous tuples emitted");
        assert!(out.iter().all(|t| t.ts.as_micros() == 5));

        // Late-arriving simultaneous tuple also flows: registers retain 5.
        rig.b.borrow_mut().push(data(5, 4)).unwrap();
        let out = rig.drain(&mut u, 100);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values().unwrap()[0], Value::Int(4));
    }

    #[test]
    fn duplicate_punctuation_is_suppressed() {
        let rig = Rig::new();
        let mut u = Union::new("∪", schema(), 2);
        rig.a.borrow_mut().push(punct(7)).unwrap();
        rig.b.borrow_mut().push(punct(7)).unwrap();
        let out = rig.drain(&mut u, 100);
        assert_eq!(out.len(), 1, "second ETS at same τ adds nothing");
        assert_eq!(u.suppressed_punctuation(), 1);
    }

    #[test]
    fn output_is_timestamp_ordered() {
        let rig = Rig::new();
        let mut u = Union::new("∪", schema(), 2);
        for i in 0..20u64 {
            rig.a.borrow_mut().push(data(i * 3, i as i64)).unwrap();
            rig.b
                .borrow_mut()
                .push(data(i * 5, 100 + i as i64))
                .unwrap();
        }
        let out = rig.drain(&mut u, 1_000);
        let ts: Vec<u64> = out.iter().map(|t| t.ts.as_micros()).collect();
        let mut sorted = ts.clone();
        sorted.sort();
        assert_eq!(ts, sorted);
    }

    #[test]
    fn latent_mode_forwards_immediately() {
        let rig = Rig::new();
        let mut u = Union::latent("∪", schema(), 2);
        assert!(!u.is_iwp());
        rig.a.borrow_mut().push(data(50, 1)).unwrap();
        // B empty — a timestamp-merging union would starve; latent forwards.
        let out = rig.drain(&mut u, 200);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ts.as_micros(), 200, "stamped with the clock");
    }

    #[test]
    fn latent_mode_monotonizes_stamps() {
        let rig = Rig::new();
        let mut u = Union::latent("∪", schema(), 2);
        rig.a.borrow_mut().push(data(1, 1)).unwrap();
        let first = rig.drain(&mut u, 300);
        assert_eq!(first[0].ts.as_micros(), 300);
        rig.a.borrow_mut().push(data(2, 2)).unwrap();
        // Clock regressed (should not happen, but must not panic/unorder).
        let second = rig.drain(&mut u, 100);
        assert_eq!(second[0].ts.as_micros(), 300, "clamped to high water");
    }

    #[test]
    fn latent_mode_discards_punctuation() {
        let rig = Rig::new();
        let mut u = Union::latent("∪", schema(), 2);
        rig.b.borrow_mut().push(punct(5)).unwrap();
        let out = rig.drain(&mut u, 10);
        assert!(out.is_empty());
        assert_eq!(u.suppressed_punctuation(), 1);
    }

    #[test]
    #[should_panic(expected = "at least two inputs")]
    fn rejects_unary_union() {
        let _ = Union::new("∪", schema(), 1);
    }

    #[test]
    fn step_batch_fuses_suppressed_punctuation_runs() {
        let rig = Rig::new();
        let mut u = Union::new("∪", schema(), 2);
        assert!(u.batch_safe());
        // Both inputs carry an ETS at τ = 7; one input also holds a
        // simultaneous data tuple behind its ETS.
        rig.a.borrow_mut().push(punct(7)).unwrap();
        rig.b.borrow_mut().push(punct(7)).unwrap();
        rig.b.borrow_mut().push(data(7, 1)).unwrap();
        let inputs = [&rig.a, &rig.b];
        let outputs = [&rig.out];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        // First batch forwards the first ETS and stops at yield.
        let b = u.step_batch(&ctx, 64).unwrap();
        assert_eq!((b.steps, b.produced), (1, 1));
        assert!(rig.out.borrow().front().unwrap().is_punctuation());
        rig.out.borrow_mut().clear();
        // Second batch: the duplicate ETS is consumed silently (Encore),
        // then the simultaneous data tuple produces and ends the batch.
        let b = u.step_batch(&ctx, 64).unwrap();
        assert_eq!((b.steps, b.consumed, b.produced), (2, 2, 1));
        assert_eq!(u.suppressed_punctuation(), 1);
        let out = rig.out.borrow_mut().pop().unwrap();
        assert!(out.is_data());
        assert_eq!(out.ts.as_micros(), 7);
    }

    #[test]
    fn latent_union_is_not_batch_safe() {
        let rig = Rig::new();
        let mut u = Union::latent("∪", schema(), 2);
        assert!(!u.batch_safe());
        rig.a.borrow_mut().push(data(1, 1)).unwrap();
        rig.a.borrow_mut().push(data(2, 2)).unwrap();
        let inputs = [&rig.a, &rig.b];
        let outputs = [&rig.out];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::from_micros(100));
        // Even if asked for a batch, the latent union takes one step so
        // each tuple gets its own clock stamp.
        let b = u.step_batch(&ctx, 64).unwrap();
        assert_eq!(b.steps, 1);
        assert_eq!(rig.a.borrow().len(), 1);
    }
}
