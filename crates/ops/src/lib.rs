//! # millstream-ops
//!
//! The operator library of the millstream DSMS — implementations of the
//! paper's Fig. 1 / Fig. 6 execution rules:
//!
//! * non-IWP operators: [`Filter`] (selection), [`Project`],
//!   [`WindowAggregate`] (tumbling), [`SlidingAggregate`] (pane-based
//!   overlapping windows), and [`Reorder`] (slack-based order restoration
//!   for disordered external streams);
//! * IWP operators: [`Union`] (n-ary merging, with latent-timestamp mode),
//!   [`WindowJoin`] (binary symmetric) and [`MultiWindowJoin`] (n-ary
//!   symmetric), all built on TSM registers and the relaxed `more`
//!   condition;
//! * [`Sink`] with pluggable [`SinkCollector`]s (punctuation elimination,
//!   latency capture).
//!
//! Operators implement the [`Operator`] trait: `poll` evaluates the `more`
//! condition and names the starving inputs for backtracking; `step`
//! performs one production/consumption cycle.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod aggregate;
mod context;
mod filter;
mod join;
mod join_state;
mod multijoin;
mod project;
mod reorder;
mod sink;
mod sliding;
mod spill;
mod split;
mod union;

pub use aggregate::{AggExpr, AggFunc, WindowAggregate};
pub use context::{BatchOutcome, OpContext, Operator, Poll, StepOutcome};
pub use filter::{DropBehavior, Filter};
pub use join::{JoinSpec, WindowJoin};
pub use join_state::{JoinState, SpillStats, TierConfig};
pub use multijoin::MultiWindowJoin;
pub use project::Project;
pub use reorder::{LatePolicy, Reorder};
pub use sink::{CountingCollector, Sink, SinkCollector, VecCollector};
pub use sliding::SlidingAggregate;
pub use split::Split;
pub use union::Union;
