//! Projection / mapping (π) — a non-IWP operator.
//!
//! Evaluates a list of expressions against each data tuple to build the
//! output row; the output tuple takes its timestamp from the input tuple
//! (paper §2: non-IWP production). Punctuation passes through — projection
//! is the paper's example of "possible reformatting": a punctuation tuple
//! has no row, so reformatting is the identity.

use millstream_types::{Expr, Result, Row, Schema};

use crate::context::{BatchOutcome, OpContext, Operator, Poll, StepOutcome};

/// The projection/map operator.
pub struct Project {
    name: String,
    exprs: Vec<Expr>,
    schema: Schema,
}

impl Project {
    /// Creates a projection producing one output column per expression.
    /// `schema` describes the *output*.
    pub fn new(name: impl Into<String>, schema: Schema, exprs: Vec<Expr>) -> Self {
        debug_assert_eq!(schema.len(), exprs.len());
        Project {
            name: name.into(),
            exprs,
            schema,
        }
    }

    /// Convenience: a pure column-subset projection.
    pub fn columns(
        name: impl Into<String>,
        input_schema: &Schema,
        indices: &[usize],
    ) -> Result<Self> {
        let schema = input_schema.project(indices)?;
        let exprs = indices.iter().map(|&i| Expr::col(i)).collect();
        Ok(Project::new(name, schema, exprs))
    }
}

impl Operator for Project {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_inputs(&self) -> usize {
        1
    }

    fn output_schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self, ctx: &OpContext<'_>) -> Poll {
        if ctx.input(0).is_empty() {
            Poll::starved_on(0)
        } else {
            Poll::Ready
        }
    }

    fn step(&mut self, ctx: &OpContext<'_>) -> Result<StepOutcome> {
        let Some(tuple) = ctx.input_mut(0).pop() else {
            return Ok(StepOutcome::default());
        };
        match tuple.values() {
            None => {
                // Punctuation: pass through unchanged.
                ctx.output_mut(0).push(tuple)?;
                Ok(StepOutcome::consumed_one(1))
            }
            Some(row) => {
                // Build the output row in place: narrow projections never
                // touch the heap, wide ones spill once inside the builder.
                let mut out = Row::builder(self.exprs.len());
                for e in &self.exprs {
                    out.push(e.eval(row)?);
                }
                ctx.output_mut(0).push(tuple.with_values(out.finish()))?;
                Ok(StepOutcome::consumed_one(1))
            }
        }
    }

    fn batch_safe(&self) -> bool {
        // Expressions see only the input row; `ctx.now` is never read.
        true
    }

    /// Every projection step produces exactly one output tuple, so the
    /// scheduler's yield boundary falls after the first step of any batch.
    /// The override encodes that invariant directly, skipping the default
    /// loop's redundant yield probe and re-poll.
    fn step_batch(&mut self, ctx: &OpContext<'_>, _max_steps: usize) -> Result<BatchOutcome> {
        let mut batch = BatchOutcome::default();
        batch.record(self.step(ctx)?);
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_buffer::Buffer;
    use millstream_types::{DataType, Field, Timestamp, Tuple, Value};
    use std::cell::RefCell;

    fn in_schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ])
    }

    fn run(p: &mut Project, tuples: Vec<Tuple>) -> Vec<Tuple> {
        let input = RefCell::new(Buffer::new("in"));
        let output = RefCell::new(Buffer::new("out"));
        for t in tuples {
            input.borrow_mut().push(t).unwrap();
        }
        let inputs = [&input];
        let outputs = [&output];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        while p.poll(&ctx).is_ready() {
            p.step(&ctx).unwrap();
        }
        let mut out = vec![];
        while let Some(t) = output.borrow_mut().pop() {
            out.push(t);
        }
        out
    }

    #[test]
    fn computes_expressions() {
        let out_schema = Schema::new(vec![Field::new("sum", DataType::Int)]);
        let mut p = Project::new("π", out_schema, vec![Expr::col(0).add(Expr::col(1))]);
        let t = Tuple::data(
            Timestamp::from_micros(3),
            vec![Value::Int(2), Value::Int(5)],
        );
        let out = run(&mut p, vec![t]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values().unwrap(), &[Value::Int(7)]);
        assert_eq!(out[0].ts.as_micros(), 3, "output takes input timestamp");
    }

    #[test]
    fn column_subset() {
        let mut p = Project::columns("π", &in_schema(), &[1]).unwrap();
        assert_eq!(p.output_schema().len(), 1);
        assert_eq!(p.output_schema().field(0).unwrap().name, "b");
        let t = Tuple::data(Timestamp::ZERO, vec![Value::Int(1), Value::Int(2)]);
        let out = run(&mut p, vec![t]);
        assert_eq!(out[0].values().unwrap(), &[Value::Int(2)]);
    }

    #[test]
    fn punctuation_passes() {
        let mut p = Project::columns("π", &in_schema(), &[0]).unwrap();
        let out = run(&mut p, vec![Tuple::punctuation(Timestamp::from_micros(9))]);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_punctuation());
    }

    #[test]
    fn step_batch_is_one_yielding_step() {
        let mut p = Project::columns("π", &in_schema(), &[0]).unwrap();
        assert!(p.batch_safe());
        let input = RefCell::new(Buffer::new("in"));
        let output = RefCell::new(Buffer::new("out"));
        for i in 0..3u64 {
            input
                .borrow_mut()
                .push(Tuple::data(
                    Timestamp::from_micros(i),
                    vec![Value::Int(i as i64), Value::Int(0)],
                ))
                .unwrap();
        }
        let inputs = [&input];
        let outputs = [&output];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        let b = p.step_batch(&ctx, 64).unwrap();
        assert_eq!((b.steps, b.consumed, b.produced), (1, 1, 1));
        assert_eq!(input.borrow().len(), 2, "yield after every step");
    }

    #[test]
    fn bad_column_reference_errors() {
        let out_schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let mut p = Project::new("π", out_schema, vec![Expr::col(9)]);
        let input = RefCell::new(Buffer::new("in"));
        let output = RefCell::new(Buffer::new("out"));
        input
            .borrow_mut()
            .push(Tuple::data(Timestamp::ZERO, vec![Value::Int(1)]))
            .unwrap();
        let inputs = [&input];
        let outputs = [&output];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        assert!(p.step(&ctx).is_err());
    }
}
