//! Sliding-window grouped aggregation, computed over **panes**.
//!
//! A sliding window of length `W` advancing every `S` (with `W = k·S`) is
//! evaluated pane-wise: the stream is cut into disjoint `S`-sized panes,
//! each pane keeps per-group partial aggregates, and the window result at a
//! boundary `e` merges the `k` panes covering `[e − W, e)`. Each input
//! tuple is folded into exactly one pane, so the cost per window is `O(k)`
//! merges instead of re-scanning `W` worth of tuples — the classic
//! paired/pane optimization for overlapping windows.
//!
//! Like the tumbling [`WindowAggregate`](crate::WindowAggregate), emission
//! is driven by stream time — data *or punctuation* crossing a slide
//! boundary — which is precisely where on-demand ETS pays off on sparse
//! streams.

use std::collections::{BTreeMap, VecDeque};

use millstream_types::{
    DataType, Error, Expr, Field, Result, Row, Schema, TimeDelta, Timestamp, Tuple, Value,
};

use crate::aggregate::{AggExpr, AggFunc, AggState};
use crate::context::{OpContext, Operator, Poll, StepOutcome};

/// Keys are [`Row`]s so narrow group keys build and compare without
/// touching the heap.
type Groups = BTreeMap<Row, Vec<AggState>>;

/// Pane-based sliding-window grouped aggregation.
pub struct SlidingAggregate {
    name: String,
    window: TimeDelta,
    slide: TimeDelta,
    group_by: Vec<Expr>,
    aggs: Vec<AggExpr>,
    schema: Schema,
    /// Start of the currently open pane.
    pane_start: Option<Timestamp>,
    /// Closed panes, oldest first: (pane start, per-group partials). At
    /// most `k − 1` panes are retained.
    panes: VecDeque<(Timestamp, Groups)>,
    /// The open pane's per-group partials.
    current: Groups,
    windows_emitted: u64,
}

impl SlidingAggregate {
    /// Creates a sliding aggregate. `window` must be a positive integer
    /// multiple of `slide`.
    pub fn new(
        name: impl Into<String>,
        input_schema: &Schema,
        window: TimeDelta,
        slide: TimeDelta,
        group_by: Vec<(String, Expr)>,
        aggs: Vec<AggExpr>,
    ) -> Result<Self> {
        if slide.is_zero() || window.is_zero() {
            return Err(Error::config("window and slide must be positive"));
        }
        if !window.as_micros().is_multiple_of(slide.as_micros()) {
            return Err(Error::config(format!(
                "window ({window}) must be an integer multiple of slide ({slide})"
            )));
        }
        let mut fields = Vec::with_capacity(1 + group_by.len() + aggs.len());
        fields.push(Field::new("window_start", DataType::Int));
        for (n, e) in &group_by {
            fields.push(Field::new(n.clone(), e.infer_type(input_schema)?));
        }
        for a in &aggs {
            let arg_ty = match a.func {
                AggFunc::Count => DataType::Int,
                _ => a.arg.infer_type(input_schema)?,
            };
            fields.push(Field::new(a.name.clone(), a.func.result_type(arg_ty)));
        }
        Ok(SlidingAggregate {
            name: name.into(),
            window,
            slide,
            group_by: group_by.into_iter().map(|(_, e)| e).collect(),
            aggs,
            schema: Schema::new(fields),
            pane_start: None,
            panes: VecDeque::new(),
            current: Groups::new(),
            windows_emitted: 0,
        })
    }

    /// Number of panes per window (k = W / S).
    pub fn panes_per_window(&self) -> u64 {
        self.window.as_micros() / self.slide.as_micros()
    }

    /// Windows emitted so far.
    pub fn windows_emitted(&self) -> u64 {
        self.windows_emitted
    }

    /// Closed panes currently retained.
    pub fn retained_panes(&self) -> usize {
        self.panes.len()
    }

    /// Aligns a timestamp down to a slide boundary.
    fn align(&self, ts: Timestamp) -> Timestamp {
        let s = self.slide.as_micros();
        Timestamp::from_micros(ts.as_micros() / s * s)
    }

    /// Advances pane/window state so that stream time `ts` is inside the
    /// open pane, emitting every window whose boundary was crossed.
    fn advance_to(&mut self, ctx: &OpContext<'_>, ts: Timestamp) -> Result<usize> {
        let Some(mut start) = self.pane_start else {
            self.pane_start = Some(self.align(ts));
            return Ok(0);
        };
        let mut produced = 0;
        // Saturating arithmetic throughout: an end-of-stream punctuation
        // may carry Timestamp::MAX.
        while ts >= start.saturating_add(self.slide) && start < Timestamp::MAX {
            // Close the open pane.
            let closing = std::mem::take(&mut self.current);
            self.panes.push_back((start, closing));
            let boundary = start.saturating_add(self.slide);

            // Emit the window ending at `boundary` from the last k panes.
            produced += self.emit_window(ctx, boundary)?;

            // Retire panes that no future window reaches.
            let keep_from = boundary
                .saturating_add(self.slide)
                .saturating_sub(self.window);
            while self.panes.front().is_some_and(|(s, _)| *s < keep_from) {
                self.panes.pop_front();
            }

            start = start.saturating_add(self.slide);
            self.pane_start = Some(start);

            // Fast-forward across long empty gaps once nothing is retained.
            if self.panes.iter().all(|(_, g)| g.is_empty()) && self.current.is_empty() {
                self.panes.clear();
                let target = self.align(ts);
                if target > start {
                    start = target;
                    self.pane_start = Some(start);
                }
            }
        }
        Ok(produced)
    }

    /// Merges the retained panes covering `[boundary − W, boundary)` and
    /// emits one row per group, stamped at the boundary.
    fn emit_window(&mut self, ctx: &OpContext<'_>, boundary: Timestamp) -> Result<usize> {
        let from = boundary.saturating_sub(self.window);
        let mut merged: Groups = Groups::new();
        for (start, groups) in &self.panes {
            if *start < from || *start >= boundary {
                continue;
            }
            for (key, states) in groups {
                match merged.get_mut(key) {
                    Some(acc) => {
                        for (a, b) in acc.iter_mut().zip(states) {
                            a.merge(b)?;
                        }
                    }
                    None => {
                        merged.insert(key.clone(), states.clone());
                    }
                }
            }
        }
        if merged.is_empty() {
            return Ok(0);
        }
        let mut produced = 0;
        for (key, states) in merged {
            let mut row = Row::builder(1 + key.len() + states.len());
            row.push(Value::Int(from.as_micros() as i64));
            row.extend_from_slice(&key);
            for s in states {
                row.push(s.finish());
            }
            ctx.output_mut(0)
                .push(Tuple::data(boundary, row.finish()))?;
            produced += 1;
        }
        self.windows_emitted += 1;
        Ok(produced)
    }
}

impl Operator for SlidingAggregate {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_inputs(&self) -> usize {
        1
    }

    fn is_time_driven(&self) -> bool {
        true
    }

    /// The next slide boundary to emit is `pane_start + slide`; every
    /// window still pending emits at or after it.
    fn frontier_hold(&self) -> Option<Timestamp> {
        match self.pane_start {
            Some(start) if start != Timestamp::MAX => Some(start.saturating_add(self.slide)),
            _ => None,
        }
    }

    fn output_schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self, ctx: &OpContext<'_>) -> Poll {
        if ctx.input(0).is_empty() {
            Poll::starved_on(0)
        } else {
            Poll::Ready
        }
    }

    fn step(&mut self, ctx: &OpContext<'_>) -> Result<StepOutcome> {
        let Some(tuple) = ctx.input_mut(0).pop() else {
            return Ok(StepOutcome::default());
        };
        let mut produced = self.advance_to(ctx, tuple.ts)?;
        match tuple.values() {
            None => {
                ctx.output_mut(0).push(tuple)?;
                produced += 1;
            }
            Some(row) => {
                let mut key = Row::builder(self.group_by.len());
                for g in &self.group_by {
                    key.push(g.eval(row)?);
                }
                let states = self
                    .current
                    .entry(key.finish())
                    .or_insert_with(|| self.aggs.iter().map(|a| AggState::new(a.func)).collect());
                for (state, agg) in states.iter_mut().zip(self.aggs.iter()) {
                    let v = match agg.func {
                        AggFunc::Count => Value::Int(1),
                        _ => agg.arg.eval(row)?,
                    };
                    state.update(v)?;
                }
            }
        }
        Ok(StepOutcome {
            consumed: 1,
            produced,
            work: produced,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_buffer::Buffer;
    use std::cell::RefCell;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ])
    }

    fn sliding(window_us: u64, slide_us: u64) -> SlidingAggregate {
        SlidingAggregate::new(
            "γs",
            &schema(),
            TimeDelta::from_micros(window_us),
            TimeDelta::from_micros(slide_us),
            vec![("k".into(), Expr::col(0))],
            vec![
                AggExpr {
                    func: AggFunc::Count,
                    arg: Expr::col(1),
                    name: "n".into(),
                },
                AggExpr {
                    func: AggFunc::Sum,
                    arg: Expr::col(1),
                    name: "s".into(),
                },
            ],
        )
        .unwrap()
    }

    fn data(ts: u64, k: i64, v: i64) -> Tuple {
        Tuple::data(
            Timestamp::from_micros(ts),
            vec![Value::Int(k), Value::Int(v)],
        )
    }

    fn run(a: &mut SlidingAggregate, tuples: Vec<Tuple>) -> Vec<(i64, i64, i64, i64)> {
        let input = RefCell::new(Buffer::new("in"));
        let output = RefCell::new(Buffer::new("out"));
        for t in tuples {
            input.borrow_mut().push(t).unwrap();
        }
        let inputs = [&input];
        let outputs = [&output];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        while a.poll(&ctx).is_ready() {
            a.step(&ctx).unwrap();
        }
        let mut rows = vec![];
        while let Some(t) = output.borrow_mut().pop() {
            if let Some(r) = t.values() {
                rows.push((
                    r[0].as_int().unwrap(),
                    r[1].as_int().unwrap(),
                    r[2].as_int().unwrap(),
                    r[3].as_int().unwrap(),
                ));
            }
        }
        rows
    }

    fn eos(ts: u64) -> Tuple {
        Tuple::punctuation(Timestamp::from_micros(ts))
    }

    #[test]
    fn validates_parameters() {
        let mk = |w: u64, s: u64| {
            SlidingAggregate::new(
                "x",
                &schema(),
                TimeDelta::from_micros(w),
                TimeDelta::from_micros(s),
                vec![],
                vec![],
            )
        };
        assert!(mk(100, 0).is_err());
        assert!(mk(0, 10).is_err());
        assert!(mk(100, 30).is_err(), "not a multiple");
        assert!(mk(100, 50).is_ok());
        assert_eq!(mk(100, 25).unwrap().panes_per_window(), 4);
    }

    #[test]
    fn degenerates_to_tumbling_when_window_equals_slide() {
        let mut s = sliding(100, 100);
        let rows = run(
            &mut s,
            vec![
                data(10, 1, 5),
                data(20, 1, 7),
                data(150, 1, 100),
                eos(1_000),
            ],
        );
        // Window [0,100): n=2, s=12. Window [100,200): n=1, s=100.
        assert_eq!(rows, vec![(0, 1, 2, 12), (100, 1, 1, 100)]);
    }

    #[test]
    fn overlapping_windows_count_tuples_multiply() {
        // W = 200, S = 100: each tuple appears in two windows.
        let mut s = sliding(200, 100);
        let rows = run(&mut s, vec![data(50, 1, 10), data(150, 1, 20), eos(1_000)]);
        // Boundary 100: window [−100..0? no: [boundary−200, boundary) = wraps
        // below zero → saturates to 0 for the label: [0,100) pane only.
        //   → (window_start 0, n=1, s=10) — window covering ts 50.
        // Boundary 200: window [0,200): both tuples.
        // Boundary 300: window [100,300): the 150-tuple.
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].2, 1);
        assert_eq!(rows[0].3, 10);
        assert_eq!(rows[1], (0, 1, 2, 30));
        assert_eq!(rows[2], (100, 1, 1, 20));
    }

    #[test]
    fn groups_stay_separate_across_panes() {
        let mut s = sliding(200, 100);
        let rows = run(&mut s, vec![data(50, 1, 1), data(150, 2, 2), eos(1_000)]);
        // Boundary 200 window [0,200) has both groups.
        let b200: Vec<_> = rows.iter().filter(|r| r.0 == 0 && r.2 == 1).collect();
        assert!(b200.len() >= 2, "rows {rows:?}");
    }

    #[test]
    fn punctuation_drives_emission_and_is_forwarded() {
        let mut s = sliding(100, 100);
        let input = RefCell::new(Buffer::new("in"));
        let output = RefCell::new(Buffer::new("out"));
        input.borrow_mut().push(data(10, 1, 5)).unwrap();
        input.borrow_mut().push(eos(500)).unwrap();
        let inputs = [&input];
        let outputs = [&output];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        while s.poll(&ctx).is_ready() {
            s.step(&ctx).unwrap();
        }
        let mut tuples = vec![];
        while let Some(t) = output.borrow_mut().pop() {
            tuples.push(t);
        }
        assert_eq!(tuples.len(), 2);
        assert!(tuples[0].is_data());
        assert!(tuples[1].is_punctuation());
        assert_eq!(tuples[1].ts.as_micros(), 500);
    }

    #[test]
    fn long_gaps_fast_forward_without_empty_output() {
        let mut s = sliding(100, 10);
        let rows = run(
            &mut s,
            vec![data(5, 1, 1), data(10_000_000, 1, 2), eos(20_000_000)],
        );
        // The first tuple appears in k=10 overlapping windows; the second in
        // 10 more; no empty windows in between are emitted.
        assert_eq!(rows.len(), 20, "rows {rows:?}");
        assert!(s.retained_panes() <= 10);
    }

    #[test]
    fn avg_merges_correctly_across_panes() {
        let mut s = SlidingAggregate::new(
            "γs",
            &schema(),
            TimeDelta::from_micros(200),
            TimeDelta::from_micros(100),
            vec![],
            vec![AggExpr {
                func: AggFunc::Avg,
                arg: Expr::col(1),
                name: "m".into(),
            }],
        )
        .unwrap();
        let input = RefCell::new(Buffer::new("in"));
        let output = RefCell::new(Buffer::new("out"));
        // Pane [0,100): 10; pane [100,200): 30 → window [0,200) avg = 20.
        input.borrow_mut().push(data(50, 0, 10)).unwrap();
        input.borrow_mut().push(data(150, 0, 30)).unwrap();
        input.borrow_mut().push(eos(1_000)).unwrap();
        let inputs = [&input];
        let outputs = [&output];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        while s.poll(&ctx).is_ready() {
            s.step(&ctx).unwrap();
        }
        let mut avgs = vec![];
        while let Some(t) = output.borrow_mut().pop() {
            if let Some(r) = t.values() {
                avgs.push((r[0].as_int().unwrap(), r[1].as_float().unwrap()));
            }
        }
        assert!(avgs.contains(&(0, 20.0)), "avgs {avgs:?}");
    }

    #[test]
    fn survives_end_of_stream_punctuation_at_max() {
        let mut s = sliding(200, 100);
        let rows = run(
            &mut s,
            vec![data(50, 1, 10), Tuple::punctuation(Timestamp::MAX)],
        );
        // Both overlapping windows containing the tuple flush.
        assert_eq!(rows.len(), 2, "rows {rows:?}");
    }

    #[test]
    fn output_is_timestamp_ordered() {
        let mut s = sliding(300, 100);
        let input: Vec<Tuple> = (0..50)
            .map(|i| data(37 * i, (i % 3) as i64, i as i64))
            .chain(std::iter::once(eos(10_000)))
            .collect();
        let rows = run(&mut s, input);
        // Row tuples are (window_start, ...) and emission boundary =
        // window_start + W is non-decreasing.
        for w in rows.windows(2) {
            assert!(w[0].0 <= w[1].0, "rows {rows:?}");
        }
    }
}
