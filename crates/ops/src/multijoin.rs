//! N-ary symmetric window join — the multi-way case the paper's §2 leaves
//! out "for simplicity of discussion … whose treatment is however similar
//! to that of binary joins".
//!
//! Each of the k inputs keeps its own time window; a new data tuple at τ
//! (the TSM minimum, as in the binary case) probes the **cross product of
//! all other windows**, emitting one output row per combination that
//! satisfies the join condition. The output row concatenates the inputs'
//! columns in input order; the timestamp comes from the probe, so the
//! output stays timestamp-ordered. Punctuation handling follows Fig. 6
//! verbatim: a punctuation witness of τ is consumed, expires every window,
//! and is forwarded.

use std::collections::VecDeque;

use millstream_buffer::TsmBank;
use millstream_types::{Expr, Result, Row, Schema, TimeDelta, Timestamp, Tuple};

use crate::context::{OpContext, Operator, Poll, StepOutcome};

/// The n-ary symmetric window join operator.
pub struct MultiWindowJoin {
    name: String,
    schema: Schema,
    /// Per-input window length.
    windows: Vec<TimeDelta>,
    /// Optional condition over the concatenated row (all inputs, in input
    /// order). `None` = window cross product.
    condition: Option<Expr>,
    tsm: TsmBank,
    stores: Vec<VecDeque<Tuple>>,
    /// Column offset of each input in the concatenated row.
    offsets: Vec<usize>,
    emitted_high_water: Option<Timestamp>,
    probes: u64,
    matches: u64,
}

impl MultiWindowJoin {
    /// Creates an n-ary join over `input_schemas`, one window per input.
    /// The output schema concatenates the inputs with positional
    /// qualifiers `in0`, `in1`, … applied to colliding names.
    pub fn new(
        name: impl Into<String>,
        input_schemas: &[Schema],
        windows: Vec<TimeDelta>,
        condition: Option<Expr>,
    ) -> Self {
        assert!(
            input_schemas.len() >= 2,
            "multi-way join needs at least two inputs"
        );
        assert_eq!(
            input_schemas.len(),
            windows.len(),
            "one window per input required"
        );
        let mut schema = input_schemas[0].clone();
        for (i, s) in input_schemas.iter().enumerate().skip(1) {
            schema = schema.join(s, &format!("in{}", i - 1), &format!("in{i}"));
        }
        let mut offsets = Vec::with_capacity(input_schemas.len());
        let mut off = 0;
        for s in input_schemas {
            offsets.push(off);
            off += s.len();
        }
        MultiWindowJoin {
            name: name.into(),
            schema,
            tsm: TsmBank::new(input_schemas.len()),
            stores: vec![VecDeque::new(); input_schemas.len()],
            windows,
            condition,
            offsets,
            emitted_high_water: None,
            probes: 0,
            matches: 0,
        }
    }

    /// Number of inputs.
    pub fn arity(&self) -> usize {
        self.stores.len()
    }

    /// Stored tuples in input `i`'s window.
    pub fn window_len(&self, i: usize) -> usize {
        self.stores[i].len()
    }

    /// Column offset of input `i` in the concatenated output row — useful
    /// when authoring a `condition` expression against specific inputs.
    pub fn input_offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Lifetime combinations examined.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Lifetime matches emitted.
    pub fn matches(&self) -> u64 {
        self.matches
    }

    fn observe_heads(&mut self, ctx: &OpContext<'_>) {
        for i in 0..self.arity() {
            if let Some(ts) = ctx.input(i).front_ts() {
                self.tsm.observe(i, ts);
            }
        }
    }

    fn expire_all(&mut self, ts: Timestamp) {
        for (store, w) in self.stores.iter_mut().zip(&self.windows) {
            let floor = ts.saturating_sub(*w);
            while store.front().is_some_and(|t| t.ts < floor) {
                store.pop_front();
            }
        }
    }

    /// Recursively enumerates combinations of one stored tuple per
    /// non-probe input and emits the matching ones.
    #[allow(clippy::too_many_arguments)]
    fn emit_combinations(
        &mut self,
        ctx: &OpContext<'_>,
        probe_input: usize,
        probe: &Tuple,
        partial: &mut Vec<Option<Tuple>>,
        next_input: usize,
        produced: &mut usize,
        work: &mut usize,
    ) -> Result<()> {
        if next_input == self.arity() {
            // Assemble the concatenated row.
            self.probes += 1;
            let width = self.schema.len();
            let mut builder = Row::builder(width);
            // Indexing is deliberate: slot `probe_input` comes from `probe`,
            // the rest from `partial`.
            #[allow(clippy::needless_range_loop)]
            for i in 0..self.arity() {
                let t = if i == probe_input {
                    probe
                } else {
                    partial[i].as_ref().expect("combination slot filled")
                };
                builder.extend_from_slice(t.values_expect());
            }
            let row = builder.finish();
            let ok = match &self.condition {
                None => true,
                Some(c) => c.eval_predicate(&row)?,
            };
            if ok {
                self.matches += 1;
                let out = Tuple::data_with_entry(probe.ts, probe.entry, row);
                self.emitted_high_water =
                    Some(self.emitted_high_water.map_or(out.ts, |h| h.max(out.ts)));
                ctx.output_mut(0).push(out)?;
                *produced += 1;
            }
            return Ok(());
        }
        if next_input == probe_input {
            return self.emit_combinations(
                ctx,
                probe_input,
                probe,
                partial,
                next_input + 1,
                produced,
                work,
            );
        }
        // Snapshot to decouple from &mut self (tuple clones share rows).
        let stored: Vec<Tuple> = self.stores[next_input].iter().cloned().collect();
        *work += stored.len();
        for t in stored {
            partial[next_input] = Some(t);
            self.emit_combinations(
                ctx,
                probe_input,
                probe,
                partial,
                next_input + 1,
                produced,
                work,
            )?;
        }
        partial[next_input] = None;
        Ok(())
    }

    fn push_punctuation(&mut self, ctx: &OpContext<'_>, ts: Timestamp) -> Result<usize> {
        if self.emitted_high_water.is_some_and(|hw| ts <= hw) {
            return Ok(0);
        }
        self.emitted_high_water = Some(ts);
        ctx.output_mut(0).push(Tuple::punctuation(ts))?;
        Ok(1)
    }
}

impl Operator for MultiWindowJoin {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_iwp(&self) -> bool {
        true
    }

    fn tsm_min(&self) -> Option<Timestamp> {
        self.tsm.min_tau()
    }

    fn num_inputs(&self) -> usize {
        self.arity()
    }

    fn output_schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self, ctx: &OpContext<'_>) -> Poll {
        self.observe_heads(ctx);
        match self.tsm.min_tau() {
            None => Poll::Starved {
                starving: self.tsm.argmin(),
            },
            Some(tau) => {
                if (0..self.arity()).any(|i| ctx.input(i).front_ts() == Some(tau)) {
                    Poll::Ready
                } else {
                    Poll::Starved {
                        starving: self.tsm.argmin(),
                    }
                }
            }
        }
    }

    fn step(&mut self, ctx: &OpContext<'_>) -> Result<StepOutcome> {
        self.observe_heads(ctx);
        let Some(tau) = self.tsm.min_tau() else {
            return Ok(StepOutcome::default());
        };

        // Prefer a data witness of τ.
        let mut data_input = None;
        let mut punct_input = None;
        for i in 0..self.arity() {
            let input = ctx.input(i);
            if let Some(head) = input.front() {
                if head.ts == tau {
                    if head.is_data() {
                        data_input = Some(i);
                        break;
                    }
                    punct_input.get_or_insert(i);
                }
            }
        }

        if let Some(i) = data_input {
            let probe = ctx.input_mut(i).pop().expect("head checked");
            self.expire_all(probe.ts);
            let mut produced = 0;
            let mut work = 0;
            let mut partial: Vec<Option<Tuple>> = vec![None; self.arity()];
            self.emit_combinations(ctx, i, &probe, &mut partial, 0, &mut produced, &mut work)?;
            self.stores[i].push_back(probe);
            return Ok(StepOutcome {
                consumed: 1,
                produced,
                work,
            });
        }
        if let Some(i) = punct_input {
            ctx.input_mut(i).pop();
            self.expire_all(tau);
            let produced = self.push_punctuation(ctx, tau)?;
            return Ok(StepOutcome {
                consumed: 1,
                produced,
                work: 0,
            });
        }
        Ok(StepOutcome::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_buffer::Buffer;
    use millstream_types::{DataType, Field, Value};
    use std::cell::RefCell;

    fn schema() -> Schema {
        Schema::new(vec![Field::new("k", DataType::Int)])
    }

    fn data(ts: u64, k: i64) -> Tuple {
        Tuple::data(Timestamp::from_micros(ts), vec![Value::Int(k)])
    }

    fn punct(ts: u64) -> Tuple {
        Tuple::punctuation(Timestamp::from_micros(ts))
    }

    struct Rig3 {
        bufs: Vec<RefCell<Buffer>>,
        out: RefCell<Buffer>,
    }

    impl Rig3 {
        fn new() -> Self {
            Rig3 {
                bufs: (0..3)
                    .map(|i| RefCell::new(Buffer::new(format!("in{i}"))))
                    .collect(),
                out: RefCell::new(Buffer::new("out")),
            }
        }

        fn drain(&self, j: &mut MultiWindowJoin) -> Vec<Tuple> {
            let inputs: Vec<&RefCell<Buffer>> = self.bufs.iter().collect();
            let outputs = [&self.out];
            let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
            while j.poll(&ctx).is_ready() {
                j.step(&ctx).unwrap();
            }
            let mut got = vec![];
            while let Some(t) = self.out.borrow_mut().pop() {
                got.push(t);
            }
            got
        }
    }

    fn join3(condition: Option<Expr>) -> MultiWindowJoin {
        MultiWindowJoin::new(
            "⋈3",
            &[schema(), schema(), schema()],
            vec![TimeDelta::from_micros(100); 3],
            condition,
        )
    }

    #[test]
    fn output_schema_concatenates_with_qualifiers() {
        let j = join3(None);
        assert_eq!(j.arity(), 3);
        assert_eq!(j.input_offset(0), 0);
        assert_eq!(j.input_offset(2), 2);
        let s = j.output_schema();
        assert_eq!(s.len(), 3);
        // All three columns named `k` collide and get qualified.
        assert!(s.field(0).unwrap().name.contains('k'));
        assert_ne!(s.field(0).unwrap().name, s.field(2).unwrap().name);
    }

    #[test]
    fn three_way_match_within_windows() {
        let rig = Rig3::new();
        // Equality across all three inputs via a condition expression.
        let cond = Expr::col(0)
            .eq(Expr::col(1))
            .and(Expr::col(1).eq(Expr::col(2)));
        let mut j = join3(Some(cond));
        rig.bufs[0].borrow_mut().push(data(1, 7)).unwrap();
        rig.bufs[1].borrow_mut().push(data(2, 7)).unwrap();
        rig.bufs[2].borrow_mut().push(data(3, 7)).unwrap();
        // Close the other inputs past 3 so the last probe can run.
        rig.bufs[0].borrow_mut().push(punct(10)).unwrap();
        rig.bufs[1].borrow_mut().push(punct(10)).unwrap();
        let out = rig.drain(&mut j);
        let datas: Vec<&Tuple> = out.iter().filter(|t| t.is_data()).collect();
        assert_eq!(datas.len(), 1, "one (7,7,7) combination");
        assert_eq!(datas[0].ts.as_micros(), 3, "probe timestamp");
        assert_eq!(
            datas[0].values().unwrap(),
            &[Value::Int(7), Value::Int(7), Value::Int(7)]
        );
    }

    #[test]
    fn cross_product_counts_combinations() {
        let rig = Rig3::new();
        let mut j = join3(None);
        // Two tuples in each of inputs 0 and 1, then one probe on input 2.
        for ts in [1u64, 2] {
            rig.bufs[0].borrow_mut().push(data(ts, ts as i64)).unwrap();
        }
        for ts in [3u64, 4] {
            rig.bufs[1].borrow_mut().push(data(ts, ts as i64)).unwrap();
        }
        rig.bufs[2].borrow_mut().push(data(5, 9)).unwrap();
        rig.bufs[0].borrow_mut().push(punct(10)).unwrap();
        rig.bufs[1].borrow_mut().push(punct(10)).unwrap();
        let out = rig.drain(&mut j);
        let datas: Vec<&Tuple> = out.iter().filter(|t| t.is_data()).collect();
        // The probe at ts 5 pairs with {1,2} × {3,4} = 4 combinations.
        assert_eq!(datas.len(), 4);
        assert!(datas.iter().all(|t| t.ts.as_micros() == 5));
    }

    #[test]
    fn expiry_prunes_old_windows() {
        let rig = Rig3::new();
        let mut j = join3(None);
        rig.bufs[0].borrow_mut().push(data(1, 1)).unwrap();
        rig.bufs[1].borrow_mut().push(data(2, 2)).unwrap();
        // Probe far beyond the 100 µs windows.
        rig.bufs[2].borrow_mut().push(data(500, 3)).unwrap();
        rig.bufs[0].borrow_mut().push(punct(600)).unwrap();
        rig.bufs[1].borrow_mut().push(punct(600)).unwrap();
        let out = rig.drain(&mut j);
        assert!(
            out.iter().all(|t| t.is_punctuation()),
            "stale windows expired"
        );
        assert_eq!(j.window_len(0), 0);
        assert_eq!(j.window_len(1), 0);
    }

    #[test]
    fn punctuation_flows_and_dedupes() {
        let rig = Rig3::new();
        let mut j = join3(None);
        for b in &rig.bufs {
            b.borrow_mut().push(punct(50)).unwrap();
        }
        let out = rig.drain(&mut j);
        assert_eq!(out.len(), 1, "one forwarded ETS for three inputs");
        assert!(out[0].is_punctuation());
        assert_eq!(out[0].ts.as_micros(), 50);
    }

    #[test]
    fn starves_until_all_inputs_heard() {
        let rig = Rig3::new();
        let mut j = join3(None);
        rig.bufs[0].borrow_mut().push(data(1, 1)).unwrap();
        rig.bufs[1].borrow_mut().push(data(1, 1)).unwrap();
        let inputs: Vec<&RefCell<Buffer>> = rig.bufs.iter().collect();
        let outputs = [&rig.out];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        assert_eq!(j.poll(&ctx), Poll::starved_on(2));
    }

    #[test]
    #[should_panic(expected = "at least two inputs")]
    fn rejects_unary() {
        let _ = MultiWindowJoin::new("x", &[schema()], vec![TimeDelta::ZERO], None);
    }

    #[test]
    fn binary_case_agrees_with_window_join() {
        use crate::join::{JoinSpec, WindowJoin};
        // Same workload through MultiWindowJoin(k=2) and WindowJoin.
        let tuples_a: Vec<(u64, i64)> = vec![(1, 5), (3, 6), (7, 5), (9, 6)];
        let tuples_b: Vec<(u64, i64)> = vec![(2, 5), (6, 6), (8, 5)];
        let w = TimeDelta::from_micros(4);

        let run_multi = || {
            let a = RefCell::new(Buffer::new("a"));
            let b = RefCell::new(Buffer::new("b"));
            let out = RefCell::new(Buffer::new("out"));
            let cond = Expr::col(0).eq(Expr::col(1));
            let mut j = MultiWindowJoin::new("m", &[schema(), schema()], vec![w, w], Some(cond));
            for &(ts, v) in &tuples_a {
                a.borrow_mut().push(data(ts, v)).unwrap();
            }
            for &(ts, v) in &tuples_b {
                b.borrow_mut().push(data(ts, v)).unwrap();
            }
            a.borrow_mut().push(punct(100)).unwrap();
            b.borrow_mut().push(punct(100)).unwrap();
            let inputs = [&a, &b];
            let outputs = [&out];
            let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
            while j.poll(&ctx).is_ready() {
                j.step(&ctx).unwrap();
            }
            let mut rows = vec![];
            while let Some(t) = out.borrow_mut().pop() {
                if t.is_data() {
                    rows.push((t.ts.as_micros(), t.values().unwrap().to_vec()));
                }
            }
            rows
        };

        let run_binary = || {
            let a = RefCell::new(Buffer::new("a"));
            let b = RefCell::new(Buffer::new("b"));
            let out = RefCell::new(Buffer::new("out"));
            let mut j = WindowJoin::new(
                "b",
                schema().join(&schema(), "a", "b"),
                JoinSpec::symmetric(w).with_key(0, 0),
            );
            for &(ts, v) in &tuples_a {
                a.borrow_mut().push(data(ts, v)).unwrap();
            }
            for &(ts, v) in &tuples_b {
                b.borrow_mut().push(data(ts, v)).unwrap();
            }
            a.borrow_mut().push(punct(100)).unwrap();
            b.borrow_mut().push(punct(100)).unwrap();
            let inputs = [&a, &b];
            let outputs = [&out];
            let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
            while j.poll(&ctx).is_ready() {
                j.step(&ctx).unwrap();
            }
            let mut rows = vec![];
            while let Some(t) = out.borrow_mut().pop() {
                if t.is_data() {
                    rows.push((t.ts.as_micros(), t.values().unwrap().to_vec()));
                }
            }
            rows
        };

        assert_eq!(run_multi(), run_binary());
    }
}
