//! N-ary symmetric window join — the multi-way case the paper's §2 leaves
//! out "for simplicity of discussion … whose treatment is however similar
//! to that of binary joins".
//!
//! Each of the k inputs keeps its own time window; a new data tuple at τ
//! (the TSM minimum, as in the binary case) probes the other windows,
//! emitting one output row per combination that satisfies the join
//! condition. The output row concatenates the inputs' columns in input
//! order; the timestamp comes from the probe, so the output stays
//! timestamp-ordered. Punctuation handling follows Fig. 6 verbatim: a
//! punctuation witness of τ is consumed, expires every window, and is
//! forwarded.
//!
//! Window state lives in the shared [`JoinState`] layer. With an equi-key
//! class ([`MultiWindowJoin::with_keys`]) every window is hash-partitioned
//! and a probe enumerates only the probe key's buckets — probe cost scales
//! with the matching tuples, not the window length. The condition is
//! decomposed into conjuncts tagged with the inputs they reference, so
//! each conjunct is evaluated at the shallowest enumeration depth where
//! its inputs are bound, pruning whole combination subtrees. Enumeration
//! order is adaptive: every [`REPLAN_EVERY`] probes the inputs are
//! re-sorted by estimated candidates per probe (smallest first), shrinking
//! the enumeration frontier. The emitted multiset is order-independent —
//! every qualifying combination is emitted exactly once at the probe
//! timestamp — so adaptivity never changes observable output beyond the
//! within-probe emission order.

use millstream_buffer::TsmBank;
use millstream_types::{BinOp, Expr, Result, Row, Schema, TimeDelta, Timestamp, Tuple, Value};

use crate::context::{OpContext, Operator, Poll, StepOutcome};
use crate::join_state::{JoinState, SpillStats, TierConfig};

/// Upper bound on join arity — lets the probe loop keep its odometer and
/// candidate slices on the stack (no per-probe allocation).
pub const MAX_ARITY: usize = 16;

/// Probes between adaptive-order re-plans.
const REPLAN_EVERY: u32 = 64;

/// One conjunct of the join condition and the inputs it references.
struct Conjunct {
    expr: Expr,
    /// Bit i set ⇔ the conjunct reads columns of input i.
    mask: u32,
}

/// The n-ary symmetric window join operator.
pub struct MultiWindowJoin {
    name: String,
    schema: Schema,
    /// Per-input window length.
    windows: Vec<TimeDelta>,
    /// Condition conjuncts over the concatenated row (all inputs, in input
    /// order). Empty = window cross product (modulo `keys`).
    conjuncts: Vec<Conjunct>,
    /// Equi-key column per input (one shared equi-class), if keyed.
    keys: Option<Vec<usize>>,
    tsm: TsmBank,
    stores: Vec<JoinState>,
    /// Column offset of each input in the concatenated row.
    offsets: Vec<usize>,
    /// High-water of forwarded punctuation only — data emissions at τ must
    /// not swallow a punctuation witness at the same τ.
    punct_high_water: Option<Timestamp>,
    probes: u64,
    matches: u64,
    /// All inputs sorted by ascending estimated candidates per probe.
    order: Vec<usize>,
    /// `depth_plan[p][s]` = conjuncts first fully bound at enumeration
    /// slot `s` when input `p` is the probe (slot 0 = probe columns only,
    /// slot d+1 = after assigning the d-th non-probe input in order).
    depth_plan: Vec<Vec<Vec<u16>>>,
    probes_since_plan: u32,
    /// Reusable full-width row image for conjunct evaluation and output
    /// assembly.
    scratch: Vec<Value>,
    /// Tier config applied to every store (`None` = hot rows only).
    tier: Option<TierConfig>,
    /// Per-enumeration-slot rehydration buffers for cold-tier candidates
    /// (reused across probes; all empty while the tier is off).
    cold: Vec<Vec<Tuple>>,
}

/// Appends the top-level AND-conjuncts of `e` to `out`.
fn flatten_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary {
        op: BinOp::And,
        left,
        right,
    } = e
    {
        flatten_conjuncts(left, out);
        flatten_conjuncts(right, out);
    } else {
        out.push(e.clone());
    }
}

/// ORs the input bits referenced by `e`'s column indexes into `mask`.
fn input_mask(e: &Expr, offsets: &[usize], mask: &mut u32) {
    match e {
        Expr::Column(col) => {
            // The owning input is the last offset ≤ col.
            let input = offsets.partition_point(|&o| o <= *col) - 1;
            *mask |= 1 << input;
        }
        Expr::Literal(_) => {}
        Expr::Binary { left, right, .. } => {
            input_mask(left, offsets, mask);
            input_mask(right, offsets, mask);
        }
        Expr::Not(inner) | Expr::Neg(inner) | Expr::IsNull(inner) => {
            input_mask(inner, offsets, mask);
        }
    }
}

impl MultiWindowJoin {
    /// Creates an n-ary join over `input_schemas`, one window per input.
    /// The output schema concatenates the inputs with positional
    /// qualifiers `in0`, `in1`, … applied to colliding names.
    pub fn new(
        name: impl Into<String>,
        input_schemas: &[Schema],
        windows: Vec<TimeDelta>,
        condition: Option<Expr>,
    ) -> Self {
        assert!(
            input_schemas.len() >= 2,
            "multi-way join needs at least two inputs"
        );
        assert!(
            input_schemas.len() <= MAX_ARITY,
            "multi-way join supports at most {MAX_ARITY} inputs"
        );
        assert_eq!(
            input_schemas.len(),
            windows.len(),
            "one window per input required"
        );
        let mut schema = input_schemas[0].clone();
        for (i, s) in input_schemas.iter().enumerate().skip(1) {
            schema = schema.join(s, &format!("in{}", i - 1), &format!("in{i}"));
        }
        let mut offsets = Vec::with_capacity(input_schemas.len());
        let mut off = 0;
        for s in input_schemas {
            offsets.push(off);
            off += s.len();
        }
        let mut flat = Vec::new();
        if let Some(c) = &condition {
            flatten_conjuncts(c, &mut flat);
        }
        let conjuncts = flat
            .into_iter()
            .map(|expr| {
                let mut mask = 0u32;
                input_mask(&expr, &offsets, &mut mask);
                Conjunct { expr, mask }
            })
            .collect();
        let arity = input_schemas.len();
        let stores = windows.iter().map(|w| JoinState::new(*w, None)).collect();
        let mut join = MultiWindowJoin {
            name: name.into(),
            schema,
            tsm: TsmBank::new(arity),
            stores,
            windows,
            conjuncts,
            keys: None,
            offsets,
            punct_high_water: None,
            probes: 0,
            matches: 0,
            order: (0..arity).collect(),
            depth_plan: Vec::new(),
            probes_since_plan: 0,
            scratch: vec![Value::Null; off],
            tier: None,
            cold: vec![Vec::new(); arity],
        };
        join.replan();
        join
    }

    /// Hash-partitions every window on one equi-key column per input (all
    /// columns form a single equi-class, as produced by chained `a.k = b.k
    /// AND b.k = c.k` conditions). `keys[i]` indexes input i's *own* row.
    /// Key equality is enforced by the hash probe with the engine's SQL
    /// `=` semantics (nulls never match), so the extracted conjuncts need
    /// not be repeated in `condition`.
    pub fn with_keys(mut self, keys: Vec<usize>) -> Self {
        assert_eq!(keys.len(), self.arity(), "one key column per input");
        let tier = self.tier;
        self.stores = self
            .windows
            .iter()
            .zip(&keys)
            .map(|(w, k)| JoinState::with_tier(*w, Some(*k), tier))
            .collect();
        self.keys = Some(keys);
        self
    }

    /// Enables the tiered cold store on every window state (builder
    /// style). `None` keeps hot rows only.
    pub fn with_tier(mut self, tier: Option<TierConfig>) -> Self {
        self.tier = tier;
        self.stores = self
            .windows
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let key = self.keys.as_ref().map(|k| k[i]);
                JoinState::with_tier(*w, key, tier)
            })
            .collect();
        self
    }

    /// Estimated resident bytes across all window states (hot rows + run
    /// metadata + resident run payloads; spilled payloads excluded).
    pub fn resident_state_bytes(&self) -> u64 {
        self.stores.iter().map(JoinState::resident_bytes).sum()
    }

    /// Number of inputs.
    pub fn arity(&self) -> usize {
        self.stores.len()
    }

    /// Stored tuples in input `i`'s window (physical retention may lag
    /// logical expiry between punctuations — see [`JoinState::len`]).
    pub fn window_len(&self, i: usize) -> usize {
        self.stores[i].len()
    }

    /// Column offset of input `i` in the concatenated output row — useful
    /// when authoring a `condition` expression against specific inputs.
    pub fn input_offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Lifetime candidate tuples examined across all enumeration depths.
    /// Keyed probes examine only matching buckets, so this is the measure
    /// of real probe work (sub-linear in window length when keyed).
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Lifetime matches emitted.
    pub fn matches(&self) -> u64 {
        self.matches
    }

    /// Peak total stored tuples across all windows (lifetime high-water).
    pub fn peak_state(&self) -> usize {
        self.stores.iter().map(|s| s.peak()).sum()
    }

    /// Current enumeration order (inputs by ascending estimated
    /// candidates) — exposed for tests and benches.
    pub fn probe_order(&self) -> &[usize] {
        &self.order
    }

    fn observe_heads(&mut self, ctx: &OpContext<'_>) {
        for i in 0..self.arity() {
            if let Some(ts) = ctx.input(i).front_ts() {
                self.tsm.observe(i, ts);
            }
        }
    }

    /// Re-sorts the enumeration order by estimated candidates and rebuilds
    /// the per-probe conjunct schedule.
    fn replan(&mut self) {
        self.probes_since_plan = 0;
        self.order
            .sort_by_key(|&i| self.stores[i].estimated_candidates());
        let arity = self.arity();
        self.depth_plan.resize_with(arity, Vec::new);
        for p in 0..arity {
            let plan = &mut self.depth_plan[p];
            plan.resize_with(arity, Vec::new);
            for slots in plan.iter_mut() {
                slots.clear();
            }
            // Enumeration sequence for probe p: `order` minus p. A
            // conjunct lands in the slot where its last input is bound.
            for (ci, c) in self.conjuncts.iter().enumerate() {
                let mut slot = 0;
                for (pos, &inp) in (1..).zip(self.order.iter().filter(|&&inp| inp != p)) {
                    if c.mask & (1 << inp) != 0 {
                        slot = pos;
                    }
                }
                plan[slot].push(ci as u16);
            }
        }
    }

    fn push_punctuation(&mut self, ctx: &OpContext<'_>, ts: Timestamp) -> Result<usize> {
        if self.punct_high_water.is_some_and(|hw| ts <= hw) {
            return Ok(0);
        }
        self.punct_high_water = Some(ts);
        ctx.output_mut(0).push(Tuple::punctuation(ts))?;
        Ok(1)
    }
}

impl Operator for MultiWindowJoin {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_iwp(&self) -> bool {
        true
    }

    fn tsm_min(&self) -> Option<Timestamp> {
        self.tsm.min_tau()
    }

    fn num_inputs(&self) -> usize {
        self.arity()
    }

    fn state_tuples(&self) -> usize {
        self.stores.iter().map(|s| s.len()).sum()
    }

    fn spill_stats(&self) -> SpillStats {
        let mut acc = SpillStats::default();
        for s in &self.stores {
            acc.merge(&s.spill_stats());
        }
        acc
    }

    fn output_schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self, ctx: &OpContext<'_>) -> Poll {
        self.observe_heads(ctx);
        match self.tsm.min_tau() {
            None => Poll::Starved {
                starving: self.tsm.argmin(),
            },
            Some(tau) => {
                if (0..self.arity()).any(|i| ctx.input(i).front_ts() == Some(tau)) {
                    Poll::Ready
                } else {
                    Poll::Starved {
                        starving: self.tsm.argmin(),
                    }
                }
            }
        }
    }

    fn step(&mut self, ctx: &OpContext<'_>) -> Result<StepOutcome> {
        self.observe_heads(ctx);
        let Some(tau) = self.tsm.min_tau() else {
            return Ok(StepOutcome::default());
        };

        // Prefer a data witness of τ.
        let mut data_input = None;
        let mut punct_input = None;
        for i in 0..self.arity() {
            let input = ctx.input(i);
            if let Some(head) = input.front() {
                if head.ts == tau {
                    if head.is_data() {
                        data_input = Some(i);
                        break;
                    }
                    punct_input.get_or_insert(i);
                }
            }
        }

        if let Some(i) = data_input {
            let probe = ctx.input_mut(i).pop().expect("head checked");
            for st in self.stores.iter_mut() {
                st.advance(probe.ts);
            }
            self.probes_since_plan += 1;
            if self.probes_since_plan >= REPLAN_EVERY {
                self.replan();
            }

            let arity = self.arity();
            let m = arity - 1;
            let width = self.scratch.len();
            let pvals = probe.values_expect();
            let off = self.offsets[i];
            self.scratch[off..off + pvals.len()].clone_from_slice(pvals);
            let probe_key: Option<&Value> = self.keys.as_ref().map(|k| &pvals[k[i]]);

            let mut produced = 0usize;
            let mut work = 0usize;
            let plan = &self.depth_plan[i];

            // Conjuncts bound by the probe alone gate the whole probe.
            let mut live = true;
            for &ci in &plan[0] {
                if !self.conjuncts[ci as usize]
                    .expr
                    .eval_predicate(&self.scratch)?
                {
                    live = false;
                    break;
                }
            }

            if live {
                // Enumeration sequence. Phase one rehydrates each slot's
                // cold-tier candidates into the reused `cold` buffers
                // (empty and free while the tier is off)...
                let mut seq = [0usize; MAX_ARITY];
                let mut d = 0;
                for &inp in &self.order {
                    if inp != i {
                        seq[d] = inp;
                        self.cold[d].clear();
                        self.stores[inp].probe_cold(probe_key, &mut self.cold[d])?;
                        d += 1;
                    }
                }
                // ...phase two borrows the hot slices in place (no
                // snapshot, no allocation). A slot's candidates are
                // cold-then-hot — ascending timestamps, exactly the
                // bucket order of an untiered store.
                let cold = &self.cold;
                let mut hot: [&[Tuple]; MAX_ARITY] = [&[]; MAX_ARITY];
                for (d, slot) in hot.iter_mut().enumerate().take(m) {
                    *slot = self.stores[seq[d]].probe_hot(probe_key);
                }

                // Odometer over the candidate slots: depth d binds input
                // seq[d]; conjuncts fire at the shallowest depth where all
                // their inputs are bound, pruning subtrees early.
                let mut idx = [0usize; MAX_ARITY];
                let mut d = 0usize;
                let mut probes = 0u64;
                let mut matches = 0u64;
                loop {
                    if idx[d] == cold[d].len() + hot[d].len() {
                        if d == 0 {
                            break;
                        }
                        idx[d] = 0;
                        d -= 1;
                        idx[d] += 1;
                        continue;
                    }
                    let t = if idx[d] < cold[d].len() {
                        &cold[d][idx[d]]
                    } else {
                        &hot[d][idx[d] - cold[d].len()]
                    };
                    probes += 1;
                    work += 1;
                    let o = self.offsets[seq[d]];
                    let vals = t.values_expect();
                    self.scratch[o..o + vals.len()].clone_from_slice(vals);
                    let mut pass = true;
                    for &ci in &plan[d + 1] {
                        if !self.conjuncts[ci as usize]
                            .expr
                            .eval_predicate(&self.scratch)?
                        {
                            pass = false;
                            break;
                        }
                    }
                    if !pass {
                        idx[d] += 1;
                        continue;
                    }
                    if d + 1 == m {
                        matches += 1;
                        let mut builder = Row::builder(width);
                        builder.extend_from_slice(&self.scratch);
                        let out = Tuple::data_with_entry(probe.ts, probe.entry, builder.finish());
                        ctx.output_mut(0).push(out)?;
                        produced += 1;
                        idx[d] += 1;
                    } else {
                        d += 1;
                        idx[d] = 0;
                    }
                }
                self.probes += probes;
                self.matches += matches;
            }

            self.stores[i].insert(probe);
            return Ok(StepOutcome {
                consumed: 1,
                produced,
                work,
            });
        }
        if let Some(i) = punct_input {
            ctx.input_mut(i).pop();
            for st in self.stores.iter_mut() {
                st.purge(tau);
            }
            let produced = self.push_punctuation(ctx, tau)?;
            return Ok(StepOutcome {
                consumed: 1,
                produced,
                work: 0,
            });
        }
        Ok(StepOutcome::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_buffer::Buffer;
    use millstream_types::{DataType, Field};
    use std::cell::RefCell;

    fn schema() -> Schema {
        Schema::new(vec![Field::new("k", DataType::Int)])
    }

    fn data(ts: u64, k: i64) -> Tuple {
        Tuple::data(Timestamp::from_micros(ts), vec![Value::Int(k)])
    }

    fn punct(ts: u64) -> Tuple {
        Tuple::punctuation(Timestamp::from_micros(ts))
    }

    struct Rig3 {
        bufs: Vec<RefCell<Buffer>>,
        out: RefCell<Buffer>,
    }

    impl Rig3 {
        fn new() -> Self {
            Rig3 {
                bufs: (0..3)
                    .map(|i| RefCell::new(Buffer::new(format!("in{i}"))))
                    .collect(),
                out: RefCell::new(Buffer::new("out")),
            }
        }

        fn drain(&self, j: &mut MultiWindowJoin) -> Vec<Tuple> {
            let inputs: Vec<&RefCell<Buffer>> = self.bufs.iter().collect();
            let outputs = [&self.out];
            let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
            while j.poll(&ctx).is_ready() {
                j.step(&ctx).unwrap();
            }
            let mut got = vec![];
            while let Some(t) = self.out.borrow_mut().pop() {
                got.push(t);
            }
            got
        }
    }

    fn join3(condition: Option<Expr>) -> MultiWindowJoin {
        MultiWindowJoin::new(
            "⋈3",
            &[schema(), schema(), schema()],
            vec![TimeDelta::from_micros(100); 3],
            condition,
        )
    }

    #[test]
    fn output_schema_concatenates_with_qualifiers() {
        let j = join3(None);
        assert_eq!(j.arity(), 3);
        assert_eq!(j.input_offset(0), 0);
        assert_eq!(j.input_offset(2), 2);
        let s = j.output_schema();
        assert_eq!(s.len(), 3);
        // All three columns named `k` collide and get qualified.
        assert!(s.field(0).unwrap().name.contains('k'));
        assert_ne!(s.field(0).unwrap().name, s.field(2).unwrap().name);
    }

    #[test]
    fn three_way_match_within_windows() {
        let rig = Rig3::new();
        // Equality across all three inputs via a condition expression.
        let cond = Expr::col(0)
            .eq(Expr::col(1))
            .and(Expr::col(1).eq(Expr::col(2)));
        let mut j = join3(Some(cond));
        rig.bufs[0].borrow_mut().push(data(1, 7)).unwrap();
        rig.bufs[1].borrow_mut().push(data(2, 7)).unwrap();
        rig.bufs[2].borrow_mut().push(data(3, 7)).unwrap();
        // Close the other inputs past 3 so the last probe can run.
        rig.bufs[0].borrow_mut().push(punct(10)).unwrap();
        rig.bufs[1].borrow_mut().push(punct(10)).unwrap();
        let out = rig.drain(&mut j);
        let datas: Vec<&Tuple> = out.iter().filter(|t| t.is_data()).collect();
        assert_eq!(datas.len(), 1, "one (7,7,7) combination");
        assert_eq!(datas[0].ts.as_micros(), 3, "probe timestamp");
        assert_eq!(
            datas[0].values().unwrap(),
            &[Value::Int(7), Value::Int(7), Value::Int(7)]
        );
    }

    #[test]
    fn keyed_three_way_agrees_with_condition_form() {
        // The same equi-join expressed as hash keys and as a condition
        // must produce the same multiset of rows.
        let run = |keyed: bool| {
            let rig = Rig3::new();
            let mut j = if keyed {
                join3(None).with_keys(vec![0, 0, 0])
            } else {
                join3(Some(
                    Expr::col(0)
                        .eq(Expr::col(1))
                        .and(Expr::col(1).eq(Expr::col(2))),
                ))
            };
            for ts in 0..12u64 {
                let input = (ts % 3) as usize;
                rig.bufs[input]
                    .borrow_mut()
                    .push(data(ts, (ts % 4) as i64))
                    .unwrap();
            }
            for b in &rig.bufs {
                b.borrow_mut().push(punct(50)).unwrap();
            }
            let mut rows: Vec<(u64, Vec<Value>)> = rig
                .drain(&mut j)
                .iter()
                .filter(|t| t.is_data())
                .map(|t| (t.ts.as_micros(), t.values().unwrap().to_vec()))
                .collect();
            rows.sort();
            (rows, j.probes())
        };
        let (keyed_rows, keyed_probes) = run(true);
        let (cond_rows, cond_probes) = run(false);
        assert_eq!(keyed_rows, cond_rows);
        assert!(
            keyed_probes < cond_probes,
            "hash probing examines fewer candidates ({keyed_probes} vs {cond_probes})"
        );
    }

    #[test]
    fn cross_product_counts_combinations() {
        let rig = Rig3::new();
        let mut j = join3(None);
        // Two tuples in each of inputs 0 and 1, then one probe on input 2.
        for ts in [1u64, 2] {
            rig.bufs[0].borrow_mut().push(data(ts, ts as i64)).unwrap();
        }
        for ts in [3u64, 4] {
            rig.bufs[1].borrow_mut().push(data(ts, ts as i64)).unwrap();
        }
        rig.bufs[2].borrow_mut().push(data(5, 9)).unwrap();
        rig.bufs[0].borrow_mut().push(punct(10)).unwrap();
        rig.bufs[1].borrow_mut().push(punct(10)).unwrap();
        let out = rig.drain(&mut j);
        let datas: Vec<&Tuple> = out.iter().filter(|t| t.is_data()).collect();
        // The probe at ts 5 pairs with {1,2} × {3,4} = 4 combinations.
        assert_eq!(datas.len(), 4);
        assert!(datas.iter().all(|t| t.ts.as_micros() == 5));
    }

    #[test]
    fn expiry_prunes_old_windows() {
        let rig = Rig3::new();
        let mut j = join3(None);
        rig.bufs[0].borrow_mut().push(data(1, 1)).unwrap();
        rig.bufs[1].borrow_mut().push(data(2, 2)).unwrap();
        // Probe far beyond the 100 µs windows.
        rig.bufs[2].borrow_mut().push(data(500, 3)).unwrap();
        rig.bufs[0].borrow_mut().push(punct(600)).unwrap();
        rig.bufs[1].borrow_mut().push(punct(600)).unwrap();
        let out = rig.drain(&mut j);
        assert!(
            out.iter().all(|t| t.is_punctuation()),
            "stale windows expired"
        );
        assert_eq!(j.window_len(0), 0);
        assert_eq!(j.window_len(1), 0);
    }

    #[test]
    fn punctuation_flows_and_dedupes() {
        let rig = Rig3::new();
        let mut j = join3(None);
        for b in &rig.bufs {
            b.borrow_mut().push(punct(50)).unwrap();
        }
        let out = rig.drain(&mut j);
        assert_eq!(out.len(), 1, "one forwarded ETS for three inputs");
        assert!(out[0].is_punctuation());
        assert_eq!(out[0].ts.as_micros(), 50);
    }

    #[test]
    fn punctuation_after_same_ts_data_is_forwarded() {
        // Regression: a data emission at τ used to advance the shared
        // high-water, swallowing a punctuation witness at the same τ.
        let rig = Rig3::new();
        let cond = Expr::col(0)
            .eq(Expr::col(1))
            .and(Expr::col(1).eq(Expr::col(2)));
        let mut j = join3(Some(cond));
        rig.bufs[0].borrow_mut().push(data(1, 7)).unwrap();
        rig.bufs[1].borrow_mut().push(data(2, 7)).unwrap();
        rig.bufs[2].borrow_mut().push(data(3, 7)).unwrap();
        rig.bufs[0].borrow_mut().push(punct(3)).unwrap();
        rig.bufs[1].borrow_mut().push(punct(3)).unwrap();
        let out = rig.drain(&mut j);
        // The probe at τ=3 emits the combination; the punctuation
        // witnesses at τ=3 must still close τ downstream.
        assert_eq!(out.len(), 2, "data then forwarded punct: {out:?}");
        assert!(out[0].is_data());
        assert_eq!(out[0].ts.as_micros(), 3);
        assert!(out[1].is_punctuation());
        assert_eq!(out[1].ts.as_micros(), 3);
    }

    #[test]
    fn starves_until_all_inputs_heard() {
        let rig = Rig3::new();
        let mut j = join3(None);
        rig.bufs[0].borrow_mut().push(data(1, 1)).unwrap();
        rig.bufs[1].borrow_mut().push(data(1, 1)).unwrap();
        let inputs: Vec<&RefCell<Buffer>> = rig.bufs.iter().collect();
        let outputs = [&rig.out];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        assert_eq!(j.poll(&ctx), Poll::starved_on(2));
    }

    #[test]
    #[should_panic(expected = "at least two inputs")]
    fn rejects_unary() {
        let _ = MultiWindowJoin::new("x", &[schema()], vec![TimeDelta::ZERO], None);
    }

    #[test]
    fn binary_case_agrees_with_window_join() {
        use crate::join::{JoinSpec, WindowJoin};
        // Same workload through MultiWindowJoin(k=2) and WindowJoin.
        let tuples_a: Vec<(u64, i64)> = vec![(1, 5), (3, 6), (7, 5), (9, 6)];
        let tuples_b: Vec<(u64, i64)> = vec![(2, 5), (6, 6), (8, 5)];
        let w = TimeDelta::from_micros(4);

        let run_multi = || {
            let a = RefCell::new(Buffer::new("a"));
            let b = RefCell::new(Buffer::new("b"));
            let out = RefCell::new(Buffer::new("out"));
            let mut j = MultiWindowJoin::new("m", &[schema(), schema()], vec![w, w], None)
                .with_keys(vec![0, 0]);
            for &(ts, v) in &tuples_a {
                a.borrow_mut().push(data(ts, v)).unwrap();
            }
            for &(ts, v) in &tuples_b {
                b.borrow_mut().push(data(ts, v)).unwrap();
            }
            a.borrow_mut().push(punct(100)).unwrap();
            b.borrow_mut().push(punct(100)).unwrap();
            let inputs = [&a, &b];
            let outputs = [&out];
            let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
            while j.poll(&ctx).is_ready() {
                j.step(&ctx).unwrap();
            }
            let mut rows = vec![];
            while let Some(t) = out.borrow_mut().pop() {
                if t.is_data() {
                    rows.push((t.ts.as_micros(), t.values().unwrap().to_vec()));
                }
            }
            rows
        };

        let run_binary = || {
            let a = RefCell::new(Buffer::new("a"));
            let b = RefCell::new(Buffer::new("b"));
            let out = RefCell::new(Buffer::new("out"));
            let mut j = WindowJoin::new(
                "b",
                schema().join(&schema(), "a", "b"),
                JoinSpec::symmetric(w).with_key(0, 0),
            );
            for &(ts, v) in &tuples_a {
                a.borrow_mut().push(data(ts, v)).unwrap();
            }
            for &(ts, v) in &tuples_b {
                b.borrow_mut().push(data(ts, v)).unwrap();
            }
            a.borrow_mut().push(punct(100)).unwrap();
            b.borrow_mut().push(punct(100)).unwrap();
            let inputs = [&a, &b];
            let outputs = [&out];
            let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
            while j.poll(&ctx).is_ready() {
                j.step(&ctx).unwrap();
            }
            let mut rows = vec![];
            while let Some(t) = out.borrow_mut().pop() {
                if t.is_data() {
                    rows.push((t.ts.as_micros(), t.values().unwrap().to_vec()));
                }
            }
            rows
        };

        assert_eq!(run_multi(), run_binary());
    }

    #[test]
    fn condition_binary_case_agrees_with_window_join() {
        use crate::join::{JoinSpec, WindowJoin};
        // The pre-existing form: equality as a condition, no keys.
        let w = TimeDelta::from_micros(4);
        let a = RefCell::new(Buffer::new("a"));
        let b = RefCell::new(Buffer::new("b"));
        let out = RefCell::new(Buffer::new("out"));
        let cond = Expr::col(0).eq(Expr::col(1));
        let mut multi = MultiWindowJoin::new("m", &[schema(), schema()], vec![w, w], Some(cond));
        let mut binary = WindowJoin::new(
            "b",
            schema().join(&schema(), "a", "b"),
            JoinSpec::symmetric(w).with_key(0, 0),
        );
        let drive = |j: &mut dyn Operator,
                     a: &RefCell<Buffer>,
                     b: &RefCell<Buffer>,
                     out: &RefCell<Buffer>| {
            for &(ts, v) in &[(1u64, 5i64), (3, 6), (7, 5), (9, 6)] {
                a.borrow_mut().push(data(ts, v)).unwrap();
            }
            for &(ts, v) in &[(2u64, 5i64), (6, 6), (8, 5)] {
                b.borrow_mut().push(data(ts, v)).unwrap();
            }
            a.borrow_mut().push(punct(100)).unwrap();
            b.borrow_mut().push(punct(100)).unwrap();
            let inputs = [a, b];
            let outputs = [out];
            let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
            while j.poll(&ctx).is_ready() {
                j.step(&ctx).unwrap();
            }
            let mut rows = vec![];
            while let Some(t) = out.borrow_mut().pop() {
                if t.is_data() {
                    rows.push((t.ts.as_micros(), t.values().unwrap().to_vec()));
                }
            }
            rows
        };
        let m_rows = drive(&mut multi, &a, &b, &out);
        let a2 = RefCell::new(Buffer::new("a"));
        let b2 = RefCell::new(Buffer::new("b"));
        let out2 = RefCell::new(Buffer::new("out"));
        let b_rows = drive(&mut binary, &a2, &b2, &out2);
        assert_eq!(m_rows, b_rows);
    }

    #[test]
    fn adaptive_order_prefers_small_windows() {
        let rig = Rig3::new();
        let mut j = join3(None).with_keys(vec![0, 0, 0]);
        // Input 2 accumulates far more state than inputs 0 and 1; after a
        // re-plan it must be probed last.
        let mut ts = 0u64;
        for round in 0..80u64 {
            ts += 1;
            rig.bufs[2].borrow_mut().push(data(ts, 1)).unwrap();
            if round % 8 == 0 {
                ts += 1;
                rig.bufs[0].borrow_mut().push(data(ts, 2)).unwrap();
                ts += 1;
                rig.bufs[1].borrow_mut().push(data(ts, 3)).unwrap();
            }
            rig.bufs[0].borrow_mut().push(punct(ts + 1)).unwrap();
            rig.bufs[1].borrow_mut().push(punct(ts + 1)).unwrap();
            rig.drain(&mut j);
        }
        let order = j.probe_order();
        assert_eq!(order[2], 2, "fattest input probed last: {order:?}");
    }

    #[test]
    fn stale_estimate_does_not_flip_probe_order() {
        // Regression for the probe-order estimate bug: keyed
        // `estimated_candidates()` used to divide the *physical*
        // `keyed_live` by live buckets, and `keyed_live` only shrinks at
        // sweeps. An input whose window content has logically expired —
        // but whose floor has not yet moved half a window past the last
        // sweep, so no sweep ran — kept its stale count and was ranked
        // as the fattest input, pushing the genuinely cheapest store to
        // the end of the enumeration order.
        let rig = Rig3::new();
        let mut j = MultiWindowJoin::new(
            "⋈3",
            &[schema(), schema(), schema()],
            vec![TimeDelta::from_micros(1_000); 3],
            None,
        )
        .with_keys(vec![0, 0, 0]);
        // Input 0: a 200-tuple burst that will be logically dead by the
        // probe phase. Distinct keys per input avoid any matches.
        for ts in 1..=200u64 {
            rig.bufs[0].borrow_mut().push(data(ts, 1)).unwrap();
        }
        rig.bufs[0].borrow_mut().push(data(1470, 1)).unwrap();
        // Input 1: a small fresh batch that stays live.
        for ts in 1391..=1400u64 {
            rig.bufs[1].borrow_mut().push(data(ts, 2)).unwrap();
        }
        rig.bufs[1].borrow_mut().push(data(1470, 2)).unwrap();
        // Input 2 drives enough probes at ts ≈ 1400+ to cross a re-plan
        // boundary while input 0's floor lag (≈470 µs) stays under the
        // half-window sweep hysteresis (500 µs) — no sweep, stale count.
        for ts in 1401..=1468u64 {
            rig.bufs[2].borrow_mut().push(data(ts, 3)).unwrap();
        }
        let out = rig.drain(&mut j);
        assert!(out.is_empty(), "keys are disjoint, no matches expected");
        assert!(j.window_len(0) > 150, "input 0 not yet physically swept");
        let order = j.probe_order();
        let pos = |input: usize| order.iter().position(|&p| p == input).unwrap();
        // Logically, input 0 holds ~1 live tuple — by far the cheapest
        // store. The stale physical estimate (200+ tuples) used to rank
        // it behind the genuinely fatter inputs 1 and 2.
        assert!(
            pos(0) < pos(1),
            "mostly-expired input 0 must rank cheaper than live input 1: {order:?}"
        );
        assert!(
            pos(0) < pos(2),
            "mostly-expired input 0 must rank cheapest of all: {order:?}"
        );
    }
}
