//! Split (fan-out) — copies one stream to several consumers.
//!
//! DSMSs share work across continuous queries by letting one source (or one
//! operator's output) feed multiple downstream plans. millstream models
//! this with an explicit `Split` operator: each input tuple — data *and*
//! punctuation, so ETS reaches every branch — is forwarded to all output
//! ports. Copies are cheap either way the row is stored: narrow rows are
//! inline (a copy is a short memcpy), wide rows are reference-counted and
//! the copies share one allocation.
//!
//! Backtracking composes naturally: when any branch starves through the
//! split, the walk continues to the split's predecessor, and a generated
//! ETS fans out to *all* branches at once.

use millstream_types::{Result, Schema};

use crate::context::{OpContext, Operator, Poll, StepOutcome};

/// The fan-out operator.
pub struct Split {
    name: String,
    schema: Schema,
    outputs: usize,
    forwarded: u64,
}

impl Split {
    /// Creates a split with `outputs` identical output ports.
    pub fn new(name: impl Into<String>, schema: Schema, outputs: usize) -> Self {
        assert!(outputs >= 2, "a split needs at least two outputs");
        Split {
            name: name.into(),
            schema,
            outputs,
            forwarded: 0,
        }
    }

    /// Tuples forwarded so far (per input tuple, not per copy).
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

impl Operator for Split {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_inputs(&self) -> usize {
        1
    }

    fn num_outputs(&self) -> usize {
        self.outputs
    }

    fn output_schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self, ctx: &OpContext<'_>) -> Poll {
        if ctx.input(0).is_empty() {
            Poll::starved_on(0)
        } else {
            Poll::Ready
        }
    }

    fn step(&mut self, ctx: &OpContext<'_>) -> Result<StepOutcome> {
        let Some(tuple) = ctx.input_mut(0).pop() else {
            return Ok(StepOutcome::default());
        };
        for port in 0..self.outputs {
            // Clones never allocate: inline rows copy, wide rows share.
            ctx.output_mut(port).push(tuple.clone())?;
        }
        self.forwarded += 1;
        Ok(StepOutcome {
            consumed: 1,
            produced: self.outputs,
            work: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_buffer::Buffer;
    use millstream_types::{DataType, Field, Timestamp, Tuple, Value};
    use std::cell::RefCell;

    fn schema() -> Schema {
        Schema::new(vec![Field::new("v", DataType::Int)])
    }

    #[test]
    fn copies_every_tuple_to_every_port() {
        let mut s = Split::new("⋔", schema(), 3);
        assert_eq!(s.num_outputs(), 3);
        let input = RefCell::new(Buffer::new("in"));
        let outs: Vec<RefCell<Buffer>> = (0..3)
            .map(|i| RefCell::new(Buffer::new(format!("o{i}"))))
            .collect();
        input
            .borrow_mut()
            .push(Tuple::data(Timestamp::from_micros(1), vec![Value::Int(7)]))
            .unwrap();
        input
            .borrow_mut()
            .push(Tuple::punctuation(Timestamp::from_micros(5)))
            .unwrap();
        let inputs = [&input];
        let outputs: Vec<&RefCell<Buffer>> = outs.iter().collect();
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        while s.poll(&ctx).is_ready() {
            s.step(&ctx).unwrap();
        }
        for o in &outs {
            assert_eq!(o.borrow().len(), 2, "data + punctuation on every port");
            assert!(o.borrow().front().unwrap().is_data());
        }
        assert_eq!(s.forwarded(), 2);
    }

    #[test]
    fn copies_share_wide_row_storage() {
        // Narrow rows are inline (copying them is cheaper than sharing);
        // wide rows spill to shared storage, and fan-out copies must keep
        // sharing that one allocation rather than deep-copying it.
        use millstream_types::{TupleBody, INLINE_ROW_CAP};
        let mut s = Split::new("⋔", schema(), 2);
        let input = RefCell::new(Buffer::new("in"));
        let o1 = RefCell::new(Buffer::new("o1"));
        let o2 = RefCell::new(Buffer::new("o2"));
        let wide: Vec<Value> = (0..=INLINE_ROW_CAP as i64).map(Value::Int).collect();
        input
            .borrow_mut()
            .push(Tuple::data(Timestamp::from_micros(1), wide))
            .unwrap();
        let inputs = [&input];
        let outputs = [&o1, &o2];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        s.step(&ctx).unwrap();
        let a = o1.borrow_mut().pop().unwrap();
        let b = o2.borrow_mut().pop().unwrap();
        if let (TupleBody::Data(x), TupleBody::Data(y)) = (&a.body, &b.body) {
            assert!(x.is_spilled(), "a 5-wide row must spill");
            assert!(
                x.shares_storage_with(y),
                "fan-out must not deep-copy wide rows"
            );
        } else {
            panic!("expected data tuples");
        }
    }

    #[test]
    #[should_panic(expected = "at least two outputs")]
    fn rejects_single_output() {
        let _ = Split::new("⋔", schema(), 1);
    }
}
