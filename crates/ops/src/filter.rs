//! Selection (σ) — a non-IWP operator.
//!
//! Consumes one tuple per step; data tuples that fail the predicate are
//! dropped, punctuation tuples "go through unchanged" (paper §4.2). Because
//! a dropped tuple still advances stream time, the filter's output order is
//! exactly the input order restricted to passing tuples plus punctuation.

use millstream_types::{Expr, Result, Schema, Timestamp, Tuple};

use crate::context::{BatchOutcome, OpContext, Operator, Poll, StepOutcome};

/// How a filter handles data tuples it drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DropBehavior {
    /// Dropped tuples vanish silently (the paper's selection).
    #[default]
    Silent,
    /// Each dropped tuple is replaced by a punctuation carrying its
    /// timestamp, so downstream IWP operators still observe time progress
    /// on sparse post-filter paths. An engineering extension; off by
    /// default for paper fidelity.
    EmitPunctuation,
}

/// The selection operator.
pub struct Filter {
    name: String,
    predicate: Expr,
    schema: Schema,
    drop_behavior: DropBehavior,
    passed: u64,
    dropped: u64,
}

impl Filter {
    /// Creates a selection with the given predicate over `schema`.
    pub fn new(name: impl Into<String>, schema: Schema, predicate: Expr) -> Self {
        Filter {
            name: name.into(),
            predicate,
            schema,
            drop_behavior: DropBehavior::default(),
            passed: 0,
            dropped: 0,
        }
    }

    /// Sets the drop behaviour (builder style).
    pub fn with_drop_behavior(mut self, behavior: DropBehavior) -> Self {
        self.drop_behavior = behavior;
        self
    }

    /// Number of data tuples that passed the predicate so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }

    /// Number of data tuples dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Operator for Filter {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_inputs(&self) -> usize {
        1
    }

    fn output_schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self, ctx: &OpContext<'_>) -> Poll {
        if ctx.input(0).is_empty() {
            Poll::starved_on(0)
        } else {
            Poll::Ready
        }
    }

    fn step(&mut self, ctx: &OpContext<'_>) -> Result<StepOutcome> {
        let Some(tuple) = ctx.input_mut(0).pop() else {
            return Ok(StepOutcome::default());
        };
        match &tuple.body {
            millstream_types::TupleBody::Punctuation => {
                ctx.output_mut(0).push(tuple)?;
                Ok(StepOutcome::consumed_one(1))
            }
            millstream_types::TupleBody::Data(values) => {
                if self.predicate.eval_predicate(values)? {
                    self.passed += 1;
                    ctx.output_mut(0).push(tuple)?;
                    Ok(StepOutcome::consumed_one(1))
                } else {
                    self.dropped += 1;
                    match self.drop_behavior {
                        DropBehavior::Silent => Ok(StepOutcome::consumed_one(0)),
                        DropBehavior::EmitPunctuation => {
                            let ts: Timestamp = tuple.ts;
                            ctx.output_mut(0).push(Tuple::punctuation(ts))?;
                            Ok(StepOutcome::consumed_one(1))
                        }
                    }
                }
            }
        }
    }

    fn batch_safe(&self) -> bool {
        // Pure function of the head tuple; never reads `ctx.now`.
        true
    }

    /// The Encore fast path: a run of predicate failures consumes many
    /// tuples without producing any, so the whole run fuses into one
    /// scheduling decision. Borrows are taken once for the run instead of
    /// twice per step (poll + step), and a silent drop-run is measured by
    /// peeking the queue front and removed with one bulk
    /// [`discard_front`](millstream_buffer::Buffer::discard_front) instead
    /// of per-tuple pops — that is where the batching win comes from.
    fn step_batch(&mut self, ctx: &OpContext<'_>, max_steps: usize) -> Result<BatchOutcome> {
        let mut batch = BatchOutcome::default();
        let mut input = ctx.input_mut(0);
        let mut output = ctx.output_mut(0);
        loop {
            if self.drop_behavior == DropBehavior::Silent {
                // Count the failing-data prefix within the step budget,
                // then drop it in one pass. Each discarded tuple is one
                // per-tuple step that consumed one tuple and produced
                // nothing, exactly as `step` would have recorded.
                let mut run = 0usize;
                for t in input.iter().take(max_steps - batch.steps) {
                    let millstream_types::TupleBody::Data(values) = &t.body else {
                        break;
                    };
                    if self.predicate.eval_predicate(values)? {
                        break;
                    }
                    run += 1;
                }
                if run > 0 {
                    input.discard_front(run);
                    self.dropped += run as u64;
                    batch.steps += run;
                    batch.consumed += run;
                    if batch.steps >= max_steps {
                        break;
                    }
                }
            }
            let Some(tuple) = input.pop() else {
                // Poll said ready but the buffer is empty (defensive, as in
                // `step`): record the empty step the per-tuple path charges.
                if batch.steps == 0 {
                    batch.record(StepOutcome::default());
                }
                break;
            };
            match &tuple.body {
                millstream_types::TupleBody::Punctuation => {
                    output.push(tuple)?;
                    batch.record(StepOutcome::consumed_one(1));
                    break; // yield
                }
                millstream_types::TupleBody::Data(values) => {
                    if self.predicate.eval_predicate(values)? {
                        self.passed += 1;
                        output.push(tuple)?;
                        batch.record(StepOutcome::consumed_one(1));
                        break; // yield
                    }
                    self.dropped += 1;
                    match self.drop_behavior {
                        DropBehavior::Silent => batch.record(StepOutcome::consumed_one(0)),
                        DropBehavior::EmitPunctuation => {
                            output.push(Tuple::punctuation(tuple.ts))?;
                            batch.record(StepOutcome::consumed_one(1));
                            break; // yield
                        }
                    }
                }
            }
            // A leftover output tuple means the scheduler's Forward rule
            // would fire: the batch must end exactly like per-tuple NOS.
            if batch.steps >= max_steps || !output.is_empty() {
                break;
            }
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_buffer::Buffer;
    use millstream_types::{DataType, Field, Value};
    use std::cell::RefCell;

    fn schema() -> Schema {
        Schema::new(vec![Field::new("v", DataType::Int)])
    }

    fn run_filter(filter: &mut Filter, tuples: Vec<Tuple>) -> Vec<Tuple> {
        let input = RefCell::new(Buffer::new("in"));
        let output = RefCell::new(Buffer::new("out"));
        for t in tuples {
            input.borrow_mut().push(t).unwrap();
        }
        let inputs = [&input];
        let outputs = [&output];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        while filter.poll(&ctx).is_ready() {
            filter.step(&ctx).unwrap();
        }
        let mut out = vec![];
        while let Some(t) = output.borrow_mut().pop() {
            out.push(t);
        }
        out
    }

    fn data(ts: u64, v: i64) -> Tuple {
        Tuple::data(Timestamp::from_micros(ts), vec![Value::Int(v)])
    }

    #[test]
    fn passes_matching_drops_rest() {
        let mut f = Filter::new("σ", schema(), Expr::col(0).gt(Expr::lit(5)));
        let out = run_filter(&mut f, vec![data(1, 3), data(2, 9), data(3, 6)]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].values().unwrap()[0], Value::Int(9));
        assert_eq!(f.passed(), 2);
        assert_eq!(f.dropped(), 1);
    }

    #[test]
    fn punctuation_passes_through_unchanged() {
        let mut f = Filter::new("σ", schema(), Expr::lit(false));
        let out = run_filter(
            &mut f,
            vec![data(1, 1), Tuple::punctuation(Timestamp::from_micros(2))],
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].is_punctuation());
        assert_eq!(out[0].ts.as_micros(), 2);
    }

    #[test]
    fn emit_punctuation_mode_marks_progress() {
        let mut f = Filter::new("σ", schema(), Expr::col(0).gt(Expr::lit(100)))
            .with_drop_behavior(DropBehavior::EmitPunctuation);
        let out = run_filter(&mut f, vec![data(7, 1)]);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_punctuation());
        assert_eq!(out[0].ts.as_micros(), 7);
    }

    #[test]
    fn null_predicate_is_false() {
        let mut f = Filter::new("σ", schema(), Expr::col(0).gt(Expr::lit(5)));
        let t = Tuple::data(Timestamp::from_micros(1), vec![Value::Null]);
        let out = run_filter(&mut f, vec![t]);
        assert!(out.is_empty());
        assert_eq!(f.dropped(), 1);
    }

    #[test]
    fn starves_on_empty_input() {
        let mut f = Filter::new("σ", schema(), Expr::lit(true));
        let input = RefCell::new(Buffer::new("in"));
        let output = RefCell::new(Buffer::new("out"));
        let inputs = [&input];
        let outputs = [&output];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        assert_eq!(f.poll(&ctx), Poll::starved_on(0));
    }

    #[test]
    fn step_batch_fuses_drop_runs() {
        let mut f = Filter::new("σ", schema(), Expr::col(0).gt(Expr::lit(5)));
        let input = RefCell::new(Buffer::new("in"));
        let output = RefCell::new(Buffer::new("out"));
        for t in [data(1, 1), data(2, 2), data(3, 3), data(4, 9), data(5, 1)] {
            input.borrow_mut().push(t).unwrap();
        }
        let inputs = [&input];
        let outputs = [&output];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        assert!(f.batch_safe());
        // Three drops fuse with the passing step; the trailing 1 is left
        // for the next scheduling decision (yield fired).
        let b = f.step_batch(&ctx, 64).unwrap();
        assert_eq!((b.steps, b.consumed, b.produced), (4, 4, 1));
        assert_eq!(input.borrow().len(), 1);
        assert_eq!(output.borrow().len(), 1);
        assert_eq!(f.dropped(), 3);
        assert_eq!(f.passed(), 1);
    }

    #[test]
    fn step_batch_stops_at_punctuation_and_budget() {
        let mut f = Filter::new("σ", schema(), Expr::lit(false));
        let input = RefCell::new(Buffer::new("in"));
        let output = RefCell::new(Buffer::new("out"));
        for t in [
            data(1, 1),
            data(2, 2),
            Tuple::punctuation(Timestamp::from_micros(3)),
            data(4, 4),
        ] {
            input.borrow_mut().push(t).unwrap();
        }
        let inputs = [&input];
        let outputs = [&output];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        // Budget of 1: exactly one per-tuple step (a silent drop).
        let b = f.step_batch(&ctx, 1).unwrap();
        assert_eq!((b.steps, b.produced), (1, 0));
        // Unbounded: the forwarded punctuation ends the batch (yield); the
        // batch never crosses it.
        let b = f.step_batch(&ctx, 64).unwrap();
        assert_eq!((b.steps, b.consumed, b.produced), (2, 2, 1));
        assert!(output.borrow().front().unwrap().is_punctuation());
        assert_eq!(input.borrow().len(), 1, "data after the ETS untouched");
    }

    #[test]
    fn eval_error_surfaces() {
        // Predicate adds a string — evaluation error must propagate.
        let mut f = Filter::new(
            "σ",
            schema(),
            Expr::col(0).add(Expr::lit("x")).gt(Expr::lit(0)),
        );
        let input = RefCell::new(Buffer::new("in"));
        let output = RefCell::new(Buffer::new("out"));
        input.borrow_mut().push(data(1, 1)).unwrap();
        let inputs = [&input];
        let outputs = [&output];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        assert!(f.step(&ctx).is_err());
    }
}
