//! The operator abstraction: execution context, progress polling and the
//! single-step execution contract.
//!
//! The paper's execution model (§3) drives operators through a two-step
//! cycle: *execute the current operator*, then *select the next operator*
//! using the `yield` / `more` state variables. millstream realises this as:
//!
//! * [`Operator::poll`] — evaluates the operator's `more` condition (for
//!   IWP operators, the *relaxed* condition of Fig. 5 via TSM registers)
//!   and, when `more` is false, reports **which inputs starve progress** so
//!   the scheduler knows where to backtrack (§3.2's `pred_j`).
//! * [`Operator::step`] — performs one production/consumption step
//!   (Figs. 1 and 6 move one tuple at a time; repetition is the scheduler's
//!   Encore rule).
//!
//! `yield` is not part of the trait: per the paper it is simply "the output
//! buffer of the current operator contains some tuples", which the scheduler
//! checks directly on the buffer.

use std::cell::{Ref, RefCell, RefMut};

use millstream_buffer::Buffer;
use millstream_types::{Result, Schema, Timestamp};

/// Execution context handed to an operator for one poll or step: borrowed
/// views of its input and output buffers plus the current clock reading.
pub struct OpContext<'a> {
    inputs: &'a [&'a RefCell<Buffer>],
    outputs: &'a [&'a RefCell<Buffer>],
    /// The current (virtual or wall-clock) time. Operators that assign
    /// latent timestamps read it; sinks use it to compute output latency.
    pub now: Timestamp,
}

impl<'a> OpContext<'a> {
    /// Creates a context over the given buffer slices.
    pub fn new(
        inputs: &'a [&'a RefCell<Buffer>],
        outputs: &'a [&'a RefCell<Buffer>],
        now: Timestamp,
    ) -> Self {
        OpContext { inputs, outputs, now }
    }

    /// Number of input buffers.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output buffers.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Immutable view of input buffer `i`.
    pub fn input(&self, i: usize) -> Ref<'_, Buffer> {
        self.inputs[i].borrow()
    }

    /// Mutable view of input buffer `i` (for consumption).
    pub fn input_mut(&self, i: usize) -> RefMut<'_, Buffer> {
        self.inputs[i].borrow_mut()
    }

    /// Mutable view of output buffer `i` (for production).
    pub fn output_mut(&self, i: usize) -> RefMut<'_, Buffer> {
        self.outputs[i].borrow_mut()
    }

    /// True iff output buffer 0 currently holds tuples — the paper's
    /// `yield` condition.
    pub fn output_nonempty(&self) -> bool {
        self.outputs.first().is_some_and(|b| !b.borrow().is_empty())
    }
}

/// The outcome of evaluating an operator's `more` condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Poll {
    /// The operator can execute a step right now.
    Ready,
    /// The operator cannot proceed. `starving` lists the input indices that
    /// bound progress (empty inputs whose TSM register holds the minimum τ,
    /// or inputs never yet seen). The scheduler backtracks toward the
    /// predecessor feeding the first starving input (paper §3.2).
    Starved {
        /// Input indices that bound progress; never empty.
        starving: Vec<usize>,
    },
}

impl Poll {
    /// True iff the operator is ready to execute.
    pub fn is_ready(&self) -> bool {
        matches!(self, Poll::Ready)
    }

    /// Convenience constructor for a single starving input.
    pub fn starved_on(input: usize) -> Poll {
        Poll::Starved {
            starving: vec![input],
        }
    }
}

/// What one [`Operator::step`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepOutcome {
    /// Tuples removed from input buffers.
    pub consumed: usize,
    /// Tuples appended to output buffers (data and punctuation alike).
    pub produced: usize,
    /// Extra work units beyond consumed+produced (e.g. window probes in a
    /// join); feeds the simulator's CPU cost model.
    pub work: usize,
}

impl StepOutcome {
    /// A step that consumed one tuple and produced `produced`.
    pub fn consumed_one(produced: usize) -> Self {
        StepOutcome {
            consumed: 1,
            produced,
            work: 0,
        }
    }

    /// Total work units for cost accounting.
    pub fn total_work(&self) -> usize {
        self.consumed + self.produced + self.work
    }
}

/// A query operator — one node of the query graph.
///
/// Implementations process **one head tuple per step** and must keep their
/// outputs ordered by timestamp. IWP operators ([`Operator::is_iwp`]) use
/// TSM registers and must propagate punctuation per Fig. 6; non-IWP
/// operators must pass punctuation through unchanged (modulo reformatting).
pub trait Operator {
    /// Human-readable operator name for plans and diagnostics.
    fn name(&self) -> &str;

    /// True for idle-waiting-prone operators (union, join).
    fn is_iwp(&self) -> bool {
        false
    }

    /// True iff the operator tolerates out-of-order input (only the
    /// order-restoring `Reorder` stage). The graph builder uses this to
    /// validate that an unordered source feeds an order-restoring consumer.
    fn accepts_disorder(&self) -> bool {
        false
    }

    /// True iff the operator's *output* is driven by stream-time progress
    /// rather than input presence alone (windowed aggregates flush when
    /// time passes a boundary). Such operators benefit from ETS punctuation
    /// even though they are single-input; the graph builder uses this
    /// (together with [`Operator::is_iwp`]) to decide which sources should
    /// answer on-demand ETS requests at all.
    fn is_time_driven(&self) -> bool {
        false
    }

    /// Declared number of inputs. The graph builder checks arity.
    fn num_inputs(&self) -> usize;

    /// Declared number of outputs (0 for sinks, otherwise 1).
    fn num_outputs(&self) -> usize {
        1
    }

    /// The schema of the output stream. Sinks report their input schema.
    fn output_schema(&self) -> &Schema;

    /// Evaluates the operator's `more` condition against the current buffer
    /// state. Mutable so IWP operators can fold the current heads into
    /// their TSM registers (paper §4.1: registers update automatically as
    /// tuples are examined).
    fn poll(&mut self, ctx: &OpContext<'_>) -> Poll;

    /// Executes one production/consumption step. Only called after `poll`
    /// returned [`Poll::Ready`]; implementations may return an empty
    /// outcome if the state changed in between, but must not block.
    fn step(&mut self, ctx: &OpContext<'_>) -> Result<StepOutcome>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_helpers() {
        assert!(Poll::Ready.is_ready());
        let p = Poll::starved_on(2);
        assert!(!p.is_ready());
        assert_eq!(p, Poll::Starved { starving: vec![2] });
    }

    #[test]
    fn step_outcome_work_accounting() {
        let s = StepOutcome {
            consumed: 1,
            produced: 3,
            work: 5,
        };
        assert_eq!(s.total_work(), 9);
        assert_eq!(StepOutcome::consumed_one(2).total_work(), 3);
        assert_eq!(StepOutcome::default().total_work(), 0);
    }

    #[test]
    fn context_views_buffers() {
        use millstream_types::{Tuple, Value};
        let a = RefCell::new(Buffer::new("a"));
        let out = RefCell::new(Buffer::new("out"));
        let inputs = [&a];
        let outputs = [&out];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::from_micros(5));

        assert_eq!(ctx.num_inputs(), 1);
        assert_eq!(ctx.num_outputs(), 1);
        assert!(!ctx.output_nonempty());
        ctx.input_mut(0)
            .push(Tuple::data(Timestamp::ZERO, vec![Value::Int(1)]))
            .unwrap();
        assert_eq!(ctx.input(0).len(), 1);
        ctx.output_mut(0)
            .push(Tuple::punctuation(Timestamp::ZERO))
            .unwrap();
        assert!(ctx.output_nonempty());
        assert_eq!(ctx.now.as_micros(), 5);
    }
}
