//! The operator abstraction: execution context, progress polling and the
//! single-step execution contract.
//!
//! The paper's execution model (§3) drives operators through a two-step
//! cycle: *execute the current operator*, then *select the next operator*
//! using the `yield` / `more` state variables. millstream realises this as:
//!
//! * [`Operator::poll`] — evaluates the operator's `more` condition (for
//!   IWP operators, the *relaxed* condition of Fig. 5 via TSM registers)
//!   and, when `more` is false, reports **which inputs starve progress** so
//!   the scheduler knows where to backtrack (§3.2's `pred_j`).
//! * [`Operator::step`] — performs one production/consumption step
//!   (Figs. 1 and 6 move one tuple at a time; repetition is the scheduler's
//!   Encore rule).
//!
//! `yield` is not part of the trait: per the paper it is simply "the output
//! buffer of the current operator contains some tuples", which the scheduler
//! checks directly on the buffer.

use std::cell::{Ref, RefCell, RefMut};

use millstream_buffer::Buffer;
use millstream_types::{Result, Schema, Timestamp};

/// Execution context handed to an operator for one poll or step: borrowed
/// views of its input and output buffers plus the current clock reading.
pub struct OpContext<'a> {
    inputs: &'a [&'a RefCell<Buffer>],
    outputs: &'a [&'a RefCell<Buffer>],
    /// The current (virtual or wall-clock) time. Operators that assign
    /// latent timestamps read it; sinks use it to compute output latency.
    pub now: Timestamp,
}

impl<'a> OpContext<'a> {
    /// Creates a context over the given buffer slices.
    pub fn new(
        inputs: &'a [&'a RefCell<Buffer>],
        outputs: &'a [&'a RefCell<Buffer>],
        now: Timestamp,
    ) -> Self {
        OpContext {
            inputs,
            outputs,
            now,
        }
    }

    /// Number of input buffers.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output buffers.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Immutable view of input buffer `i`.
    pub fn input(&self, i: usize) -> Ref<'_, Buffer> {
        self.inputs[i].borrow()
    }

    /// Mutable view of input buffer `i` (for consumption).
    pub fn input_mut(&self, i: usize) -> RefMut<'_, Buffer> {
        self.inputs[i].borrow_mut()
    }

    /// Immutable view of output buffer `i`.
    pub fn output(&self, i: usize) -> Ref<'_, Buffer> {
        self.outputs[i].borrow()
    }

    /// Mutable view of output buffer `i` (for production).
    pub fn output_mut(&self, i: usize) -> RefMut<'_, Buffer> {
        self.outputs[i].borrow_mut()
    }

    /// True iff output buffer 0 currently holds tuples — the paper's
    /// `yield` condition.
    pub fn output_nonempty(&self) -> bool {
        self.outputs.first().is_some_and(|b| !b.borrow().is_empty())
    }

    /// True iff *any* output buffer holds tuples — the exact `yield`
    /// condition the depth-first scheduler's Forward rule tests. Batched
    /// execution must stop the moment this turns true so the scheduling
    /// decisions stay identical to per-tuple execution.
    pub fn yielded(&self) -> bool {
        self.outputs.iter().any(|b| !b.borrow().is_empty())
    }
}

/// The outcome of evaluating an operator's `more` condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Poll {
    /// The operator can execute a step right now.
    Ready,
    /// The operator cannot proceed. `starving` lists the input indices that
    /// bound progress (empty inputs whose TSM register holds the minimum τ,
    /// or inputs never yet seen). The scheduler backtracks toward the
    /// predecessor feeding the first starving input (paper §3.2).
    Starved {
        /// Input indices that bound progress; never empty. Inline storage:
        /// polling is a per-scheduling-decision operation and must not
        /// allocate.
        starving: millstream_buffer::StarveList,
    },
}

impl Poll {
    /// True iff the operator is ready to execute.
    pub fn is_ready(&self) -> bool {
        matches!(self, Poll::Ready)
    }

    /// Convenience constructor for a single starving input.
    pub fn starved_on(input: usize) -> Poll {
        Poll::Starved {
            starving: millstream_buffer::StarveList::one(input),
        }
    }
}

/// What one [`Operator::step`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepOutcome {
    /// Tuples removed from input buffers.
    pub consumed: usize,
    /// Tuples appended to output buffers (data and punctuation alike).
    pub produced: usize,
    /// Extra work units beyond consumed+produced (e.g. window probes in a
    /// join); feeds the simulator's CPU cost model.
    pub work: usize,
}

impl StepOutcome {
    /// A step that consumed one tuple and produced `produced`.
    pub fn consumed_one(produced: usize) -> Self {
        StepOutcome {
            consumed: 1,
            produced,
            work: 0,
        }
    }

    /// Total work units for cost accounting.
    pub fn total_work(&self) -> usize {
        self.consumed + self.produced + self.work
    }
}

/// What a run of consecutive [`Operator::step_batch`] steps did — the
/// aggregate of the per-step [`StepOutcome`]s plus the step count, so the
/// scheduler can charge the exact per-tuple cost (`steps × step_cost_fixed
/// + per_unit × total_work`) in one clock advance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Operator steps executed in this batch.
    pub steps: usize,
    /// Tuples removed from input buffers across the batch.
    pub consumed: usize,
    /// Tuples appended to output buffers across the batch.
    pub produced: usize,
    /// Extra work units across the batch.
    pub work: usize,
}

impl BatchOutcome {
    /// Folds one step's outcome into the batch.
    pub fn record(&mut self, step: StepOutcome) {
        self.steps += 1;
        self.consumed += step.consumed;
        self.produced += step.produced;
        self.work += step.work;
    }

    /// Total work units for cost accounting (sum over the batch's steps).
    pub fn total_work(&self) -> usize {
        self.consumed + self.produced + self.work
    }

    /// The batch viewed as a single aggregate step (for activity traces).
    pub fn as_step_outcome(&self) -> StepOutcome {
        StepOutcome {
            consumed: self.consumed,
            produced: self.produced,
            work: self.work,
        }
    }
}

/// A query operator — one node of the query graph.
///
/// Implementations process **one head tuple per step** and must keep their
/// outputs ordered by timestamp. IWP operators ([`Operator::is_iwp`]) use
/// TSM registers and must propagate punctuation per Fig. 6; non-IWP
/// operators must pass punctuation through unchanged (modulo reformatting).
///
/// Operators must be [`Send`] so a whole component sub-graph can move onto
/// a worker thread (parallel execution). Operators are still driven by one
/// thread at a time — `Send`, not `Sync`, is the requirement.
pub trait Operator: Send {
    /// Human-readable operator name for plans and diagnostics.
    fn name(&self) -> &str;

    /// True for idle-waiting-prone operators (union, join).
    fn is_iwp(&self) -> bool {
        false
    }

    /// True iff the operator tolerates out-of-order input (only the
    /// order-restoring `Reorder` stage). The graph builder uses this to
    /// validate that an unordered source feeds an order-restoring consumer.
    fn accepts_disorder(&self) -> bool {
        false
    }

    /// True iff the operator's *output* is driven by stream-time progress
    /// rather than input presence alone (windowed aggregates flush when
    /// time passes a boundary). Such operators benefit from ETS punctuation
    /// even though they are single-input; the graph builder uses this
    /// (together with [`Operator::is_iwp`]) to decide which sources should
    /// answer on-demand ETS requests at all.
    fn is_time_driven(&self) -> bool {
        false
    }

    /// The operator's current TSM-register minimum τ, if it maintains TSM
    /// registers (IWP operators only). The sentinel layer uses it to check
    /// that an IWP operator never emits beyond its enabling frontier:
    /// after a producing step, every output high-water mark must be ≤ τ.
    /// Non-IWP operators (and latent-mode operators, which stamp from the
    /// clock rather than the registers) return `None`.
    fn tsm_min(&self) -> Option<Timestamp> {
        None
    }

    /// A lower bound on the timestamp of anything this operator may emit
    /// *from state it already holds* — independent of future input.
    /// `None` means the operator holds nothing back: every future emission
    /// is derived from (and stamped no earlier than) future input, which
    /// the caller bounds separately.
    ///
    /// The sharded executor folds these holds into each worker's published
    /// frontier floor: `floor = min(source frontiers, queued fronts,
    /// frontier holds)`. An operator that buffers tuples (Reorder's slack
    /// heap) or emits at a boundary behind its input (windowed aggregates
    /// stamp at the window end, which trails the tuple that closed it)
    /// MUST report that hold, or the floor overshoots and the merge stage
    /// releases output it would later have to re-order.
    fn frontier_hold(&self) -> Option<Timestamp> {
        None
    }

    /// Tuples retained in long-lived join/window state, for peak-state
    /// accounting (`ExecStats::peak_join_state`). The executor samples
    /// this after every charged batch; stateless operators report 0.
    fn state_tuples(&self) -> usize {
        0
    }

    /// Lifetime tiered-store counters (compacted runs, spilled bytes,
    /// run drops), sampled by the executor into `ExecStats`/`OpProfile`.
    /// Operators without a tiered cold store report zeros.
    fn spill_stats(&self) -> crate::join_state::SpillStats {
        crate::join_state::SpillStats::default()
    }

    /// Declared number of inputs. The graph builder checks arity.
    fn num_inputs(&self) -> usize;

    /// Declared number of outputs (0 for sinks, otherwise 1).
    fn num_outputs(&self) -> usize {
        1
    }

    /// The schema of the output stream. Sinks report their input schema.
    fn output_schema(&self) -> &Schema;

    /// Evaluates the operator's `more` condition against the current buffer
    /// state. Mutable so IWP operators can fold the current heads into
    /// their TSM registers (paper §4.1: registers update automatically as
    /// tuples are examined).
    fn poll(&mut self, ctx: &OpContext<'_>) -> Poll;

    /// Executes one production/consumption step. Only called after `poll`
    /// returned [`Poll::Ready`]; implementations may return an empty
    /// outcome if the state changed in between, but must not block.
    fn step(&mut self, ctx: &OpContext<'_>) -> Result<StepOutcome>;

    /// Receives a feedback-punctuation signal flowing *against* the data
    /// direction: the scheduler calls this when the pressure level computed
    /// from this operator's input occupancy (and everything downstream of
    /// it) changes. The default ignores it. Implementations must keep the
    /// ordering contract regardless of the signal; output-changing
    /// reactions (e.g. `Reorder` slack tightening) are only permitted when
    /// `signal.allow_degraded` is set.
    fn on_feedback(&mut self, signal: &millstream_buffer::FeedbackSignal) {
        let _ = signal;
    }

    /// True iff consecutive steps of this operator may be fused into one
    /// scheduling decision without changing its output: the operator must
    /// not read [`OpContext::now`] (the clock advances between per-tuple
    /// steps, so a now-dependent operator would stamp different values)
    /// and each step must depend only on buffer and operator state.
    /// Conservative default: `false`.
    fn batch_safe(&self) -> bool {
        false
    }

    /// Executes up to `max_steps` consecutive steps as one batch — the
    /// scheduler's Encore rule applied without returning to the scheduler
    /// in between. Like [`Operator::step`], only called after `poll`
    /// returned [`Poll::Ready`], so the first step runs unconditionally.
    ///
    /// The batch must stop at every boundary where the depth-first
    /// scheduler would stop making Encore decisions:
    /// * **yield** — any output buffer became (or already was) non-empty,
    ///   which would fire the Forward rule;
    /// * **starvation** — `poll` no longer returns ready;
    /// * **the step budget** — `max_steps` reached.
    ///
    /// The default implementation loops `step`; operators override it to
    /// fuse buffer borrows across the run.
    fn step_batch(&mut self, ctx: &OpContext<'_>, max_steps: usize) -> Result<BatchOutcome> {
        let mut batch = BatchOutcome::default();
        loop {
            let outcome = self.step(ctx)?;
            batch.record(outcome);
            if batch.steps >= max_steps || ctx.yielded() || !self.poll(ctx).is_ready() {
                break;
            }
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_helpers() {
        assert!(Poll::Ready.is_ready());
        let p = Poll::starved_on(2);
        assert!(!p.is_ready());
        assert_eq!(p, Poll::starved_on(2));
    }

    #[test]
    fn step_outcome_work_accounting() {
        let s = StepOutcome {
            consumed: 1,
            produced: 3,
            work: 5,
        };
        assert_eq!(s.total_work(), 9);
        assert_eq!(StepOutcome::consumed_one(2).total_work(), 3);
        assert_eq!(StepOutcome::default().total_work(), 0);
    }

    #[test]
    fn batch_outcome_aggregates_steps() {
        let mut b = BatchOutcome::default();
        b.record(StepOutcome::consumed_one(0));
        b.record(StepOutcome::consumed_one(2));
        b.record(StepOutcome {
            consumed: 1,
            produced: 0,
            work: 4,
        });
        assert_eq!(b.steps, 3);
        assert_eq!(b.consumed, 3);
        assert_eq!(b.produced, 2);
        assert_eq!(b.total_work(), 9);
        assert_eq!(
            b.as_step_outcome(),
            StepOutcome {
                consumed: 3,
                produced: 2,
                work: 4
            }
        );
    }

    /// A toy operator that consumes one tuple per step and produces output
    /// only for even-valued tuples — enough to exercise every stop
    /// condition of the default `step_batch`.
    struct EvenKeeper {
        schema: Schema,
    }

    impl Operator for EvenKeeper {
        fn name(&self) -> &str {
            "even"
        }
        fn num_inputs(&self) -> usize {
            1
        }
        fn output_schema(&self) -> &Schema {
            &self.schema
        }
        fn poll(&mut self, ctx: &OpContext<'_>) -> Poll {
            if ctx.input(0).is_empty() {
                Poll::starved_on(0)
            } else {
                Poll::Ready
            }
        }
        fn step(&mut self, ctx: &OpContext<'_>) -> Result<StepOutcome> {
            use millstream_types::Value;
            let Some(t) = ctx.input_mut(0).pop() else {
                return Ok(StepOutcome::default());
            };
            let keep = matches!(t.values(), Some([Value::Int(v)]) if v % 2 == 0);
            if keep {
                ctx.output_mut(0).push(t)?;
                Ok(StepOutcome::consumed_one(1))
            } else {
                Ok(StepOutcome::consumed_one(0))
            }
        }
    }

    fn even_rig(values: &[i64]) -> (RefCell<Buffer>, RefCell<Buffer>) {
        use millstream_types::{Tuple, Value};
        let input = RefCell::new(Buffer::new("in"));
        let output = RefCell::new(Buffer::new("out"));
        for (i, &v) in values.iter().enumerate() {
            input
                .borrow_mut()
                .push(Tuple::data(
                    Timestamp::from_micros(i as u64),
                    vec![Value::Int(v)],
                ))
                .unwrap();
        }
        (input, output)
    }

    #[test]
    fn default_step_batch_stops_at_yield() {
        use millstream_types::{DataType, Field};
        let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
        let mut op = EvenKeeper { schema };
        let (input, output) = even_rig(&[1, 3, 5, 4, 7]);
        let inputs = [&input];
        let outputs = [&output];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        // Three silent drops, then the produced tuple stops the batch.
        let b = op.step_batch(&ctx, 64).unwrap();
        assert_eq!(b.steps, 4);
        assert_eq!(b.consumed, 4);
        assert_eq!(b.produced, 1);
        assert_eq!(input.borrow().len(), 1, "the 7 is untouched");
    }

    #[test]
    fn default_step_batch_respects_budget_and_starvation() {
        use millstream_types::{DataType, Field};
        let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
        let mut op = EvenKeeper {
            schema: schema.clone(),
        };
        let (input, output) = even_rig(&[1, 3, 5]);
        let inputs = [&input];
        let outputs = [&output];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        // Budget of 2 stops mid-run.
        let b = op.step_batch(&ctx, 2).unwrap();
        assert_eq!(b.steps, 2);
        // Draining the rest stops on starvation, not the budget.
        let b = op.step_batch(&ctx, 64).unwrap();
        assert_eq!(b.steps, 1);
        assert!(input.borrow().is_empty());
        assert!(output.borrow().is_empty());
        // Budget of 1 is exactly one per-tuple step.
        let mut op1 = EvenKeeper { schema };
        let (input1, output1) = even_rig(&[2]);
        let inputs1 = [&input1];
        let outputs1 = [&output1];
        let ctx1 = OpContext::new(&inputs1, &outputs1, Timestamp::ZERO);
        let b = op1.step_batch(&ctx1, 1).unwrap();
        assert_eq!((b.steps, b.produced), (1, 1));
    }

    #[test]
    fn context_views_buffers() {
        use millstream_types::{Tuple, Value};
        let a = RefCell::new(Buffer::new("a"));
        let out = RefCell::new(Buffer::new("out"));
        let inputs = [&a];
        let outputs = [&out];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::from_micros(5));

        assert_eq!(ctx.num_inputs(), 1);
        assert_eq!(ctx.num_outputs(), 1);
        assert!(!ctx.output_nonempty());
        ctx.input_mut(0)
            .push(Tuple::data(Timestamp::ZERO, vec![Value::Int(1)]))
            .unwrap();
        assert_eq!(ctx.input(0).len(), 1);
        ctx.output_mut(0)
            .push(Tuple::punctuation(Timestamp::ZERO))
            .unwrap();
        assert!(ctx.output_nonempty());
        assert_eq!(ctx.now.as_micros(), 5);
    }
}
