//! Sink — the terminal node of a query path.
//!
//! Sinks hand tuples to an output wrapper (in Stream Mill, a separate
//! process). Two paper-mandated behaviours:
//!
//! * sinks **eliminate punctuation tuples** — "they are only needed
//!   internally" (paper footnote 3);
//! * the operator immediately before a sink is drained eagerly (the
//!   scheduler's special case), which the sink supports by consuming its
//!   whole input each step.
//!
//! The sink reports each delivered data tuple to a [`SinkCollector`]
//! together with the delivery instant, which is where output-latency
//! measurement happens (`latency = now − tuple.entry`).

use millstream_types::{Result, Schema, Timestamp, Tuple};

use crate::context::{OpContext, Operator, Poll, StepOutcome};

/// Receives the tuples a sink delivers.
///
/// Collectors must be [`Send`] because the sink that owns them may run on
/// a worker thread under parallel execution; shared-state collectors
/// should hold `Arc<Mutex<…>>` or atomics rather than `Rc<Cell<…>>`.
pub trait SinkCollector: Send {
    /// Called once per delivered data tuple with the delivery instant.
    fn deliver(&mut self, tuple: Tuple, now: Timestamp);
}

impl SinkCollector for Box<dyn SinkCollector> {
    fn deliver(&mut self, tuple: Tuple, now: Timestamp) {
        (**self).deliver(tuple, now);
    }
}

/// A collector that simply stores delivered tuples (tests, examples).
#[derive(Debug, Default)]
pub struct VecCollector {
    /// Delivered tuples with their delivery instants.
    pub delivered: Vec<(Tuple, Timestamp)>,
}

impl SinkCollector for VecCollector {
    fn deliver(&mut self, tuple: Tuple, now: Timestamp) {
        self.delivered.push((tuple, now));
    }
}

/// A collector that drops tuples but counts them (benchmarks).
#[derive(Debug, Default)]
pub struct CountingCollector {
    /// Number of data tuples delivered.
    pub count: u64,
    /// Sum of per-tuple latencies in microseconds (for a cheap mean).
    pub latency_sum_micros: u128,
}

impl SinkCollector for CountingCollector {
    fn deliver(&mut self, tuple: Tuple, now: Timestamp) {
        self.count += 1;
        self.latency_sum_micros += now.duration_since(tuple.entry).as_micros() as u128;
    }
}

/// The sink operator.
pub struct Sink<C: SinkCollector> {
    name: String,
    schema: Schema,
    collector: C,
    punctuation_eliminated: u64,
}

impl<C: SinkCollector> Sink<C> {
    /// Creates a sink delivering to `collector`. `schema` is the schema of
    /// the stream being sunk (reported as the "output" schema).
    pub fn new(name: impl Into<String>, schema: Schema, collector: C) -> Self {
        Sink {
            name: name.into(),
            schema,
            collector,
            punctuation_eliminated: 0,
        }
    }

    /// Borrow the collector.
    pub fn collector(&self) -> &C {
        &self.collector
    }

    /// Mutably borrow the collector.
    pub fn collector_mut(&mut self) -> &mut C {
        &mut self.collector
    }

    /// Consume the sink, returning the collector.
    pub fn into_collector(self) -> C {
        self.collector
    }

    /// Number of punctuation tuples eliminated.
    pub fn punctuation_eliminated(&self) -> u64 {
        self.punctuation_eliminated
    }
}

impl<C: SinkCollector> Operator for Sink<C> {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_inputs(&self) -> usize {
        1
    }

    fn num_outputs(&self) -> usize {
        0
    }

    fn output_schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self, ctx: &OpContext<'_>) -> Poll {
        if ctx.input(0).is_empty() {
            Poll::starved_on(0)
        } else {
            Poll::Ready
        }
    }

    fn step(&mut self, ctx: &OpContext<'_>) -> Result<StepOutcome> {
        let Some(tuple) = ctx.input_mut(0).pop() else {
            return Ok(StepOutcome::default());
        };
        if tuple.is_punctuation() {
            self.punctuation_eliminated += 1;
        } else {
            self.collector.deliver(tuple, ctx.now);
        }
        Ok(StepOutcome::consumed_one(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_buffer::Buffer;
    use millstream_types::{DataType, Field, Value};
    use std::cell::RefCell;

    fn schema() -> Schema {
        Schema::new(vec![Field::new("v", DataType::Int)])
    }

    #[test]
    fn delivers_data_eliminates_punctuation() {
        let mut sink = Sink::new("out", schema(), VecCollector::default());
        let input = RefCell::new(Buffer::new("in"));
        input
            .borrow_mut()
            .push(Tuple::data(Timestamp::from_micros(1), vec![Value::Int(7)]))
            .unwrap();
        input
            .borrow_mut()
            .push(Tuple::punctuation(Timestamp::from_micros(2)))
            .unwrap();
        let inputs = [&input];
        let outputs: [&RefCell<Buffer>; 0] = [];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::from_micros(10));
        while sink.poll(&ctx).is_ready() {
            sink.step(&ctx).unwrap();
        }
        assert_eq!(sink.collector().delivered.len(), 1);
        assert_eq!(sink.punctuation_eliminated(), 1);
        let (t, at) = &sink.collector().delivered[0];
        assert_eq!(t.values().unwrap()[0], Value::Int(7));
        assert_eq!(at.as_micros(), 10);
    }

    #[test]
    fn counting_collector_accumulates_latency() {
        let mut c = CountingCollector::default();
        let t = Tuple::data_with_entry(
            Timestamp::from_micros(100),
            Timestamp::from_micros(40),
            vec![Value::Int(1)],
        );
        c.deliver(t, Timestamp::from_micros(100));
        assert_eq!(c.count, 1);
        assert_eq!(c.latency_sum_micros, 60);
    }

    #[test]
    fn sink_has_zero_outputs() {
        let sink = Sink::new("out", schema(), VecCollector::default());
        assert_eq!(sink.num_outputs(), 0);
        assert_eq!(sink.num_inputs(), 1);
    }
}
