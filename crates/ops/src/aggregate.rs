//! Windowed grouped aggregation — a punctuation-consuming extension
//! operator.
//!
//! The paper restricts its discussion to union and join "due to space
//! limitations" but notes that *other* IWP/punctuation-sensitive operators
//! exist. Tumbling-window aggregation is the classic one: results for a
//! window `[k·w, (k+1)·w)` can only be emitted once time provably passed
//! `(k+1)·w`, which a sparse stream may take arbitrarily long to witness
//! with data — exactly the situation ETS punctuation fixes. This operator
//! flushes closed windows whenever a data tuple *or punctuation* advances
//! stream time, making it a direct beneficiary of on-demand ETS.

use std::collections::BTreeMap;

use millstream_types::{
    DataType, Error, Expr, Field, Result, Row, Schema, TimeDelta, Timestamp, Tuple, Value,
};

use crate::context::{OpContext, Operator, Poll, StepOutcome};

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Number of input rows.
    Count,
    /// Sum of the argument.
    Sum,
    /// Minimum of the argument.
    Min,
    /// Maximum of the argument.
    Max,
    /// Arithmetic mean of the argument.
    Avg,
}

impl AggFunc {
    /// The name used in plans and the query language.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }

    /// Result type given the argument type.
    pub fn result_type(self, arg: DataType) -> DataType {
        match self {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => arg,
        }
    }
}

/// One aggregate column: a function over an expression.
#[derive(Debug, Clone)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// The argument (ignored for COUNT).
    pub arg: Expr,
    /// Output column name.
    pub name: String,
}

/// Running state of one aggregate within one group. Crate-visible so the
/// pane-based sliding aggregate can reuse and merge partials.
#[derive(Debug, Clone)]
pub(crate) enum AggState {
    Count(i64),
    Sum(Value),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, count: i64 },
}

impl AggState {
    pub(crate) fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(Value::Int(0)),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
        }
    }

    pub(crate) fn update(&mut self, value: Value) -> Result<()> {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum(acc) => {
                if !value.is_null() {
                    *acc = acc.add(&value)?;
                }
            }
            AggState::Min(slot) => {
                if !value.is_null() {
                    *slot = Some(match slot.take() {
                        Some(v) => v.min(value),
                        None => value,
                    });
                }
            }
            AggState::Max(slot) => {
                if !value.is_null() {
                    *slot = Some(match slot.take() {
                        Some(v) => v.max(value),
                        None => value,
                    });
                }
            }
            AggState::Avg { sum, count } => {
                if !value.is_null() {
                    *sum += value.as_float()?;
                    *count += 1;
                }
            }
        }
        Ok(())
    }

    /// Combines another partial of the same function into this one —
    /// the pane-merge operation of the sliding aggregate.
    pub(crate) fn merge(&mut self, other: &AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => *a = a.add(b)?,
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(bv) = b {
                    *a = Some(match a.take() {
                        Some(av) => av.min(bv.clone()),
                        None => bv.clone(),
                    });
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(bv) = b {
                    *a = Some(match a.take() {
                        Some(av) => av.max(bv.clone()),
                        None => bv.clone(),
                    });
                }
            }
            (AggState::Avg { sum: sa, count: ca }, AggState::Avg { sum: sb, count: cb }) => {
                *sa += sb;
                *ca += cb;
            }
            _ => {
                return Err(Error::eval(
                    "cannot merge aggregate partials of different functions",
                ));
            }
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::Sum(v) => v,
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
            AggState::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
        }
    }
}

/// Tumbling-window grouped aggregation.
#[derive(Debug)]
pub struct WindowAggregate {
    name: String,
    window: TimeDelta,
    group_by: Vec<Expr>,
    aggs: Vec<AggExpr>,
    schema: Schema,
    /// Start of the currently open window, set by the first tuple.
    window_start: Option<Timestamp>,
    /// Group key → per-aggregate running states. Keys are [`Row`]s so
    /// narrow group keys are built and looked up without heap allocation.
    groups: BTreeMap<Row, Vec<AggState>>,
    windows_flushed: u64,
}

impl WindowAggregate {
    /// Creates a tumbling-window aggregate. `input_schema` is used to infer
    /// the output schema; `group_names` names the group-by output columns.
    pub fn new(
        name: impl Into<String>,
        input_schema: &Schema,
        window: TimeDelta,
        group_by: Vec<(String, Expr)>,
        aggs: Vec<AggExpr>,
    ) -> Result<Self> {
        if window.is_zero() {
            return Err(Error::config("aggregate window must be positive"));
        }
        let mut fields = Vec::with_capacity(1 + group_by.len() + aggs.len());
        fields.push(Field::new("window_start", DataType::Int));
        for (n, e) in &group_by {
            fields.push(Field::new(n.clone(), e.infer_type(input_schema)?));
        }
        for a in &aggs {
            let arg_ty = match a.func {
                AggFunc::Count => DataType::Int,
                _ => a.arg.infer_type(input_schema)?,
            };
            fields.push(Field::new(a.name.clone(), a.func.result_type(arg_ty)));
        }
        Ok(WindowAggregate {
            name: name.into(),
            window,
            group_by: group_by.into_iter().map(|(_, e)| e).collect(),
            aggs,
            schema: Schema::new(fields),
            window_start: None,
            groups: BTreeMap::new(),
            windows_flushed: 0,
        })
    }

    /// Number of windows flushed so far.
    pub fn windows_flushed(&self) -> u64 {
        self.windows_flushed
    }

    /// Number of currently open groups.
    pub fn open_groups(&self) -> usize {
        self.groups.len()
    }

    /// Flushes every window that provably closed given stream time reached
    /// `ts`. Output tuples are stamped with the window end.
    fn flush_until(&mut self, ctx: &OpContext<'_>, ts: Timestamp) -> Result<usize> {
        let mut produced = 0;
        while let Some(start) = self.window_start {
            // Saturating arithmetic: an end-of-stream punctuation may carry
            // Timestamp::MAX. A saturated start means everything flushed.
            if start == Timestamp::MAX {
                break;
            }
            let end = start.saturating_add(self.window);
            if ts < end {
                break;
            }
            let groups = std::mem::take(&mut self.groups);
            for (key, states) in groups {
                let mut row = Row::builder(1 + key.len() + states.len());
                row.push(Value::Int(start.as_micros() as i64));
                row.extend_from_slice(&key);
                for s in states {
                    row.push(s.finish());
                }
                ctx.output_mut(0).push(Tuple::data(end, row.finish()))?;
                produced += 1;
            }
            self.windows_flushed += 1;
            // Advance directly to the window containing `ts` (empty windows
            // in between produce no rows).
            let gap = ts.duration_since(end).as_micros() / self.window.as_micros();
            let next = end.saturating_add(self.window.saturating_mul(gap));
            // No forward progress is possible once the boundary saturates;
            // park at MAX so later punctuation cannot spin here.
            if next <= start {
                self.window_start = Some(Timestamp::MAX);
                break;
            }
            self.window_start = Some(next);
            if ts < next.saturating_add(self.window) {
                break;
            }
        }
        Ok(produced)
    }
}

impl Operator for WindowAggregate {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_inputs(&self) -> usize {
        1
    }

    fn is_time_driven(&self) -> bool {
        true
    }

    /// The open window flushes at its end — a timestamp *behind* the input
    /// that will close it — so the window end is a hold on future output.
    fn frontier_hold(&self) -> Option<Timestamp> {
        match self.window_start {
            Some(start) if start != Timestamp::MAX => Some(start.saturating_add(self.window)),
            _ => None,
        }
    }

    fn output_schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self, ctx: &OpContext<'_>) -> Poll {
        if ctx.input(0).is_empty() {
            Poll::starved_on(0)
        } else {
            Poll::Ready
        }
    }

    fn step(&mut self, ctx: &OpContext<'_>) -> Result<StepOutcome> {
        let Some(tuple) = ctx.input_mut(0).pop() else {
            return Ok(StepOutcome::default());
        };

        if self.window_start.is_none() {
            // Align windows to the first observed timestamp, rounded down
            // to a window multiple for reproducibility.
            let m = self.window.as_micros();
            let aligned = (tuple.ts.as_micros() / m) * m;
            self.window_start = Some(Timestamp::from_micros(aligned));
        }

        let mut produced = self.flush_until(ctx, tuple.ts)?;

        match tuple.values() {
            None => {
                // Punctuation: everything before it is flushed; forward the
                // ETS downstream.
                ctx.output_mut(0).push(tuple)?;
                produced += 1;
            }
            Some(row) => {
                let mut key = Row::builder(self.group_by.len());
                for g in &self.group_by {
                    key.push(g.eval(row)?);
                }
                let states = self
                    .groups
                    .entry(key.finish())
                    .or_insert_with(|| self.aggs.iter().map(|a| AggState::new(a.func)).collect());
                for (state, agg) in states.iter_mut().zip(self.aggs.iter()) {
                    let v = match agg.func {
                        AggFunc::Count => Value::Int(1),
                        _ => agg.arg.eval(row)?,
                    };
                    state.update(v)?;
                }
            }
        }
        Ok(StepOutcome {
            consumed: 1,
            produced,
            work: produced,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_buffer::Buffer;
    use std::cell::RefCell;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ])
    }

    fn agg() -> WindowAggregate {
        WindowAggregate::new(
            "γ",
            &schema(),
            TimeDelta::from_micros(100),
            vec![("k".into(), Expr::col(0))],
            vec![
                AggExpr {
                    func: AggFunc::Count,
                    arg: Expr::col(1),
                    name: "n".into(),
                },
                AggExpr {
                    func: AggFunc::Sum,
                    arg: Expr::col(1),
                    name: "total".into(),
                },
                AggExpr {
                    func: AggFunc::Avg,
                    arg: Expr::col(1),
                    name: "mean".into(),
                },
            ],
        )
        .unwrap()
    }

    fn data(ts: u64, k: i64, v: i64) -> Tuple {
        Tuple::data(
            Timestamp::from_micros(ts),
            vec![Value::Int(k), Value::Int(v)],
        )
    }

    fn run(a: &mut WindowAggregate, tuples: Vec<Tuple>) -> Vec<Tuple> {
        let input = RefCell::new(Buffer::new("in"));
        let output = RefCell::new(Buffer::new("out"));
        for t in tuples {
            input.borrow_mut().push(t).unwrap();
        }
        let inputs = [&input];
        let outputs = [&output];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        while a.poll(&ctx).is_ready() {
            a.step(&ctx).unwrap();
        }
        let mut out = vec![];
        while let Some(t) = output.borrow_mut().pop() {
            out.push(t);
        }
        out
    }

    #[test]
    fn output_schema_shape() {
        let a = agg();
        let s = a.output_schema();
        assert_eq!(s.len(), 5);
        assert_eq!(s.field(0).unwrap().name, "window_start");
        assert_eq!(s.field(2).unwrap().name, "n");
        assert_eq!(s.field(4).unwrap().data_type, DataType::Float);
    }

    #[test]
    fn flushes_on_window_boundary_crossing() {
        let mut a = agg();
        let out = run(
            &mut a,
            vec![data(10, 1, 5), data(20, 1, 7), data(150, 1, 100)],
        );
        // Window [0,100) closes when ts 150 arrives.
        assert_eq!(out.len(), 1);
        let row = out[0].values().unwrap();
        assert_eq!(row[0], Value::Int(0)); // window_start
        assert_eq!(row[1], Value::Int(1)); // group key
        assert_eq!(row[2], Value::Int(2)); // count
        assert_eq!(row[3], Value::Int(12)); // sum
        assert_eq!(row[4], Value::Float(6.0)); // avg
        assert_eq!(out[0].ts.as_micros(), 100, "stamped with window end");
        assert_eq!(a.open_groups(), 1, "the 150-tuple opened a new window");
    }

    #[test]
    fn groups_are_separate() {
        let mut a = agg();
        let out = run(
            &mut a,
            vec![data(10, 1, 5), data(20, 2, 7), data(150, 1, 0)],
        );
        assert_eq!(out.len(), 2);
        // BTreeMap gives deterministic key order.
        assert_eq!(out[0].values().unwrap()[1], Value::Int(1));
        assert_eq!(out[1].values().unwrap()[1], Value::Int(2));
    }

    #[test]
    fn punctuation_flushes_and_forwards() {
        let mut a = agg();
        let out = run(
            &mut a,
            vec![
                data(10, 1, 5),
                Tuple::punctuation(Timestamp::from_micros(250)),
            ],
        );
        // The ETS at 250 closes window [0,100): one result + the forwarded
        // punctuation.
        assert_eq!(out.len(), 2);
        assert!(out[0].is_data());
        assert_eq!(out[0].ts.as_micros(), 100);
        assert!(out[1].is_punctuation());
        assert_eq!(out[1].ts.as_micros(), 250);
        assert_eq!(a.open_groups(), 0);
    }

    #[test]
    fn skips_empty_windows() {
        let mut a = agg();
        let out = run(&mut a, vec![data(10, 1, 5), data(1_050, 1, 1)]);
        assert_eq!(out.len(), 1, "empty windows produce no rows");
        assert_eq!(a.windows_flushed(), 1);
    }

    #[test]
    fn min_max_and_null_handling() {
        let s = schema();
        let mut a = WindowAggregate::new(
            "γ",
            &s,
            TimeDelta::from_micros(100),
            vec![],
            vec![
                AggExpr {
                    func: AggFunc::Min,
                    arg: Expr::col(1),
                    name: "lo".into(),
                },
                AggExpr {
                    func: AggFunc::Max,
                    arg: Expr::col(1),
                    name: "hi".into(),
                },
            ],
        )
        .unwrap();
        let null_tuple = Tuple::data(Timestamp::from_micros(15), vec![Value::Int(0), Value::Null]);
        let out = run(
            &mut a,
            vec![data(10, 0, 9), null_tuple, data(20, 0, 3), data(130, 0, 1)],
        );
        assert_eq!(out.len(), 1);
        let row = out[0].values().unwrap();
        assert_eq!(row[1], Value::Int(3));
        assert_eq!(row[2], Value::Int(9));
    }

    #[test]
    fn zero_window_rejected() {
        let err =
            WindowAggregate::new("γ", &schema(), TimeDelta::ZERO, vec![], vec![]).unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }

    #[test]
    fn survives_end_of_stream_punctuation_at_max() {
        // Timestamp::MAX is the natural end-of-stream marker; boundary
        // arithmetic must saturate rather than overflow.
        let mut a = agg();
        let out = run(
            &mut a,
            vec![data(10, 1, 5), Tuple::punctuation(Timestamp::MAX)],
        );
        assert_eq!(out.len(), 2, "flush + forwarded EOS");
        assert!(out[0].is_data());
        assert!(out[1].is_punctuation());
    }

    #[test]
    fn window_alignment_is_stable() {
        let mut a = agg();
        // First tuple at 250 → window [200, 300).
        let out = run(
            &mut a,
            vec![data(250, 1, 1), data(299, 1, 1), data(305, 1, 1)],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values().unwrap()[0], Value::Int(200));
        assert_eq!(out[0].values().unwrap()[2], Value::Int(2));
    }
}
